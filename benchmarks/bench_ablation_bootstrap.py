"""Ablation: block vs iid bootstrap for VAR model selection.

The paper adopts a block bootstrap "to maintain temporal dependence".
This ablation runs the UoI selection stage on the same VAR data with
circular-block resampling (the paper's choice) and with iid
resampling of lag-matrix rows, comparing support-recovery quality of
the intersected families at the oracle λ.
"""

import numpy as np
import pytest

from repro.core.bootstrap import circular_block_bootstrap, iid_bootstrap
from repro.core.selection import intersect_supports
from repro.datasets import make_sparse_var
from repro.linalg import lasso_cd
from repro.metrics import selection_report
from repro.var.lag import build_lag_matrices

P_DIM, N_SAMPLES, B1, LAM_FRACTION = 6, 240, 10, 0.08


def _selection_family(series, sampler, seed):
    Y, X = build_lag_matrices(series, 1)
    m = Y.shape[0]
    lam = LAM_FRACTION * 2.0 * float(np.max(np.abs(X.T @ Y)))
    rng = np.random.default_rng(seed)
    masks = []
    for _ in range(B1):
        idx = sampler(m, rng)
        beta_cols = [
            lasso_cd(X[idx], Y[idx][:, c], lam) for c in range(Y.shape[1])
        ]
        masks.append(np.concatenate([b != 0 for b in beta_cols]))
    return intersect_supports(np.stack(masks))


def _true_mask(sv):
    # vec-ordering: column c's block holds A[c, :] (B = A').
    return np.concatenate([sv.process.coefs[0][c] != 0 for c in range(P_DIM)])


@pytest.fixture(scope="module")
def var_data():
    return make_sparse_var(
        P_DIM, N_SAMPLES, density=0.15, rng=np.random.default_rng(5)
    )


def test_block_bootstrap_selection(benchmark, var_data):
    mask = benchmark.pedantic(
        _selection_family,
        args=(var_data.series, lambda m, rng: circular_block_bootstrap(m, rng), 0),
        rounds=1,
        iterations=1,
    )
    rep = selection_report(_true_mask(var_data), mask)
    print(f"\nblock bootstrap: precision {rep.precision:.2f} recall {rep.recall:.2f}")
    assert rep.recall >= 0.5
    assert rep.precision >= 0.8


def test_iid_bootstrap_selection(benchmark, var_data):
    mask = benchmark.pedantic(
        _selection_family,
        args=(var_data.series, lambda m, rng: iid_bootstrap(m, rng), 0),
        rounds=1,
        iterations=1,
    )
    rep = selection_report(_true_mask(var_data), mask)
    print(f"\niid bootstrap: precision {rep.precision:.2f} recall {rep.recall:.2f}")


def test_block_no_worse_than_iid(var_data):
    block = _selection_family(
        var_data.series, lambda m, rng: circular_block_bootstrap(m, rng), 0
    )
    iid = _selection_family(var_data.series, lambda m, rng: iid_bootstrap(m, rng), 0)
    truth = _true_mask(var_data)
    f_block = selection_report(truth, block).f1
    f_iid = selection_report(truth, iid).f1
    assert f_block >= f_iid - 0.1
