"""Service throughput: cross-job batching vs sequential runs.

The scheduler's pitch is that compatible jobs share one engine run, so
the per-run orchestration fixed costs — process-pool spin-up per
stage, plan pickling, stage barriers — are paid once per *batch*
instead of once per *job*, while every job's numerics stay bitwise
identical to a solo run.  This benchmark drives the same workload of
small multiprocess-backend LASSO jobs through the service twice —

* ``sequential`` — ``batching=False``: one engine run per job,
* ``batched``    — ``batching=True, max_batch=n_jobs``: compatible
  jobs multiplexed into shared runs

— interleaved best-of-``REPEATS``, writes ``BENCH_service.json`` at
the repo root (jobs/sec for both modes), and gates the subsystem on a
≥1.5× batched-over-sequential throughput ratio.  Small fits are the
point, not a cheat: the service exists for many concurrent modest
jobs, exactly the regime where per-run overhead dominates.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import UoILassoConfig
from repro.core.uoi_lasso import UoILasso
from repro.service import Service, ServiceClient

N, P = 30, 5
N_JOBS = 8
REPEATS = 3
CFG = UoILassoConfig(
    n_lambdas=3,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=3,
    max_iter=80,
    random_state=11,
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(N, P))
    beta = np.zeros(P)
    beta[:2] = (1.0, -1.0)
    y = X @ beta + 0.1 * rng.normal(size=N)
    return {"X": X, "y": y}


def _drive(problem, *, batching: bool) -> float:
    """Seconds to push N_JOBS multiprocess jobs through one service."""
    with Service(
        workers=1, batching=batching, max_batch=N_JOBS
    ) as service:
        client = ServiceClient(service)
        t0 = time.perf_counter()
        ids = [
            client.submit(
                "lasso", problem, config=CFG, backend="multiprocess"
            )
            for _ in range(N_JOBS)
        ]
        for job_id in ids:
            client.results(job_id, timeout=300.0)
        return time.perf_counter() - t0


@pytest.fixture(scope="module")
def timings(problem):
    # Warm-up: BLAS pools, import costs, first process-pool fork.
    _drive(problem, batching=True)
    best = {"sequential": float("inf"), "batched": float("inf")}
    for _ in range(REPEATS):
        best["sequential"] = min(
            best["sequential"], _drive(problem, batching=False)
        )
        best["batched"] = min(best["batched"], _drive(problem, batching=True))
    return best


def test_batched_results_stay_bitwise_identical(problem):
    """The throughput win must cost zero bits: batched service results
    equal a direct fit exactly."""
    ref = UoILasso(CFG).fit(problem["X"], problem["y"])
    with Service(workers=1, batching=True, max_batch=N_JOBS) as service:
        client = ServiceClient(service)
        ids = [
            client.submit("lasso", problem, config=CFG) for _ in range(N_JOBS)
        ]
        for job_id in ids:
            out = client.results(job_id, timeout=300.0)
            assert np.array_equal(out.coef, ref.coef_)
            assert np.array_equal(out.losses, ref.losses_)


def test_batching_throughput_gate(timings):
    jobs_per_sec = {
        mode: N_JOBS / seconds for mode, seconds in timings.items()
    }
    speedup = jobs_per_sec["batched"] / jobs_per_sec["sequential"]
    payload = {
        "config": {
            "n": N,
            "p": P,
            "n_jobs": N_JOBS,
            "backend": "multiprocess",
            "n_lambdas": CFG.n_lambdas,
            "n_selection_bootstraps": CFG.n_selection_bootstraps,
            "n_estimation_bootstraps": CFG.n_estimation_bootstraps,
            "repeats": REPEATS,
        },
        "seconds": {mode: round(s, 6) for mode, s in timings.items()},
        "jobs_per_sec": {
            mode: round(v, 3) for mode, v in jobs_per_sec.items()
        },
        "batched_over_sequential": round(speedup, 3),
        "gate": {"min_speedup": 1.5},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for mode, seconds in timings.items():
        print(
            f"service {mode:>10}: {seconds:.3f}s best-of-{REPEATS}"
            f"  ({jobs_per_sec[mode]:.2f} jobs/s)"
        )
    print(f"batched / sequential = {speedup:.2f}x")
    print(f"wrote {RESULT_PATH}")
    assert speedup >= 1.5, (
        f"batching speedup {speedup:.2f}x is below the 1.5x gate"
    )
