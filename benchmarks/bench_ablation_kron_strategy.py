"""Ablation: RMA-reader vs communication-avoiding Kronecker construction.

The paper's bottleneck analysis vs its own proposed fix.  Functional
half: both strategies assemble the identical lifted problem on the
simulator (timed for real).  Analytic half: at the paper's scale the
RMA-reader law (calibrated to the two §VI measurements) is compared
with the broadcast strategy's modeled cost, which escapes the p^3
explosion entirely — quantifying exactly how much the Discussion's
suggestion would have bought.
"""

import numpy as np
import pytest
import scipy.sparse

from repro.distribution import BroadcastKron, DistributedKron, ca_kron_model_time
from repro.linalg.kron import identity_kron, vec
from repro.perf.scaling import kron_distribution_time, var_weak_scaling_cores
from repro.datasets.var_synthetic import features_for_gigabytes
from repro.simmpi import CORI_KNL, LAPTOP, run_spmd

M, K, P = 24, 4, 8


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(6)
    return rng.standard_normal((M, K)), rng.standard_normal((M, P))


def test_rma_reader_construction(benchmark, source):
    X, Y = source

    def run():
        def prog(comm):
            dk = DistributedKron(
                comm,
                X if comm.rank < 2 else None,
                Y if comm.rank < 2 else None,
                n_readers=2,
            )
            out = dk.build_local()
            dk.close()
            return out

        return run_spmd(4, prog, machine=LAPTOP)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(res.values) == 4


def test_broadcast_construction(benchmark, source):
    X, Y = source

    def run():
        def prog(comm):
            bk = BroadcastKron(
                comm,
                X if comm.rank == 0 else None,
                Y if comm.rank == 0 else None,
            )
            return bk.build_local()

        return run_spmd(4, prog, machine=LAPTOP)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(res.values) == 4


def test_strategies_build_identical_problem(source):
    X, Y = source

    def prog(comm):
        dk = DistributedKron(comm, X if comm.rank < 2 else None,
                             Y if comm.rank < 2 else None, n_readers=2)
        rma = dk.build_local()
        dk.close()
        bk = BroadcastKron(comm, X if comm.rank == 0 else None,
                           Y if comm.rank == 0 else None)
        bcast = bk.build_local()
        return rma, bcast

    res = run_spmd(4, prog, machine=LAPTOP)
    A_rma = scipy.sparse.vstack([v[0][0] for v in res.values]).toarray()
    A_bc = scipy.sparse.vstack([v[1][0] for v in res.values]).toarray()
    np.testing.assert_allclose(A_rma, A_bc)
    np.testing.assert_allclose(A_rma, identity_kron(X, P, sparse=False))
    b_bc = np.concatenate([v[1][1] for v in res.values])
    np.testing.assert_allclose(b_bc, vec(Y))


def test_paper_scale_comparison():
    """At every weak-scaling point, broadcasting beats the RMA readers
    by orders of magnitude — the Discussion's fix, quantified."""
    print()
    for gb in (128, 1024, 8192):
        cores = var_weak_scaling_cores(gb)
        p = features_for_gigabytes(gb)
        rma = kron_distribution_time(gb * 1024**3, cores)
        ca = ca_kron_model_time(CORI_KNL, 2 * p, p, cores)
        print(f"{gb:>5}GB/{cores} cores: RMA {rma:10.1f}s vs broadcast {ca:8.4f}s "
              f"(x{rma / ca:,.0f})")
        assert ca < rma / 100
