"""Benchmark: regenerate Fig. 2 (UoI_LASSO single-node breakdown).

Shape: ~90% computation, <10% communication, kernels DRAM-bound.
"""

from repro.experiments import fig2

from conftest import run_and_report


def test_fig2(benchmark):
    res = run_and_report(benchmark, fig2.run)
    assert res.data["computation_share"] > 0.85
    assert all(v == "memory-bound" for v in res.data["roofline"].values())
