"""Ablation: OST stripe count vs parallel read time.

The paper stripes its HDF5 files over 160 OSTs, noting the 16 GB file
read *slower* than larger ones because it was left unstriped.  This
ablation sweeps the stripe count at fixed data size and core count.
"""

import pytest

from repro.pfs import parallel_read_time
from repro.simmpi import CORI_KNL

SIZE = 1024 * 1024**3  # 1 TB
CORES = 34816


@pytest.mark.parametrize("stripes", [1, 4, 16, 64, 160])
def test_read_time_vs_striping(benchmark, stripes):
    t = benchmark(
        parallel_read_time, CORI_KNL, SIZE, CORES, stripe_count=stripes
    )
    print(f"\n1TB on {CORES} cores, {stripes} stripes: {t:.1f}s")


def test_striping_monotone_and_saturating():
    times = {
        s: parallel_read_time(CORI_KNL, SIZE, CORES, stripe_count=s)
        for s in (1, 4, 16, 64, 160)
    }
    vals = list(times.values())
    assert all(a >= b for a, b in zip(vals, vals[1:]))  # more stripes, faster
    # 160-way striping turns a ~17-minute read into seconds.
    assert times[1] > 600
    assert times[160] < 30
