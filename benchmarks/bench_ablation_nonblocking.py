"""Ablation: blocking vs nonblocking Allreduce in an ADMM-like loop.

The paper's future work: "we are evaluating non-blocking MPI and
asynchronous execution models to enable further scaling."  This
ablation runs the paper's dominant communication pattern — one
consensus Allreduce per solver iteration — in both modes on the
functional simulator and compares *modeled* KNL time: the nonblocking
variant pipelines iteration k's reduction behind iteration k+1's local
compute (one-iteration-deferred consensus, the standard async-ADMM
trick), hiding the transfer entirely whenever local compute exceeds
the collective's cost.
"""

import numpy as np
import pytest

from repro.simmpi import CORI_KNL, SUM, run_spmd

ITERS = 40
VEC = 40_203  # 2 * 20,101 + 1: the paper's consensus message
COMPUTE_PER_ITER = 5e-3  # modeled seconds of local solver work


def _blocking(comm):
    x = np.full(VEC, float(comm.rank))
    for _ in range(ITERS):
        comm.clock.charge_compute(COMPUTE_PER_ITER)
        x = comm.allreduce(x / comm.size, SUM)
    return comm.clock.now


def _nonblocking(comm):
    x = np.full(VEC, float(comm.rank))
    pending = None
    for _ in range(ITERS):
        comm.clock.charge_compute(COMPUTE_PER_ITER)
        if pending is not None:
            x = pending.wait()
        pending = comm.iallreduce(x / comm.size, SUM)
    return pending.wait(), comm.clock.now


@pytest.mark.parametrize("nranks", [4, 8])
def test_blocking_loop(benchmark, nranks):
    res = benchmark.pedantic(
        run_spmd, args=(nranks, _blocking), kwargs={"machine": CORI_KNL},
        rounds=1, iterations=1,
    )
    print(f"\nblocking, {nranks} ranks: modeled {res.elapsed:.4f}s")


@pytest.mark.parametrize("nranks", [4, 8])
def test_nonblocking_loop(benchmark, nranks):
    res = benchmark.pedantic(
        run_spmd, args=(nranks, _nonblocking), kwargs={"machine": CORI_KNL},
        rounds=1, iterations=1,
    )
    print(f"\nnonblocking, {nranks} ranks: modeled {res.elapsed:.4f}s")


def test_nonblocking_hides_communication():
    blocking = run_spmd(8, _blocking, machine=CORI_KNL)
    nonblocking = run_spmd(8, _nonblocking, machine=CORI_KNL)
    assert nonblocking.elapsed < blocking.elapsed
    # The transfer is fully hidden: total time ~= pure compute.
    assert nonblocking.elapsed == pytest.approx(ITERS * COMPUTE_PER_ITER, rel=0.05)
    # Both converge to the same consensus value.
    x, _ = nonblocking.values[0]
    assert np.allclose(x, x[0])
