"""Benchmark: regenerate Table I (performance-analysis setup)."""

from repro.experiments import table1

from conftest import run_and_report


def test_table1(benchmark):
    res = run_and_report(benchmark, table1.run, rounds=3)
    # Core counts must match the paper's table exactly.
    for gb, (lasso_cores, var_cores) in res.data["weak"].items():
        assert lasso_cores == res.data["paper_lasso"][gb]
        assert var_cores == res.data["paper_var"][gb]
