"""Benchmark: regenerate Fig. 4 (UoI_LASSO weak scaling).

Shape: computation flat (near-ideal weak scaling); communication grows
with core count and dominates at the largest sizes.
"""

from repro.experiments import fig4

from conftest import run_and_report


def test_fig4(benchmark):
    res = run_and_report(benchmark, fig4.run, rounds=3)
    series = res.data["series"]
    comps = [series[gb]["computation"] for gb in sorted(series)]
    assert max(comps) / min(comps) < 1.1  # near-ideal weak scaling
    comms = [series[gb]["communication"] for gb in sorted(series)]
    assert all(a < b for a, b in zip(comms, comms[1:]))
    assert res.data["crossover_gb"] is not None
