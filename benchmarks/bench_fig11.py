"""Benchmark: regenerate Fig. 11 (S&P-50 Granger causal graph).

Runs the full paper pipeline (50 companies, B1 = 40, B2 = 5) on the
synthetic panel.  Shape: a sparse directed graph — fewer than 40 edges
out of 2,500 possible.
"""

from repro.experiments import fig11

from conftest import run_and_report


def test_fig11_full_pipeline(benchmark):
    res = run_and_report(benchmark, fig11.run, fast=False)
    summary = res.data["summary"]
    assert summary["nodes"] == 50
    assert summary["possible_edges"] == 2500
    assert 0 < summary["edges"] < 40  # the paper's headline
