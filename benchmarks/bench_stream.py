"""Streaming re-fit economics: warm chains and incremental windows.

The streaming subsystem's pitch is two constant-factor wins over
"just re-run the batch fit every cadence":

* **Warm-started chains.**  Each window's selection λ-paths seed the
  next window's chains (delta-transported starts), so the coordinate-
  descent solves begin near their solutions and converge in far fewer
  sweeps — while every solve still runs to tolerance, keeping supports
  and coefficients bitwise identical to cold chains (asserted here
  before anything is timed).
* **Incremental lag windows.**  :class:`repro.stream.SlidingLagWindow`
  maintains the lagged design, Gram and cross products under
  append+evict in O(kdim²) per tick instead of rebuilding
  ``build_lag_matrices`` + ``X'X`` over the whole window.

Writes ``BENCH_stream.json`` at the repo root and gates the subsystem
on a ≥1.5× warm-over-cold re-fit speedup and a ≥5× incremental-over-
rebuild window-update speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.stream import SlidingLagWindow, SpikeRateSource, StreamConfig, run_rolling
from repro.var.lag import build_lag_matrices

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

# Rolling re-fit leg: heavy selection stage (warm starts only touch
# selection chains), light estimation stage (identical in both legs).
P, TICKS = 6, 100
ROLL_CFG = dict(window=80, cadence=4, max_windows=5)
VAR_CFG = UoIVarConfig(
    order=1,
    lasso=UoILassoConfig(
        n_lambdas=14,
        n_selection_bootstraps=6,
        n_estimation_bootstraps=2,
        solver="cd",
        max_iter=20000,
        random_state=5,
    ),
)
REPEATS = 3

# Incremental-window leg.
WIN_P, WIN_ORDER, WIN_CAP, WIN_TICKS = 8, 2, 512, 400

WARM_GATE = 1.5
WINDOW_GATE = 5.0


@pytest.fixture(scope="module")
def series():
    return np.array(list(SpikeRateSource(P, order=1, seed=5, max_ticks=TICKS)))


def _stream_config(*, warm: bool) -> StreamConfig:
    return StreamConfig(
        var=VAR_CFG,
        warm=warm,
        chain_seeding="path" if warm else "none",
        **ROLL_CFG,
    )


def _refit_seconds(series, *, warm: bool) -> float:
    """Solver seconds across the windows warm starts can touch.

    Window 0 is cold in both legs (there is no previous path yet), so
    the comparison sums windows 1..K-1.
    """
    out = run_rolling(iter(series), _stream_config(warm=warm))
    return sum(w.seconds for w in out.windows[1:])


def test_warm_results_stay_bitwise_identical(series):
    """The speedup must cost zero bits: warm-started windows equal the
    cold-chain run exactly, support for support, coefficient for
    coefficient (the streaming identity invariant)."""
    warm = run_rolling(iter(series), _stream_config(warm=True))
    cold = run_rolling(iter(series), _stream_config(warm=False))
    assert sum(w.nonconverged for w in warm.windows) == 0
    for ww, cw in zip(warm.windows, cold.windows):
        assert np.array_equal(ww.outputs.supports, cw.outputs.supports)
        assert np.array_equal(ww.outputs.coef, cw.outputs.coef)


@pytest.fixture(scope="module")
def refit_timings(series):
    _refit_seconds(series, warm=True)  # warm-up: BLAS pools, imports
    best = {"warm": float("inf"), "cold": float("inf")}
    for _ in range(REPEATS):
        best["cold"] = min(best["cold"], _refit_seconds(series, warm=False))
        best["warm"] = min(best["warm"], _refit_seconds(series, warm=True))
    return best


@pytest.fixture(scope="module")
def window_timings():
    rng = np.random.default_rng(0)
    rows = rng.standard_normal((WIN_CAP + WIN_TICKS, WIN_P))

    win = SlidingLagWindow(WIN_P, WIN_ORDER, WIN_CAP)
    win.extend(rows[:WIN_CAP])
    t0 = time.perf_counter()
    for row in rows[WIN_CAP:]:
        win.append(row)
        gram, cross = win.gram(), win.cross()
    incremental = time.perf_counter() - t0

    buf = list(rows[:WIN_CAP])
    t0 = time.perf_counter()
    for row in rows[WIN_CAP:]:
        buf.append(row)
        buf.pop(0)
        _, X = build_lag_matrices(np.asarray(buf), WIN_ORDER)
        gram_r, cross_r = X.T @ X, X.T @ _
    rebuild = time.perf_counter() - t0

    # The incremental products must be the rebuild's products (within
    # accumulation tolerance) or the timing comparison is meaningless.
    win.check_against_rebuild()
    return {"incremental": incremental, "rebuild": rebuild}


def test_stream_gates(refit_timings, window_timings):
    warm_speedup = refit_timings["cold"] / refit_timings["warm"]
    window_speedup = window_timings["rebuild"] / window_timings["incremental"]
    payload = {
        "refit": {
            "config": {
                "p": P,
                "ticks": TICKS,
                **ROLL_CFG,
                "n_lambdas": VAR_CFG.lasso.n_lambdas,
                "n_selection_bootstraps": VAR_CFG.lasso.n_selection_bootstraps,
                "n_estimation_bootstraps": VAR_CFG.lasso.n_estimation_bootstraps,
                "solver": VAR_CFG.lasso.solver,
                "repeats": REPEATS,
            },
            "seconds": {k: round(v, 6) for k, v in refit_timings.items()},
            "warm_over_cold": round(warm_speedup, 3),
            "gate": {"min_speedup": WARM_GATE},
        },
        "window": {
            "config": {
                "p": WIN_P,
                "order": WIN_ORDER,
                "capacity": WIN_CAP,
                "ticks": WIN_TICKS,
            },
            "seconds": {k: round(v, 6) for k, v in window_timings.items()},
            "incremental_over_rebuild": round(window_speedup, 3),
            "gate": {"min_speedup": WINDOW_GATE},
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(
        f"rolling re-fit: warm {refit_timings['warm']:.3f}s, "
        f"cold {refit_timings['cold']:.3f}s best-of-{REPEATS}"
        f"  -> {warm_speedup:.2f}x"
    )
    print(
        f"window update: incremental {window_timings['incremental']:.4f}s, "
        f"rebuild {window_timings['rebuild']:.4f}s over {WIN_TICKS} ticks"
        f"  -> {window_speedup:.1f}x"
    )
    print(f"wrote {RESULT_PATH}")
    assert warm_speedup >= WARM_GATE, (
        f"warm re-fit speedup {warm_speedup:.2f}x is below the "
        f"{WARM_GATE}x gate"
    )
    assert window_speedup >= WINDOW_GATE, (
        f"incremental window speedup {window_speedup:.1f}x is below the "
        f"{WINDOW_GATE}x gate"
    )
