"""Benchmark: regenerate Fig. 7 (UoI_VAR single-node breakdown).

Shape: computation ~88% of runtime; lifted-design sparsity 1 - 1/p
(98.94% at 95 features); sparse kernels memory-bound.
"""

from repro.experiments import fig7

from conftest import run_and_report


def test_fig7(benchmark):
    res = run_and_report(benchmark, fig7.run)
    assert res.data["computation_share"] > 0.85
    assert abs(res.data["sparsity_95"] - 0.9894) < 1e-3
