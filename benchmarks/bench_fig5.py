"""Benchmark: regenerate Fig. 5 (Allreduce T_min/T_max variability)."""

from repro.experiments import fig5

from conftest import run_and_report


def test_fig5(benchmark):
    res = run_and_report(benchmark, fig5.run, rounds=3)
    for gb, (tmin, tmax) in res.data["series"].items():
        assert 0 < tmin < tmax  # visible variability at every point
