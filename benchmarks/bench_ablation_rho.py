"""Ablation: fixed vs adaptive ADMM penalty (residual balancing).

The paper's implementation fixes rho so the x-update factorization can
be cached ("computed once per design matrix").  Residual balancing
(Boyd §3.4.1) can cut iterations by an order of magnitude, but every
adaptation invalidates the cache and forces a refactorization.  This
ablation measures both serial wall time and the iteration /
refactorization trade, plus the distributed variant's modeled time.
"""

import numpy as np
import pytest

from repro.linalg import LassoADMM
from repro.linalg.consensus import consensus_lasso_admm
from repro.simmpi import CORI_KNL, run_spmd

N, P, LAM = 240, 24, 6.0


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((N, P))
    beta = np.zeros(P)
    beta[::5] = 2.5
    y = X @ beta + 0.15 * rng.standard_normal(N)
    return X, y


@pytest.mark.parametrize("adapt", [False, True], ids=["fixed-rho", "adaptive-rho"])
def test_serial_admm_rho(benchmark, problem, adapt):
    X, y = problem

    def run():
        solver = LassoADMM(X, y, max_iter=5000, adapt_rho=adapt)
        res = solver.solve(LAM)
        return res, solver.factorizations

    res, facts = benchmark(run)
    print(
        f"\nadapt={adapt}: {res.iterations} iterations, "
        f"{facts} factorization(s), converged={res.converged}"
    )
    assert res.converged


@pytest.mark.parametrize("adapt", [False, True], ids=["fixed-rho", "adaptive-rho"])
def test_consensus_admm_rho(benchmark, problem, adapt):
    X, y = problem

    def run():
        def prog(comm):
            idx = np.array_split(np.arange(N), comm.size)[comm.rank]
            return consensus_lasso_admm(
                comm, X[idx], y[idx], LAM, max_iter=3000, adapt_rho=adapt
            )

        return run_spmd(4, prog, machine=CORI_KNL)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    out = res.values[0]
    print(
        f"\nadapt={adapt}: {out.iterations} iterations, "
        f"modeled job time {res.elapsed:.4f}s"
    )


def test_adaptive_converges_in_fewer_iterations(problem):
    X, y = problem
    fixed = LassoADMM(X, y, max_iter=5000).solve(LAM)
    solver = LassoADMM(X, y, max_iter=5000, adapt_rho=True)
    adaptive = solver.solve(LAM)
    assert adaptive.iterations < fixed.iterations
    np.testing.assert_allclose(adaptive.beta, fixed.beta, atol=1e-3)
    # The price: more than the single cached factorization.
    assert solver.factorizations >= 1
