"""Ablation: checkpoint cadence vs modeled runtime overhead.

Checkpointing completed (bootstrap, λ) subproblems buys restartability
at the price of parallel-filesystem writes, charged to the writers'
virtual clocks as DATA_IO.  This ablation runs the resilience demo's
functional Fig.-4 weak-scaling configuration uninterrupted at three
cadences — off, every 10 subproblems, every subproblem — and reports
the modeled-time overhead of each.
"""

import tempfile

import numpy as np
import pytest

from repro.core.parallel import distributed_uoi_lasso
from repro.datasets import make_sparse_regression
from repro.experiments.resilience import FIG4_FUNCTIONAL_CONFIG
from repro.pfs import SimH5File
from repro.resilience import CheckpointPlan, CheckpointStore
from repro.simmpi import LAPTOP, run_spmd

NRANKS = 4
CADENCES = (None, 10, 1)  # None = checkpointing off


def _elapsed(cadence):
    cfg = FIG4_FUNCTIONAL_CONFIG
    ds = make_sparse_regression(
        48 * NRANKS, 10, n_informative=3, snr=15.0,
        rng=np.random.default_rng(cfg.random_state),
    )
    file = SimH5File("/bench_ckpt.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmp:
        plan = (
            None
            if cadence is None
            else CheckpointPlan(CheckpointStore(tmp), cadence=cadence)
        )
        res = run_spmd(
            NRANKS,
            lambda comm: distributed_uoi_lasso(
                comm, file, "data", cfg, pb=2, checkpoint=plan
            ),
            machine=LAPTOP,
        )
    return res.elapsed


@pytest.mark.parametrize(
    "cadence", CADENCES, ids=["off", "every-10", "every-1"]
)
def test_cadence_overhead(benchmark, cadence):
    t = benchmark.pedantic(_elapsed, args=(cadence,), rounds=1, iterations=1)
    label = "off" if cadence is None else f"every-{cadence}"
    print(f"\ncheckpoint cadence {label}: {t:.4g}s modeled")


def test_overhead_grows_with_write_frequency():
    times = {c: _elapsed(c) for c in CADENCES}
    print()
    base = times[None]
    for c in CADENCES:
        label = "off" if c is None else f"every-{c}"
        over = times[c] / base - 1.0
        print(f"cadence {label:>9}: {times[c]:.4g}s modeled (+{over:.0%})")
    # Coarser cadence batches writes: strictly cheaper than every-1,
    # and everything costs at least as much as no checkpointing.
    assert base <= times[10] < times[1]
    # Per-subproblem checkpointing is the expensive end of the knob —
    # observed ~5x modeled time on this configuration.
    assert times[1] > 1.5 * base
