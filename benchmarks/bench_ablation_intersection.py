"""Ablation: strict vs soft intersection in model selection.

The paper's eq. 3 intersects supports over *all* B1 bootstraps.  The
soft generalization (a feature survives when selected in >= frac of
bootstraps) trades false positives back for recall on weak signals.
This ablation sweeps the threshold on a planted problem whose signal
strength straddles the detection boundary.
"""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression
from repro.metrics import selection_report

CFG = dict(
    n_lambdas=10,
    n_selection_bootstraps=16,
    n_estimation_bootstraps=6,
    solver="cd",
    random_state=0,
)


def _fit(frac, seed=20):
    ds = make_sparse_regression(
        120, 30, n_informative=5, snr=2.0, rng=np.random.default_rng(seed)
    )
    model = UoILasso(
        UoILassoConfig(**CFG, intersection_frac=frac)
    ).fit(ds.X, ds.y)
    return selection_report(ds.support, model.coef_), model


@pytest.mark.parametrize("frac", [1.0, 0.9, 0.7, 0.5])
def test_intersection_frac(benchmark, frac):
    rep, _ = benchmark.pedantic(_fit, args=(frac,), rounds=1, iterations=1)
    print(
        f"\nfrac={frac}: precision {rep.precision:.2f} recall {rep.recall:.2f} "
        f"(fp={rep.fp}, fn={rep.fn})"
    )


def test_softer_intersection_monotone_family():
    """Lower thresholds can only grow each λ's candidate support."""
    _, strict = _fit(1.0)
    _, soft = _fit(0.6)
    assert np.all(strict.supports_ <= soft.supports_)
    assert soft.supports_.sum() >= strict.supports_.sum()
