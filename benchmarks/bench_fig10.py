"""Benchmark: regenerate Fig. 10 (UoI_VAR strong scaling, 1 TB).

Shape: computation scales almost ideally; distribution grows with the
core count.
"""

from repro.experiments import fig10

from conftest import run_and_report


def test_fig10(benchmark):
    res = run_and_report(benchmark, fig10.run, rounds=3)
    series = res.data["series"]
    cores = sorted(series)
    ratio = series[cores[0]]["computation"] / series[cores[-1]]["computation"]
    assert abs(ratio - cores[-1] / cores[0]) / (cores[-1] / cores[0]) < 0.05
    assert res.data["distribution_growing"]
