"""Elastic straggler mitigation: speculation on vs off under 10x delay.

The elastic backend's pitch is that a straggling worker costs the run
almost nothing: once a lease's age passes a telemetry-derived
percentile threshold, the coordinator speculatively re-executes the
chain on an idle worker and takes whichever copy finishes first
(docs/elastic.md).  This benchmark injects a straggler — worker 0
sleeps ~10x a chain's compute per chain (``FaultPlan.delay``, the
resilience testbed) — and times the same LASSO fit twice:

* ``no_speculation`` — ``SpeculationPolicy(enabled=False)``: the run
  waits out every delayed chain,
* ``speculation``    — the straggler's chains are re-executed on fast
  workers as soon as they breach the threshold

— best-of-``REPEATS`` with fleet assembly excluded from the timed
region, writes ``BENCH_elastic.json`` at the repo root, and gates the
subsystem on a ≥1.3x speculation-over-no-speculation speedup.  Both
runs must also stay bitwise identical to serial: hiding a straggler
may never cost a bit.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import UoILassoConfig
from repro.core.uoi_lasso import UoILasso
from repro.engine import SerialExecutor
from repro.engine.coordinator import SpeculationPolicy
from repro.engine.elastic import ElasticExecutor
from repro.resilience.faults import FaultPlan

N, P = 96, 10
N_WORKERS = 3
REPEATS = 3
STRAGGLER_FACTOR = 10.0
CFG = UoILassoConfig(
    n_lambdas=5,
    n_selection_bootstraps=3,
    n_estimation_bootstraps=2,
    max_iter=120,
    random_state=11,
)
N_CHAINS = CFG.n_selection_bootstraps + CFG.n_estimation_bootstraps
SPECULATION = SpeculationPolicy(
    percentile=90.0, factor=2.0, min_seconds=0.05, min_samples=2
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(N, P))
    beta = np.zeros(P)
    beta[:3] = (1.0, -1.0, 0.5)
    y = X @ beta + 0.1 * rng.normal(size=N)
    return {"X": X, "y": y}


@pytest.fixture(scope="module")
def serial_coef(problem):
    return (
        UoILasso(CFG)
        .fit(problem["X"], problem["y"], executor=SerialExecutor())
        .coef_
    )


def _drive(problem, serial_coef, *, delay: float, speculation) -> float:
    """Seconds for one elastic fit, fleet assembly excluded."""
    faults = FaultPlan()
    if delay:
        faults.delay(0, seconds=delay)
    executor = ElasticExecutor(
        workers=N_WORKERS, faults=faults, speculation=speculation
    )
    try:
        executor.ensure_fleet()  # blocks until all workers joined
        t0 = time.perf_counter()
        model = UoILasso(CFG).fit(
            problem["X"], problem["y"], executor=executor
        )
        elapsed = time.perf_counter() - t0
    finally:
        executor.shutdown()
    assert np.array_equal(model.coef_, serial_coef), (
        "elastic fit diverged from serial"
    )
    return elapsed


@pytest.fixture(scope="module")
def timings(problem, serial_coef):
    # Warm-up (BLAS pools, import costs) + the clean-fleet baseline
    # that calibrates the injected delay to ~10x a chain's compute.
    clean = min(
        _drive(problem, serial_coef, delay=0.0, speculation=SPECULATION)
        for _ in range(2)
    )
    delay = max(0.5, STRAGGLER_FACTOR * clean / N_CHAINS)
    best = {"no_speculation": float("inf"), "speculation": float("inf")}
    for _ in range(REPEATS):
        best["no_speculation"] = min(
            best["no_speculation"],
            _drive(
                problem,
                serial_coef,
                delay=delay,
                speculation=SpeculationPolicy(enabled=False),
            ),
        )
        best["speculation"] = min(
            best["speculation"],
            _drive(
                problem, serial_coef, delay=delay, speculation=SPECULATION
            ),
        )
    return {"clean": clean, "delay": delay, "best": best}


def test_speculation_speedup_gate(timings):
    best = timings["best"]
    speedup = best["no_speculation"] / best["speculation"]
    payload = {
        "config": {
            "n": N,
            "p": P,
            "workers": N_WORKERS,
            "straggler_rank": 0,
            "straggler_factor": STRAGGLER_FACTOR,
            "delay_seconds": round(timings["delay"], 6),
            "n_lambdas": CFG.n_lambdas,
            "n_selection_bootstraps": CFG.n_selection_bootstraps,
            "n_estimation_bootstraps": CFG.n_estimation_bootstraps,
            "repeats": REPEATS,
        },
        "seconds": {
            "clean": round(timings["clean"], 6),
            **{mode: round(s, 6) for mode, s in best.items()},
        },
        "speculation_speedup": round(speedup, 3),
        "gate": {"min_speedup": 1.3},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"elastic clean fit: {timings['clean']:.3f}s on {N_WORKERS} workers")
    print(f"injected straggler delay: {timings['delay']:.3f}s per chain")
    for mode, seconds in best.items():
        print(f"elastic {mode:>14}: {seconds:.3f}s best-of-{REPEATS}")
    print(f"speculation / no_speculation = {speedup:.2f}x")
    print(f"wrote {RESULT_PATH}")
    assert speedup >= 1.3, (
        f"speculation speedup {speedup:.2f}x is below the 1.3x gate"
    )
