"""Ablation: materialized Kronecker LASSO vs exact column decomposition.

The paper materializes ``(I ⊗ X)`` in distributed memory — that is its
"problem-size explosion".  Because the lifted design is block diagonal
and the L1 penalty separable, the same optimum is available column by
column without ever forming the big matrix.  This ablation times both
paths on the same problem and verifies they agree, quantifying what
the communication-avoiding alternative (the Discussion's suggestion)
buys.
"""

import numpy as np
import pytest

from repro.linalg import identity_kron, kron_lasso_columnwise, lasso_cd, vec

M, K, P = 60, 6, 12
LAM = 3.0


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((M, K))
    B = rng.standard_normal((K, P)) * (rng.random((K, P)) < 0.4)
    Y = X @ B + 0.05 * rng.standard_normal((M, P))
    return X, Y


def test_materialized_lifted_lasso(benchmark, problem):
    X, Y = problem

    def run():
        lifted = identity_kron(X, P, sparse=False)
        return lasso_cd(lifted, vec(Y), LAM, max_iter=3000)

    beta = benchmark(run)
    assert beta.shape == (K * P,)


def test_columnwise_lasso(benchmark, problem):
    X, Y = problem
    beta = benchmark(kron_lasso_columnwise, X, Y, LAM, lasso_cd)
    assert beta.shape == (K * P,)


def test_paths_agree(problem):
    X, Y = problem
    lifted = identity_kron(X, P, sparse=False)
    direct = lasso_cd(lifted, vec(Y), LAM, max_iter=5000)
    by_col = kron_lasso_columnwise(X, Y, LAM, lasso_cd)
    np.testing.assert_allclose(direct, by_col, atol=1e-5)
