"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: the benchmarked callable is the experiment driver itself, and
the rendered report (the same rows/series the paper plots) is printed
so a reader can diff it against the publication.  Heavy functional
drivers run a single round via ``benchmark.pedantic``; pure-model
drivers are cheap and benchmark normally.
"""

from __future__ import annotations


def run_and_report(benchmark, driver, *, fast: bool = True, rounds: int = 1):
    """Benchmark an experiment driver once and print its report."""
    result = benchmark.pedantic(
        driver, kwargs={"fast": fast}, rounds=rounds, iterations=1
    )
    print()
    print(result.render())
    return result
