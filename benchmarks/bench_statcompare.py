"""Benchmark: UoI vs LASSO/MCP/SCAD/Ridge statistical quality.

Shape (the paper's premise): UoI_LASSO has fewer false positives than
plain LASSO at full recall, and far lower coefficient bias.
"""

from repro.experiments import statcompare

from conftest import run_and_report


def test_statcompare(benchmark):
    res = run_and_report(benchmark, statcompare.run, fast=False)
    s = res.data["summary"]
    assert s["UoI_LASSO"]["fp"] <= s["LASSO"]["fp"]
    assert abs(s["UoI_LASSO"]["bias"]) < abs(s["LASSO"]["bias"])
    assert s["UoI_LASSO"]["recall"] >= 0.9
