"""Benchmark: regenerate Table II (randomized vs conventional distribution).

Shape to reproduce: conventional read time explodes (205 s at 16 GB to
11,732 s at 1 TB, > 5 h past 1 TB) while the randomized design stays
in seconds, with a flat Tier-2 shuffle column along the weak-scaling
diagonal.
"""

from repro.experiments import table2

from conftest import run_and_report


def test_table2(benchmark):
    res = run_and_report(benchmark, table2.run)
    model, paper = res.data["model"], res.data["paper"]
    for gb in model:
        conv_read, conv_dist, rand_read, rand_dist = model[gb]
        # Randomized wins by a growing margin, as in the paper.
        assert rand_read + rand_dist < conv_read + conv_dist
        # Conventional read within 2x of the measured column.
        assert paper[gb][0] / 2 <= conv_read <= paper[gb][0] * 2
    assert res.data["functional"]["randomized_correct"]
    assert res.data["functional"]["conventional_correct"]
