"""Benchmark: regenerate Fig. 6 (UoI_LASSO strong scaling, 1 TB).

Shape: computation falls with core count, dipping below ideal at
139,264 cores (superlinear); communication grows.
"""

from repro.experiments import fig6

from conftest import run_and_report


def test_fig6(benchmark):
    res = run_and_report(benchmark, fig6.run, rounds=3)
    series = res.data["series"]
    cores = sorted(series)
    comps = [series[c]["computation"] for c in cores]
    assert all(a > b for a, b in zip(comps, comps[1:]))  # monotone speedup
    assert res.data["superlinear"][139264]
