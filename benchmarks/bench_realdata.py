"""Benchmark: regenerate the §VI real-data runtime rows.

Shape: finance (80 GB / 2,176 cores) lands near 376.9 / 4.7 / 16.4 s;
neuro (1.3 TB / 81,600 cores) reproduces the distribution-bound
ordering with distribution ≈ 3,034 s and communication ≈ 1,599 s.
"""

import pytest

from repro.experiments import realdata

from conftest import run_and_report


def test_realdata(benchmark):
    res = run_and_report(benchmark, realdata.run)
    fin = res.data["finance_model"]
    neuro = res.data["neuro_model"]
    assert fin["distribution"] == pytest.approx(16.409, rel=0.1)
    assert neuro["distribution"] == pytest.approx(3034.4, rel=0.1)
    assert neuro["communication"] == pytest.approx(1598.72, rel=0.2)
    # The paper's ordering for the neuro run: dist > comm > (tiny) io.
    assert neuro["distribution"] > neuro["communication"] > neuro["data_io"]
