"""Benchmark: regenerate Fig. 8 (UoI_VAR algorithmic parallelism).

Shape: the Kronecker + vectorization (distribution) time increases as
P_lambda parallelism grows / P_B shrinks.
"""

from repro.experiments import fig8

from conftest import run_and_report


def test_fig8(benchmark):
    res = run_and_report(benchmark, fig8.run)
    assert res.data["monotone_in_plam"]
