"""Ablation: estimation winner rule — Algorithm 1's argmin vs 1-SE.

Quantifies the false-positive cost of picking winners by raw held-out
loss (losses of near-optimal supports differ by less than their noise)
against the one-standard-error parsimony rule.
"""

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression
from repro.metrics import selection_report

CFG = dict(
    n_lambdas=12,
    n_selection_bootstraps=12,
    n_estimation_bootstraps=8,
    solver="cd",
)


def _fit(rule, seed):
    ds = make_sparse_regression(
        160, 40, n_informative=6, snr=8.0, rng=np.random.default_rng(seed)
    )
    model = UoILasso(
        UoILassoConfig(**CFG, selection_rule=rule, random_state=seed)
    ).fit(ds.X, ds.y)
    return selection_report(ds.support, model.coef_)


@pytest.mark.parametrize("rule", ["min", "1se"])
def test_rule(benchmark, rule):
    rep = benchmark.pedantic(_fit, args=(rule, 100), rounds=1, iterations=1)
    print(f"\nrule={rule}: fp={rep.fp} fn={rep.fn} precision={rep.precision:.2f}")
    assert rep.recall == 1.0


def test_1se_reduces_false_positives_on_average():
    fps = {"min": 0, "1se": 0}
    for seed in (100, 101, 102):
        for rule in fps:
            fps[rule] += _fit(rule, seed).fp
    print(f"\ntotal FPs over 3 seeds: {fps}")
    assert fps["1se"] <= fps["min"]
