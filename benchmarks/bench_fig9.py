"""Benchmark: regenerate Fig. 9 (UoI_VAR weak scaling).

Shape: computation flat; distribution grows with cores and problem
size, overtaking computation at ~2 TB.
"""

from repro.experiments import fig9

from conftest import run_and_report


def test_fig9(benchmark):
    res = run_and_report(benchmark, fig9.run, rounds=3)
    series = res.data["series"]
    comps = [series[gb]["computation"] for gb in sorted(series)]
    assert max(comps) / min(comps) < 1.1
    assert res.data["crossover_gb"] in (2048, 4096)
