"""Ablation: telemetry overhead (off vs recorder-on vs full export).

The telemetry subsystem's contract is that it is effectively free: the
instrumentation one-liners in the solvers and I/O layers consult a
context-var and no-op when no recorder is installed, and even with a
recorder attached the per-subproblem span bookkeeping must stay in the
noise of a mid-size UoI_LASSO fit.  This ablation times the same fit
three ways —

* ``off``     — ``telemetry=False`` (the no-op path every untelemetered
  fit pays),
* ``recorder``— ``telemetry=True`` (in-memory spans/counters/gauges),
* ``export``  — ``telemetry=<dir>`` (recorder plus JSONL manifest and
  Chrome trace written at ``on_run_end``)

— interleaved best-of-``REPEATS`` to shed scheduler noise, writes the
measurements to ``BENCH_telemetry.json`` at the repo root, and gates
the subsystem on ≤5% overhead with the recorder enabled and ~0% (noise
floor) when disabled.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import UoILasso, UoILassoConfig
from repro.datasets import make_sparse_regression

#: Mid-size fit: big enough that per-subproblem hook costs would show,
#: small enough for an interleaved best-of-N in CI.
N, P = 220, 20
CFG = UoILassoConfig(
    n_lambdas=8,
    n_selection_bootstraps=6,
    n_estimation_bootstraps=5,
    random_state=9,
)
REPEATS = 5
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


@pytest.fixture(scope="module")
def problem():
    ds = make_sparse_regression(
        N, P, n_informative=4, snr=12.0, rng=np.random.default_rng(17)
    )
    return ds.X, ds.y


def _time_fit(X, y, telemetry) -> float:
    t0 = time.perf_counter()
    UoILasso(CFG).fit(X, y, telemetry=telemetry)
    return time.perf_counter() - t0


@pytest.fixture(scope="module")
def timings(problem, tmp_path_factory):
    X, y = problem
    export_dir = tmp_path_factory.mktemp("telemetry-bench")
    modes = {
        "off": False,
        "recorder": True,
        "export": str(export_dir),
    }
    # Warm-up (imports, BLAS thread pools, allocator) outside timing.
    _time_fit(X, y, False)
    best = {name: float("inf") for name in modes}
    # Interleave the modes so clock drift and cache state hit all three
    # equally; keep the best (minimum) — the standard low-noise timing
    # estimator for a deterministic workload.
    for _ in range(REPEATS):
        for name, arg in modes.items():
            best[name] = min(best[name], _time_fit(X, y, arg))
    return best


def test_telemetry_overhead_gate(timings):
    base = timings["off"]
    overhead = {
        name: t / base - 1.0 for name, t in timings.items() if name != "off"
    }
    payload = {
        "config": {
            "n": N,
            "p": P,
            "n_lambdas": CFG.n_lambdas,
            "n_selection_bootstraps": CFG.n_selection_bootstraps,
            "n_estimation_bootstraps": CFG.n_estimation_bootstraps,
            "repeats": REPEATS,
        },
        "seconds": {name: round(t, 6) for name, t in timings.items()},
        "overhead_vs_off": {
            name: round(o, 6) for name, o in overhead.items()
        },
        "gate": {"recorder_max": 0.05},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for name, t in timings.items():
        extra = "" if name == "off" else f"  (+{overhead[name]:.2%})"
        print(f"telemetry {name:>8}: {t:.4f}s best-of-{REPEATS}{extra}")
    print(f"wrote {RESULT_PATH}")
    # Gate: in-memory recording must cost <= 5% on a mid-size fit.
    assert overhead["recorder"] <= 0.05, (
        f"recorder overhead {overhead['recorder']:.2%} exceeds the 5% gate"
    )
    # Full export adds two small file writes at on_run_end; it must
    # stay in the same ballpark (generous bound — filesystem noise).
    assert overhead["export"] <= 0.15, (
        f"export overhead {overhead['export']:.2%} exceeds the 15% bound"
    )


def test_disabled_instrumentation_is_noise_floor(problem):
    """The no-op path: ContextVar.get + None check per call site.

    A fit with ``telemetry=False`` runs the same instrumented solver
    code as one from before the subsystem existed; measure the raw
    one-liner cost directly to show the per-call price is tens of
    nanoseconds — unobservable behind an ADMM solve.
    """
    from repro.telemetry.recorder import count

    calls = 100_000
    t0 = time.perf_counter()
    for _ in range(calls):
        count("bench.noop")
    per_call = (time.perf_counter() - t0) / calls
    print(f"\ndisabled count(): {per_call * 1e9:.0f} ns/call")
    # Generous bound: even a slow interpreter does a no-op lookup in
    # well under 5 microseconds.
    assert per_call < 5e-6


def test_bitwise_identical_with_and_without_telemetry(problem):
    X, y = problem
    ref = UoILasso(CFG).fit(X, y, telemetry=False)
    on = UoILasso(CFG).fit(X, y, telemetry=True)
    assert ref.coef_.tobytes() == on.coef_.tobytes()
    assert ref.losses_.tobytes() == on.losses_.tobytes()
