"""Ablation: LASSO solver comparison (serial ADMM vs CD vs consensus).

The paper chose ADMM because it distributes; this ablation measures
what that costs serially and confirms the distributed consensus
variant pays only iterations, not accuracy.
"""

import numpy as np
import pytest

from repro.linalg import LassoADMM, lasso_cd
from repro.linalg.consensus import consensus_lasso_admm
from repro.simmpi import CORI_KNL, run_spmd

N, P, LAM = 300, 30, 8.0


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(1)
    X = rng.standard_normal((N, P))
    beta = np.zeros(P)
    beta[::6] = 2.0
    y = X @ beta + 0.2 * rng.standard_normal(N)
    return X, y


def test_serial_admm(benchmark, problem):
    X, y = problem
    solver = LassoADMM(X, y)
    res = benchmark(solver.solve, LAM)
    assert (res.beta != 0).any()


def test_coordinate_descent(benchmark, problem):
    X, y = problem
    beta = benchmark(lasso_cd, X, y, LAM)
    assert (beta != 0).any()


def test_consensus_admm_4ranks(benchmark, problem):
    X, y = problem

    def run():
        def prog(comm):
            idx = np.array_split(np.arange(N), comm.size)[comm.rank]
            return consensus_lasso_admm(comm, X[idx], y[idx], LAM)

        return run_spmd(4, prog, machine=CORI_KNL).values[0]

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    serial = lasso_cd(X, y, LAM)
    np.testing.assert_allclose(out.beta, serial, atol=5e-3)
