"""Benchmark: regenerate Fig. 3 (UoI_LASSO P_B x P_lambda parallelism).

Shape: runtimes within a few percent across grid shapes at each size;
functional mini-grids agree on coefficients across shapes.
"""

from repro.experiments import fig3

from conftest import run_and_report


def test_fig3(benchmark):
    res = run_and_report(benchmark, fig3.run)
    totals = res.data["model_totals"]
    for gb, _ in fig3.PAPER_SIZES:
        vals = [totals[(gb, pb, plam)] for pb, plam in fig3.PAPER_GRIDS]
        assert max(vals) / min(vals) < 1.25
