"""Legacy setup shim.

The offline build environment has setuptools but no `wheel`, so PEP-517
isolated builds fail; this shim lets `pip install -e . --no-build-isolation`
(and plain `pip install -e .` on older pips) take the legacy
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
