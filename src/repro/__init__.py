"""repro — Union of Intersections at scale, reproduced in Python.

A from-scratch reproduction of *"Scaling of Union of Intersections for
Inference of Granger Causal Networks from Observational Data"*
(Balasubramanian et al., IPDPS 2020): the UoI_LASSO and UoI_VAR
algorithms, the distributed systems they run on (consensus LASSO-ADMM,
randomized three-tier data distribution, distributed Kronecker
product + vectorization), a simulated MPI + Lustre substrate standing
in for Cori KNL, and drivers regenerating every table and figure of
the paper's evaluation.

Quick tour::

    from repro import UoILasso, UoIVar
    model = UoILasso(n_lambdas=12).fit(X, y)      # Algorithm 1
    var = UoIVar(order=1).fit(series)             # Algorithm 2
    var.granger_graph()                            # Fig.-11-style digraph

Subpackages
-----------
``repro.core``
    The UoI framework: serial estimators, bootstraps, intersection /
    union stages, distributed drivers.
``repro.linalg``
    Solvers: LASSO-ADMM (serial + consensus), coordinate descent,
    OLS/Ridge/MCP/SCAD baselines, ``I ⊗ X`` machinery.
``repro.simmpi``
    Simulated MPI: SPMD executor, collectives, RMA windows, virtual
    clocks, KNL machine model.
``repro.pfs`` / ``repro.distribution``
    Simulated Lustre/HDF5 and the paper's data-distribution
    strategies.
``repro.var``
    VAR processes, lag matrices, Granger-network extraction.
``repro.datasets`` / ``repro.metrics``
    Synthetic data with planted truth; selection/estimation metrics.
``repro.perf`` / ``repro.experiments``
    Roofline + scaling models; per-table/figure experiment drivers.
"""

from repro.core import UoILasso, UoILassoConfig, UoIVar, UoIVarConfig
from repro.var import VARProcess, granger_digraph
from repro.datasets import (
    make_sparse_regression,
    make_sparse_var,
    make_stock_panel,
    make_spike_counts,
)

__version__ = "1.0.0"

__all__ = [
    "UoILasso",
    "UoILassoConfig",
    "UoIVar",
    "UoIVarConfig",
    "VARProcess",
    "granger_digraph",
    "make_sparse_regression",
    "make_sparse_var",
    "make_stock_panel",
    "make_spike_counts",
    "__version__",
]
