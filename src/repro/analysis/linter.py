"""AST-based SPMD correctness linter over the repro sources.

The linter encodes the communication discipline the paper's
implementation depends on (one ``MPI_Allreduce`` per ADMM iteration,
fenced one-sided epochs for the Tier-2 shuffle and the distributed
Kronecker build) as mechanical rules over the syntax tree:

``SPMD001``
    A collective method (``allreduce``, ``bcast``, ``barrier``,
    ``fence``, ...) called on a communicator/window inside an ``if``
    whose test depends on the rank — the canonical rank-divergence
    bug.
``SPMD002``
    ``np.random.*`` global-state RNG use (anything except the
    ``default_rng`` / ``Generator`` family) — process-global state is
    poison when ranks are threads.
``SPMD003``
    A telemetry ``span(...)`` opened as a bare expression statement
    instead of a ``with`` block (the interval is never closed).
``SPMD004``
    A buffer returned by ``Window.get`` mutated in place without an
    intervening ``.copy()`` (not portable to real RMA semantics).

Findings can be suppressed per line with ``# repro: ignore[RULE]``
(comma-separate multiple ids; bare ``# repro: ignore`` suppresses
every rule on that line).

Precision is deliberately favoured over recall: ``repro check`` gates
CI on zero findings, so each rule only fires on patterns it can
identify with receiver-name evidence (e.g. ``reduce`` is only a
collective when called on something named like a communicator).
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import get_rule
from repro.analysis.suppress import IGNORE_RE, filter_findings

__all__ = [
    "COLLECTIVE_METHODS",
    "lint_source",
    "lint_file",
    "lint_paths",
    "default_lint_paths",
]

#: Method names treated as collectives when called on a comm-like or
#: window-like receiver (see :func:`_receiver_is_commlike`).
COLLECTIVE_METHODS = frozenset(
    {
        "allreduce",
        "bcast",
        "barrier",
        "reduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "reduce_scatter",
        "scan",
        "iallreduce",
        "iallgather",
        "ibarrier",
        "fence",
        "free",
        "split",
    }
)

#: ``np.random`` attributes that are *not* global-state RNG use.
_SAFE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # explicit legacy object, not hidden global state
    }
)

#: Receiver (or attribute) names that identify a communicator handle.
_COMM_NAME_HINTS = ("comm", "world", "cell", "bgroup", "lgroup", "stripe")
#: Receiver names that identify an RMA window handle.
_WIN_NAME_HINTS = ("win", "window")

#: Suppression syntax (shared; see :mod:`repro.analysis.suppress`).
_IGNORE_RE = IGNORE_RE


def _terminal_name(node: ast.expr) -> str:
    """Rightmost identifier of a Name/Attribute chain, lowercased."""
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


def _receiver_is_commlike(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return any(h in name for h in _COMM_NAME_HINTS)


def _receiver_is_windowlike(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return any(h in name for h in _WIN_NAME_HINTS)


def _is_collective_call(call: ast.Call) -> str | None:
    """Return the collective's name when ``call`` is one, else ``None``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in COLLECTIVE_METHODS:
        return None
    recv = func.value
    if func.attr in ("fence", "free"):
        if _receiver_is_windowlike(recv) or _receiver_is_commlike(recv):
            return func.attr
        return None
    if _receiver_is_commlike(recv):
        return func.attr
    return None


def _mentions_rank(node: ast.expr) -> bool:
    """Whether an ``if`` test depends on the calling rank."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("rank", "is_reader"):
            return True
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
    return False


def _np_random_attr(node: ast.Attribute) -> str | None:
    """``fn`` when ``node`` is ``np.random.fn`` / ``numpy.random.fn``."""
    base = node.value
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and isinstance(base.value, ast.Name)
        and base.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def _is_span_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ("span", "_tspan")
    if isinstance(func, ast.Attribute):
        return func.attr == "span"
    return False


class _SpmdVisitor(ast.NodeVisitor):
    """One pass collecting SPMD001/SPMD002/SPMD003 findings."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: list[Finding] = []
        self._rank_if_depth = 0

    def _emit(
        self, rule_id: str, lineno: int, message: str, **context: object
    ) -> None:
        rule = get_rule(rule_id)
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                message=message,
                file=self.filename,
                line=lineno,
                source="lint",
                context=context,
            )
        )

    # -- SPMD001: rank-conditional collectives ------------------------
    def visit_If(self, node: ast.If) -> None:
        if _mentions_rank(node.test):
            self._rank_if_depth += 1
            for child in node.body + node.orelse:
                self.visit(child)
            self._rank_if_depth -= 1
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._rank_if_depth > 0:
            name = _is_collective_call(node)
            if name is not None:
                self._emit(
                    "SPMD001",
                    node.lineno,
                    f"collective `{name}` inside a rank-conditional branch: "
                    "every rank of the communicator must reach it",
                    collective=name,
                )
        self.generic_visit(node)

    # -- SPMD002: global numpy RNG -------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        fn = _np_random_attr(node)
        if fn is not None and fn not in _SAFE_NP_RANDOM:
            self._emit(
                "SPMD002",
                node.lineno,
                f"global-state RNG `np.random.{fn}`: draw from an explicit "
                "np.random.default_rng(...) Generator instead",
                attribute=fn,
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _SAFE_NP_RANDOM:
                    self._emit(
                        "SPMD002",
                        node.lineno,
                        f"`from numpy.random import {alias.name}` pulls in "
                        "global-state RNG; import default_rng instead",
                        attribute=alias.name,
                    )
        self.generic_visit(node)

    # -- SPMD003: bare span calls --------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call) and _is_span_call(node.value):
            self._emit(
                "SPMD003",
                node.lineno,
                "telemetry span opened as a bare statement: the interval "
                "is never closed — use `with span(...):`",
            )
        self.generic_visit(node)


def _scope_bodies(tree: ast.Module) -> Iterable[list[ast.stmt]]:
    """Yield every function body plus the module body (SPMD004 scopes)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _get_from_window(node: ast.expr) -> bool:
    """Whether ``node`` is a ``<window>.get(...)`` call (no ``.copy()``)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and _receiver_is_windowlike(node.func.value)
    )


def _walk_scope(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Walk ``stmt`` without descending into nested function scopes
    (each function body is analyzed as its own SPMD004 scope)."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested (or module-level) def is its own scope; its body
            # is yielded separately by _scope_bodies.
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_rma_mutations(
    scope: list[ast.stmt], filename: str, findings: list[Finding]
) -> None:
    """SPMD004 within one scope, in source order."""
    events: list[tuple[int, str, str, ast.AST]] = []  # (line, kind, var, node)
    for stmt in scope:
        for node in _walk_scope(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if _get_from_window(node.value):
                        events.append((node.lineno, "get", target.id, node))
                    else:
                        events.append((node.lineno, "rebind", target.id, node))
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    events.append(
                        (node.lineno, "mutate", target.value.id, node)
                    )
            elif isinstance(node, ast.AugAssign):
                t = node.target
                var = None
                if isinstance(t, ast.Name):
                    var = t.id
                elif isinstance(t, ast.Subscript) and isinstance(
                    t.value, ast.Name
                ):
                    var = t.value.id
                if var is not None:
                    events.append((node.lineno, "mutate", var, node))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("fill", "sort", "resize", "partition")
                and isinstance(node.func.value, ast.Name)
            ):
                events.append(
                    (node.lineno, "mutate", node.func.value.id, node)
                )

    events.sort(key=lambda e: e[0])
    tracked: dict[str, int] = {}  # var -> line of the Window.get
    rule = get_rule("SPMD004")
    for lineno, kind, var, _node in events:
        if kind == "get":
            tracked[var] = lineno
        elif kind == "rebind":
            tracked.pop(var, None)
        elif kind == "mutate" and var in tracked:
            findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    message=(
                        f"`{var}` (from Window.get at line {tracked[var]}) "
                        "mutated in place: take an explicit .copy() first "
                        "(RMA origin buffers belong to the epoch)"
                    ),
                    file=filename,
                    line=lineno,
                    source="lint",
                    context={"variable": var, "get_line": tracked[var]},
                )
            )


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    tree = ast.parse(source, filename=filename)
    visitor = _SpmdVisitor(filename)
    visitor.visit(tree)
    findings = visitor.findings
    for body in _scope_bodies(tree):
        _check_rma_mutations(body, filename, findings)
    return filter_findings(source, filename, findings, families=("SPMD",))


def lint_file(path: str) -> list[Finding]:
    """Lint one file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return lint_source(fh.read(), filename=path)


def default_lint_paths() -> list[str]:
    """The tree ``repro check lint`` covers by default: ``src/repro``."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [here]


def lint_paths(paths: Sequence[str] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    targets: list[str] = []
    for path in paths if paths else default_lint_paths():
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                targets.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            targets.append(path)
        else:
            raise ValueError(f"not a directory or .py file: {path}")
    findings: list[Finding] = []
    for target in targets:
        findings.extend(lint_file(target))
    return findings
