"""Correctness tooling for the SPMD substrate (``repro.analysis``).

Six checkers, one findings currency:

* :mod:`repro.analysis.linter` — an AST-based **static SPMD linter**
  enforcing the communication discipline the paper's implementation
  depends on (rules ``SPMD001``-``SPMD004``), with per-line
  ``# repro: ignore[RULE]`` suppressions;
* :mod:`repro.analysis.shapes` — a **symbolic shape/dtype/memory
  abstract interpreter** (rules ``SHAPE101``-``SHAPE103``) proving
  the Kronecker lifting is never densely materialized and no
  allocation exceeds the per-rank budget at paper scale;
* :mod:`repro.analysis.determinism` — a **determinism-taint pass**
  (rules ``DET301``-``DET304``) tracing nondeterminism sources into
  code reachable from ``UoIPlan.run_chain``/``reduce``;
* :mod:`repro.analysis.planver` — a **pre-run plan verifier**
  (rules ``PLAN401``-``PLAN404``): :func:`verify_plan` over
  constructed plans (opt-in at run time via ``REPRO_PLAN_VERIFY=1``
  or ``make_executor(..., verify=True)``) plus an AST side;
* :mod:`repro.analysis.threads` — a **lock-order / shared-state
  pass** over the threaded layers (rules ``LOCK501``-``LOCK504``):
  the lock-acquisition graph, condition-wait discipline, Eraser-style
  lock-set checking and blocking-while-holding detection;
* :mod:`repro.analysis.dynamic` — **runtime checkers** wired into
  :mod:`repro.simmpi` via ``run_spmd(checker=...)`` (rules
  ``DYN201``-``DYN204``), plus the :class:`LockOrderObserver`
  (``DYN206``) behind the ``instrumented_lock`` factories and
  ``REPRO_THREAD_CHECK=1``.

``repro check lint|shapes|determinism|plan|threads|static|dynamic|all``
(see
:mod:`repro.analysis.check`) runs them and gates CI on zero findings;
``--format sarif`` exports GitHub-annotatable SARIF 2.1.0
(:mod:`repro.analysis.sarif`).  Every rule is documented in
``docs/static-analysis.md``.
"""

from repro.analysis.findings import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Finding,
    findings_from_json,
    findings_to_json,
    format_findings,
)
from repro.analysis.rules import (
    DETERMINISM_RULES,
    DYNAMIC_RULES,
    PLAN_RULES,
    RULES,
    SHAPE_RULES,
    STATIC_RULES,
    SUPPRESSION_RULES,
    THREAD_RULES,
    Rule,
    get_rule,
)
from repro.analysis.suppress import Suppressions, filter_findings
from repro.analysis.linter import (
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.shapes import (
    MemoryBudget,
    shape_check_file,
    shape_check_paths,
    shape_check_source,
)
from repro.analysis.determinism import (
    determinism_check_paths,
    determinism_check_source,
)
from repro.analysis.planver import (
    PlanVerificationError,
    assert_valid_plan,
    plan_lint_file,
    plan_lint_paths,
    plan_lint_source,
    verify_plan,
)
from repro.analysis.sarif import findings_to_sarif
from repro.analysis.threads import (
    default_threads_paths,
    threads_check_paths,
    threads_check_source,
)
from repro.analysis.dynamic import (
    CollectiveMismatchError,
    DynamicChecker,
    LockOrderObserver,
    current_lock_observer,
    instrumented_condition,
    instrumented_lock,
    instrumented_rlock,
    use_lock_observer,
)
from repro.analysis.check import (
    MODES,
    run_check,
    run_determinism,
    run_dynamic,
    run_lint,
    run_plan_checks,
    run_shapes,
    run_threads,
)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Finding",
    "findings_to_json",
    "findings_from_json",
    "format_findings",
    "findings_to_sarif",
    "Rule",
    "RULES",
    "STATIC_RULES",
    "SHAPE_RULES",
    "DYNAMIC_RULES",
    "DETERMINISM_RULES",
    "PLAN_RULES",
    "SUPPRESSION_RULES",
    "THREAD_RULES",
    "get_rule",
    "Suppressions",
    "filter_findings",
    "lint_source",
    "lint_file",
    "lint_paths",
    "MemoryBudget",
    "shape_check_source",
    "shape_check_file",
    "shape_check_paths",
    "determinism_check_source",
    "determinism_check_paths",
    "PlanVerificationError",
    "verify_plan",
    "assert_valid_plan",
    "plan_lint_source",
    "plan_lint_file",
    "plan_lint_paths",
    "DynamicChecker",
    "CollectiveMismatchError",
    "LockOrderObserver",
    "current_lock_observer",
    "instrumented_lock",
    "instrumented_rlock",
    "instrumented_condition",
    "use_lock_observer",
    "threads_check_source",
    "threads_check_paths",
    "default_threads_paths",
    "MODES",
    "run_check",
    "run_lint",
    "run_shapes",
    "run_determinism",
    "run_plan_checks",
    "run_threads",
    "run_dynamic",
]
