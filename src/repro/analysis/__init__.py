"""Correctness tooling for the SPMD substrate (``repro.analysis``).

Two complementary halves, one findings currency:

* :mod:`repro.analysis.linter` — an AST-based **static SPMD linter**
  enforcing the communication discipline the paper's implementation
  depends on (rules ``SPMD001``-``SPMD004``), with per-line
  ``# repro: ignore[RULE]`` suppressions;
* :mod:`repro.analysis.dynamic` — **runtime checkers** wired into
  :mod:`repro.simmpi` via ``run_spmd(checker=...)``: a per-
  communicator collective-matching validator, an RMA fence-epoch race
  detector, and a deadlock reporter (rules ``DYN201``-``DYN204``).

``repro check lint|dynamic|all`` (see :mod:`repro.analysis.check`)
runs both and gates CI on zero findings; every rule is documented in
``docs/static-analysis.md``.
"""

from repro.analysis.findings import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Finding,
    findings_from_json,
    findings_to_json,
    format_findings,
)
from repro.analysis.rules import DYNAMIC_RULES, RULES, STATIC_RULES, Rule, get_rule
from repro.analysis.linter import (
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.dynamic import CollectiveMismatchError, DynamicChecker
from repro.analysis.check import MODES, run_check, run_dynamic, run_lint

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Finding",
    "findings_to_json",
    "findings_from_json",
    "format_findings",
    "Rule",
    "RULES",
    "STATIC_RULES",
    "DYNAMIC_RULES",
    "get_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "DynamicChecker",
    "CollectiveMismatchError",
    "MODES",
    "run_check",
    "run_lint",
    "run_dynamic",
]
