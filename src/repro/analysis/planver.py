"""PLAN4xx: pre-run verification of :class:`UoIPlan` instances.

The engine trusts a plan's own enumeration: checkpoint records are
keyed by ``Subproblem.key``, warm starts flow down each chain in list
order, reductions index the result table by the (bootstrap, λ) grid,
and a bound :class:`~repro.engine.executors.SimMpiExecutor` filters
chains by grid ownership before any collective is posted.  A plan
that violates any of those assumptions does not crash — it silently
corrupts the estimator (clobbered checkpoints, wrong warm starts,
dropped or double-counted subproblems) or deadlocks at scale.

This module proves the assumptions *before* the run:

* :func:`verify_plan` inspects a constructed plan instance —
  ``PLAN401`` checkpoint-key uniqueness, ``PLAN402`` warm-start chain
  ordering, ``PLAN403`` exact coverage of the (bootstrap, λ) grid,
  and ``PLAN404`` a symbolic replay of the grid's ownership partition
  (every cell owns a disjoint, exhaustive slice, so each rank's
  collective sequence is congruent — the static twin of DYN201/202).
  It returns findings; :func:`assert_valid_plan` raises
  :class:`PlanVerificationError` instead.  The engine calls it when
  ``REPRO_PLAN_VERIFY=1`` (see :func:`repro.engine.run_plan`) or via
  ``make_executor(..., verify=True)``.
* :func:`plan_lint_source` is the AST side for ``repro check plan``:
  ``PLAN401`` statically (a constant checkpoint key built inside a
  task loop is a duplicate in waiting) and ``PLAN404`` statically
  (``run_chain`` posting world-communicator collectives, ``reduce``
  posting collectives under a rank/ownership conditional).

Verification is read-only and runs in O(#subproblems): cheap
insurance against a 100k-core launch with a malformed plan.
"""

from __future__ import annotations

import ast
import os
from types import SimpleNamespace
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, format_findings
from repro.analysis.rules import get_rule
from repro.analysis.suppress import filter_findings

__all__ = [
    "PlanVerificationError",
    "verify_plan",
    "assert_valid_plan",
    "verify_lease_disjointness",
    "assert_disjoint_leases",
    "plan_lint_source",
    "plan_lint_file",
    "plan_lint_paths",
    "default_plan_paths",
]

#: Collective methods a communicator exposes (mirrors the SPMD
#: linter's receiver set).
_COLLECTIVE_METHODS = frozenset(
    {
        "allreduce",
        "bcast",
        "barrier",
        "reduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "reduce_scatter",
        "scan",
        "iallreduce",
        "iallgather",
        "ibarrier",
        "fence",
    }
)


class PlanVerificationError(ValueError):
    """A plan failed pre-run verification.

    Carries the full findings list; the message embeds the human
    rendering so engine-level failures are diagnosable from the
    traceback alone.
    """

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = findings
        super().__init__(
            "plan failed pre-run verification:\n" + format_findings(findings)
        )


# ---------------------------------------------------------------------------
# runtime side: verify_plan over a constructed plan instance
# ---------------------------------------------------------------------------
def _plan_finding(
    plan: object, rule_id: str, message: str, **context: object
) -> Finding:
    rule = get_rule(rule_id)
    return Finding(
        rule=rule.id,
        severity=rule.severity,
        message=message,
        file=f"<plan:{type(plan).__name__}>",
        line=0,
        source="plan",
        context=context,
    )


def _check_chain_order(
    plan: object, stage: str, chains: list, findings: list[Finding]
) -> None:
    """PLAN402: each chain is one bootstrap, positions 0..len-1, λ monotone."""
    for ci, chain in enumerate(chains):
        if not chain:
            findings.append(
                _plan_finding(
                    plan,
                    "PLAN402",
                    f"stage {stage!r} chain {ci} is empty",
                    stage=stage,
                    chain=ci,
                )
            )
            continue
        stages = {t.stage for t in chain}
        boots = {t.bootstrap for t in chain}
        if len(stages) > 1 or len(boots) > 1:
            findings.append(
                _plan_finding(
                    plan,
                    "PLAN402",
                    f"stage {stage!r} chain {ci} mixes "
                    f"stages {sorted(stages)!r} / bootstraps {sorted(boots)}: "
                    "a chain shares one bootstrap's data and warm starts",
                    stage=stage,
                    chain=ci,
                )
            )
        positions = [t.pos for t in chain]
        if positions != sorted(positions):
            findings.append(
                _plan_finding(
                    plan,
                    "PLAN402",
                    f"stage {stage!r} chain {ci} positions {positions} are "
                    "not monotone: tasks would warm-start from the wrong β",
                    stage=stage,
                    chain=ci,
                    positions=positions,
                )
            )
        lams = [t.lam_index for t in chain if t.lam_index is not None]
        if lams != sorted(lams):
            findings.append(
                _plan_finding(
                    plan,
                    "PLAN402",
                    f"stage {stage!r} chain {ci} λ indices {lams} are not "
                    "monotone: the λ-path warm start runs large-to-small "
                    "penalties in index order",
                    stage=stage,
                    chain=ci,
                    lam_indices=lams,
                )
            )


def _check_coverage(
    plan: object, stage: str, chains: list, findings: list[Finding]
) -> None:
    """PLAN403: tasks cover the (bootstrap, λ) grid exactly once."""
    first_stage = getattr(plan, "stages", (stage,))[0]
    nboot = getattr(plan, "B1" if stage == first_stage else "B2", None)
    q = getattr(plan, "q", None)
    if nboot is None:
        return  # plan does not expose the grid extents; nothing to prove
    tasks = [t for chain in chains for t in chain]
    per_lambda = any(t.lam_index is not None for t in tasks)
    if per_lambda and q is not None:
        expected = {(k, j) for k in range(nboot) for j in range(q)}
        got = [(t.bootstrap, t.lam_index) for t in tasks]
    else:
        expected = {(k, None) for k in range(nboot)}
        got = [(t.bootstrap, None) for t in tasks]
    seen: set = set()
    dupes: set = set()
    for cell in got:
        if cell in seen:
            dupes.add(cell)
        seen.add(cell)
    missing = expected - seen
    extra = seen - expected
    if missing or extra or dupes:
        findings.append(
            _plan_finding(
                plan,
                "PLAN403",
                f"stage {stage!r} does not cover the (bootstrap, λ) grid "
                f"exactly once: missing={sorted(missing)} "
                f"extra={sorted(extra)} duplicated={sorted(dupes)}",
                stage=stage,
                missing=sorted(missing),
                extra=sorted(extra),
                duplicated=sorted(dupes),
            )
        )


def _check_grid_partition(
    plan: object, stage: str, chains: list, findings: list[Finding]
) -> None:
    """PLAN404: symbolic replay of the grid's ownership partition.

    Replays every cell's ownership predicate (via an attribute-stub
    ``SimpleNamespace``, so no communicators are needed) over the full
    task set: each task must be owned by exactly one (b, l) cell.
    With that proven, a bound executor gives every cell a disjoint,
    exhaustive slice, so ``reduce``'s unconditional world collectives
    see congruent call sequences on every rank — the static
    counterpart of the DYN201/202 runtime checks.
    """
    grid = getattr(plan, "grid", None)
    if grid is None:
        return
    pb = int(getattr(grid, "pb", 1))
    plam = int(getattr(grid, "plam", 1))
    grid_type = type(grid)
    tasks = [t for chain in chains for t in chain]
    for t in tasks:
        owners = []
        for b in range(pb):
            stub_b = SimpleNamespace(pb=pb, plam=plam, b=b, l=0)
            if not grid_type.owns_bootstrap(stub_b, t.bootstrap):
                continue
            for lam in range(plam):
                stub = SimpleNamespace(pb=pb, plam=plam, b=b, l=lam)
                if t.lam_index is None or grid_type.owns_lambda(
                    stub, t.lam_index
                ):
                    owners.append((b, lam))
        expected_owners = plam if t.lam_index is None else 1
        if len(owners) != expected_owners:
            findings.append(
                _plan_finding(
                    plan,
                    "PLAN404",
                    f"stage {stage!r} task {t.key!r} is owned by "
                    f"{len(owners)} grid cells {owners} (expected "
                    f"{expected_owners}): the ownership partition is not "
                    "disjoint/exhaustive, so ranks would disagree on the "
                    "collective schedule",
                    stage=stage,
                    key=t.key,
                    owners=owners,
                )
            )


def verify_plan(plan: object) -> list[Finding]:
    """Pre-run verification of a constructed plan; returns findings.

    Read-only: enumerates ``plan.chains(stage)`` for every stage and
    checks checkpoint-key uniqueness (PLAN401), warm-start chain
    ordering (PLAN402), grid coverage (PLAN403), and the grid
    ownership partition (PLAN404).  An empty list means the plan is
    safe to launch.
    """
    findings: list[Finding] = []
    keys_seen: dict[str, str] = {}
    for stage in getattr(plan, "stages", ()):
        chains = plan.chains(stage)  # type: ignore[attr-defined]
        for chain in chains:
            for task in chain:
                prev = keys_seen.get(task.key)
                if prev is not None:
                    findings.append(
                        _plan_finding(
                            plan,
                            "PLAN401",
                            f"checkpoint key {task.key!r} is used by two "
                            f"subproblems ({prev} and {stage}): the second "
                            "write clobbers the first and restarts recover "
                            "the wrong payload",
                            key=task.key,
                            stages=[prev, stage],
                        )
                    )
                else:
                    keys_seen[task.key] = stage
        _check_chain_order(plan, stage, chains, findings)
        _check_coverage(plan, stage, chains, findings)
        _check_grid_partition(plan, stage, chains, findings)
    return findings


def assert_valid_plan(plan: object) -> None:
    """Raise :class:`PlanVerificationError` unless ``plan`` verifies."""
    findings = verify_plan(plan)
    if findings:
        raise PlanVerificationError(findings)


# ---------------------------------------------------------------------------
# runtime side: lease disjointness (PLAN405)
# ---------------------------------------------------------------------------
def verify_lease_disjointness(leases: Sequence[object]) -> list[Finding]:
    """PLAN405: active coordinator leases never overlap.

    ``leases`` is any sequence of objects with ``keys`` (subproblem
    keys covered), ``chain_index``, ``worker`` and ``speculative``
    attributes (duck-typed so the engine's ``Lease`` needs no import
    here).  The invariant mirrors PLAN404's ownership partition at
    runtime: a subproblem key may be covered by at most one *primary*
    (non-speculative) lease; speculative duplicates of the **same**
    chain are exempt — they re-run a pure chain and only the first
    result is kept — but a speculative lease overlapping a *different*
    chain's keys is still a violation.
    """
    rule = get_rule("PLAN405")
    findings: list[Finding] = []
    primary_by_key: dict[str, object] = {}
    chain_by_key: dict[str, object] = {}
    for lease in leases:
        speculative = bool(getattr(lease, "speculative", False))
        for key in getattr(lease, "keys", ()):
            other = chain_by_key.get(key)
            if other is not None and getattr(
                other, "chain_index", None
            ) != getattr(lease, "chain_index", None):
                findings.append(
                    _lease_finding(rule, key, lease, other, "cross-chain")
                )
            if speculative:
                chain_by_key.setdefault(key, lease)
                continue
            prev = primary_by_key.get(key)
            if prev is not None:
                findings.append(
                    _lease_finding(rule, key, lease, prev, "double-primary")
                )
            else:
                primary_by_key[key] = lease
            chain_by_key.setdefault(key, lease)
    return findings


def _lease_finding(
    rule: object, key: str, lease: object, other: object, shape: str
) -> Finding:
    def _describe(obj: object) -> str:
        worker = getattr(obj, "worker", "?")
        chain = getattr(obj, "chain_index", "?")
        spec = " (speculative)" if getattr(obj, "speculative", False) else ""
        return f"chain {chain} on {worker}{spec}"

    return Finding(
        rule=rule.id,  # type: ignore[attr-defined]
        severity=rule.severity,  # type: ignore[attr-defined]
        message=(
            f"subproblem {key!r} is covered by two active leases "
            f"({_describe(lease)} and {_describe(other)}, {shape}): leases "
            "must partition outstanding work like PLAN404 ownership"
        ),
        file="<coordinator>",
        line=0,
        source="plan",
        context={"key": key, "overlap": shape},
    )


def assert_disjoint_leases(leases: Sequence[object]) -> None:
    """Raise :class:`PlanVerificationError` on any PLAN405 overlap."""
    findings = verify_lease_disjointness(leases)
    if findings:
        raise PlanVerificationError(findings)


# ---------------------------------------------------------------------------
# static side: AST lint for `repro check plan`
# ---------------------------------------------------------------------------
def _plan_classes(tree: ast.Module) -> Iterable[ast.ClassDef]:
    """Classes whose base-name chain (within this file) reaches UoIPlan."""
    classes = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }

    def base_names(node: ast.ClassDef) -> list[str]:
        out = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                out.append(base.id)
            elif isinstance(base, ast.Attribute):
                out.append(base.attr)
        return out

    def is_plan(node: ast.ClassDef, seen: set[str]) -> bool:
        for base in base_names(node):
            if base == "UoIPlan":
                return True
            if base in classes and base not in seen:
                if is_plan(classes[base], seen | {node.name}):
                    return True
        return False

    for node in classes.values():
        if is_plan(node, set()):
            yield node


def _enclosing_loops(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> list[ast.For]:
    out = []
    cur = parents.get(node)
    while cur is not None:
        if isinstance(cur, ast.For):
            out.append(cur)
        cur = parents.get(cur)
    return out


def _key_argument(call: ast.Call) -> ast.expr | None:
    """The ``key`` argument of a ``Subproblem(...)`` construction."""
    for kw in call.keywords:
        if kw.arg == "key":
            return kw.value
    if len(call.args) >= 4:
        return call.args[3]
    return None


def _check_static_duplicate_keys(
    tree: ast.Module, filename: str, findings: list[Finding]
) -> None:
    """PLAN401 static: constant Subproblem key built inside a loop."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Subproblem"
        ):
            continue
        key = _key_argument(node)
        if key is None or not _enclosing_loops(node, parents):
            continue
        constant = isinstance(key, ast.Constant) or (
            isinstance(key, ast.JoinedStr)
            and not any(
                isinstance(part, ast.FormattedValue) for part in key.values
            )
        )
        if constant:
            rule = get_rule("PLAN401")
            findings.append(
                Finding(
                    rule=rule.id,
                    severity=rule.severity,
                    message=(
                        "Subproblem key is a constant built inside a task "
                        "loop: every iteration produces the same checkpoint "
                        "key, so records clobber each other — interpolate "
                        "the loop indices into the key"
                    ),
                    file=filename,
                    line=node.lineno,
                    source="lint",
                    context={},
                )
            )


def _comm_receiver(call: ast.Call) -> str | None:
    """Dotted receiver of a collective call, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in _COLLECTIVE_METHODS:
        return None
    parts: list[str] = []
    cur: ast.expr = func.value
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts)) if parts else None


def _mentions_rank_or_ownership(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("owns_bootstrap", "owns_lambda")
        ):
            return True
    return False


def _check_static_congruence(
    tree: ast.Module, filename: str, findings: list[Finding]
) -> None:
    """PLAN404 static: collective discipline inside plan classes.

    ``run_chain`` runs only on the owning cell's ranks, so a
    world-communicator collective there is rank-divergent by
    construction; ``reduce`` runs on every rank, so its collectives
    must be unconditional (not nested under a rank or ownership
    check).
    """
    rule = get_rule("PLAN404")
    for cls in _plan_classes(tree):
        for meth in cls.body:
            if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if meth.name == "run_chain":
                for node in ast.walk(meth):
                    if not isinstance(node, ast.Call):
                        continue
                    receiver = _comm_receiver(node)
                    if receiver is None:
                        continue
                    terminal = receiver.split(".")[-1]
                    if receiver == "self.comm" or terminal == "world":
                        findings.append(
                            Finding(
                                rule=rule.id,
                                severity=rule.severity,
                                message=(
                                    f"world-communicator collective "
                                    f"`{receiver}.{node.func.attr}` inside "  # type: ignore[union-attr]
                                    "run_chain: ownership filtering means "
                                    "only the owning cell reaches it — "
                                    "other ranks block forever; use the "
                                    "cell/solver communicator"
                                ),
                                file=filename,
                                line=node.lineno,
                                source="lint",
                                context={"receiver": receiver},
                            )
                        )
            elif meth.name == "reduce":
                parents: dict[ast.AST, ast.AST] = {}
                for node in ast.walk(meth):
                    for child in ast.iter_child_nodes(node):
                        parents[child] = node
                for node in ast.walk(meth):
                    if not isinstance(node, ast.Call):
                        continue
                    receiver = _comm_receiver(node)
                    if receiver is None:
                        continue
                    cur = parents.get(node)
                    guarded = None
                    while cur is not None and cur is not meth:
                        if isinstance(
                            cur, ast.If
                        ) and _mentions_rank_or_ownership(cur.test):
                            guarded = cur
                            break
                        cur = parents.get(cur)
                    if guarded is not None:
                        findings.append(
                            Finding(
                                rule=rule.id,
                                severity=rule.severity,
                                message=(
                                    f"collective `{receiver}."
                                    f"{node.func.attr}` in reduce is "  # type: ignore[union-attr]
                                    "guarded by a rank/ownership "
                                    "conditional: reduce runs on every "
                                    "rank and its collectives must be "
                                    "unconditional (accumulate under the "
                                    "guard, reduce outside it)"
                                ),
                                file=filename,
                                line=node.lineno,
                                source="lint",
                                context={"receiver": receiver},
                            )
                        )


def plan_lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Run the static PLAN checks over one source string."""
    tree = ast.parse(source, filename=filename)
    findings: list[Finding] = []
    _check_static_duplicate_keys(tree, filename, findings)
    _check_static_congruence(tree, filename, findings)
    return filter_findings(source, filename, findings, families=("PLAN",))


def plan_lint_file(path: str) -> list[Finding]:
    """Run the static PLAN checks over one file."""
    with open(path, "r", encoding="utf-8") as fh:
        return plan_lint_source(fh.read(), filename=path)


def default_plan_paths() -> list[str]:
    """Where plans live: the engine and the distributed core."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [os.path.join(here, "engine"), os.path.join(here, "core")]


def plan_lint_paths(paths: Sequence[str] | None = None) -> list[Finding]:
    """Run the static PLAN checks over ``.py`` files under ``paths``."""
    targets: list[str] = []
    for path in paths if paths else default_plan_paths():
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                targets.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            targets.append(path)
        else:
            raise ValueError(f"not a directory or .py file: {path}")
    findings: list[Finding] = []
    for target in targets:
        findings.extend(plan_lint_file(target))
    return findings
