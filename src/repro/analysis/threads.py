"""LOCK5xx: lock-order and shared-state analysis for threaded layers.

PRs 6-8 moved the repo into heavily threaded territory — the
multi-tenant scheduler, the socket :class:`~repro.engine.elastic.WorkerHub`,
the replicated results store and double-buffered stream ingestion all
coordinate via ``threading.Lock``/``RLock``/``Condition`` — and none
of the existing passes look at any of it.  This pass is the
ThreadSanitizer-shaped rung of the verification ladder (in the
lock-set spirit of Eraser): it indexes the package the way
:mod:`repro.analysis.determinism` does, identifies every lock object
(``self.x = threading.Lock()`` attributes, annotated
``threading.Condition`` dataclass fields, module-level locks, local
``cv = threading.Condition()`` bindings — the ``instrumented_*``
factory spellings count too), and checks four rules:

* ``LOCK501`` — lock-order inversion: the pass builds the directed
  lock-acquisition graph (edge ``A -> B`` wherever ``B`` is acquired
  while ``A`` is held, following resolved calls made under a lock)
  and reports every edge participating in a cycle;
* ``LOCK502`` — ``Condition.wait()`` whose nearest enclosing loop is
  not a ``while`` with a real predicate (``wait_for`` is exempt — it
  loops internally);
* ``LOCK503`` — an attribute written under a lock in one method and
  written without that lock in another (Eraser-style lock-set, with
  caller-coverage: a helper only ever called with the lock held
  counts as locked, and ``__init__``/``__post_init__`` are
  pre-publication and exempt);
* ``LOCK504`` — a blocking call (socket ``recv``/``accept``,
  ``Queue.get`` with a timeout, ``future.result``, ``time.sleep``,
  engine ``run_plan``/``run_stage``/``run_rolling``) textually inside
  a ``with <lock>:`` block.  ``Condition.wait`` is exempt: it
  releases the lock while waiting.

Lock identity is name-based and precision-first: ``self.x`` resolves
through the enclosing class, ``obj.x`` through local construction
(``obj = ClassName(...)``), parameter annotations, annotated-return
helper calls, and — last — a unique attribute name across every
indexed class.  An acquisition whose receiver cannot be resolved
still counts as *a* lock for LOCK504 but contributes no graph edges.
Suppress per line with ``# repro: ignore[LOCK50x]``; unused LOCK
suppressions are reported as ``SUP001``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import get_rule
from repro.analysis.suppress import filter_findings

__all__ = [
    "BLOCKING_TERMINALS",
    "LOCK_FACTORIES",
    "CONDITION_FACTORIES",
    "threads_check_source",
    "threads_check_paths",
    "default_threads_paths",
]

#: Call terminals that create a plain lock / reentrant lock.  The
#: ``instrumented_*`` spellings are the :mod:`repro.analysis.dynamic`
#: factories production code routes through so a LockOrderObserver can
#: wrap them; statically they are the same lock.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "instrumented_lock", "instrumented_rlock"})

#: Call terminals that create a condition variable (a lock that also
#: waits; LOCK502 applies to its ``wait()`` sites).
CONDITION_FACTORIES = frozenset({"Condition", "instrumented_condition"})

#: Methods exempt from LOCK503: they run before the object is
#: published to other threads.
_INIT_METHODS = frozenset({"__init__", "__post_init__"})

#: Attribute-call terminals that block unboundedly (LOCK504).
#: ``get``/``join`` are deliberately absent from the unconditional set
#: (``dict.get`` / ``str.join`` would drown the pass) — ``.get`` only
#: counts with a ``timeout=`` keyword or a queue-shaped receiver.
BLOCKING_TERMINALS = frozenset(
    {"recv", "accept", "result", "run_plan", "run_stage", "run_rolling"}
)

#: Dotted calls that block (module-level spellings).
_BLOCKING_DOTTED = frozenset({"time.sleep", "select.select"})

#: Container-mutating method names: a call ``self.x.append(...)``
#: writes ``x`` for LOCK503 purposes.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
    }
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _terminal(node: ast.expr) -> str | None:
    """Rightmost name of a Name/Attribute(/Call) chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass(frozen=True)
class LockId:
    """Identity of one lock: owner scope + attribute/variable name.

    ``owner`` is a class name (``Scheduler``), a module name for
    module-level locks, or ``"?"`` for an acquisition whose receiver
    could not be resolved (kept for held-ness, excluded from graph
    edges).
    """

    owner: str
    attr: str
    condition: bool = False

    @property
    def resolved(self) -> bool:
        return self.owner != "?"

    def __str__(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass
class _FuncInfo:
    module: "_ModuleInfo"
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def qualname(self) -> str:
        prefix = f"{self.cls}." if self.cls else ""
        return f"{self.module.name}.{prefix}{self.name}"

    @property
    def display(self) -> str:
        prefix = f"{self.cls}." if self.cls else ""
        return f"{prefix}{self.name}"

    @property
    def is_init(self) -> bool:
        return self.name in _INIT_METHODS


@dataclass
class _ClassInfo:
    name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, _FuncInfo] = field(default_factory=dict)
    #: lock attribute name -> LockId (``self.x = threading.Lock()``
    #: anywhere in the class, or an annotated Condition field).
    locks: dict[str, LockId] = field(default_factory=dict)
    #: non-lock attribute name -> class name it is constructed from
    #: (``self.store = CheckpointStore(...)`` in __init__).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    name: str
    path: str
    source: str
    tree: ast.Module
    functions: dict[str, _FuncInfo] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level lock name -> LockId.
    locks: dict[str, LockId] = field(default_factory=dict)


def _lock_kind(value: ast.expr) -> str | None:
    """``"lock"``/``"condition"`` when ``value`` constructs one."""
    if not isinstance(value, ast.Call):
        return None
    terminal = _terminal(value.func)
    if terminal in LOCK_FACTORIES:
        return "lock"
    if terminal in CONDITION_FACTORIES:
        return "condition"
    return None


def _annotation_is_condition(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    return _terminal(annotation) == "Condition"


class _Index:
    """Whole-package symbol + lock index (see determinism's twin)."""

    def __init__(self) -> None:
        self.modules: dict[str, _ModuleInfo] = {}
        self.functions_by_name: dict[str, list[_FuncInfo]] = {}
        self.classes_by_name: dict[str, list[tuple[_ModuleInfo, _ClassInfo]]] = {}
        #: lock attr name -> owning classes (for unique-name fallback).
        self.lock_attr_owners: dict[str, list[LockId]] = {}

    # -------------------------------------------------------- building
    def add_source(self, source: str, path: str, modname: str) -> None:
        tree = ast.parse(source, filename=path)
        mod = _ModuleInfo(name=modname, path=path, source=source, tree=tree)
        for stmt in tree.body:
            self._index_stmt(mod, stmt)
        self.modules[modname] = mod
        for fn in mod.functions.values():
            self.functions_by_name.setdefault(fn.name, []).append(fn)
        for cls in mod.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append((mod, cls))
            for lock in cls.locks.values():
                self.lock_attr_owners.setdefault(lock.attr, []).append(lock)

    def _index_stmt(self, mod: _ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[stmt.name] = _FuncInfo(mod, None, stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(mod, stmt)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                mod.imports[alias.asname or alias.name] = stmt.module
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                mod.imports[alias.asname or alias.name] = alias.name
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            kind = _lock_kind(stmt.value)
            if isinstance(target, ast.Name) and kind is not None:
                mod.locks[target.id] = LockId(
                    mod.name.rsplit(".", 1)[-1],
                    target.id,
                    condition=kind == "condition",
                )
        elif isinstance(stmt, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._index_stmt(mod, child)

    def _index_class(self, mod: _ModuleInfo, stmt: ast.ClassDef) -> None:
        cls = _ClassInfo(name=stmt.name)
        for base in stmt.bases:
            terminal = _terminal(base)
            if terminal:
                cls.bases.append(terminal)
        for sub in stmt.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[sub.name] = _FuncInfo(mod, stmt.name, sub.name, sub)
                for node in ast.walk(sub):
                    self._note_self_assign(cls, node)
            elif isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                # Dataclass-style field: ``cond: threading.Condition = ...``.
                if _annotation_is_condition(sub.annotation):
                    cls.locks[sub.target.id] = LockId(
                        cls.name, sub.target.id, condition=True
                    )
                kind = _lock_kind(sub.value) if sub.value is not None else None
                if kind is not None:
                    cls.locks[sub.target.id] = LockId(
                        cls.name, sub.target.id, condition=kind == "condition"
                    )
        mod.classes[stmt.name] = cls

    def _note_self_assign(self, cls: _ClassInfo, node: ast.AST) -> None:
        """Record ``self.x = <lock factory / ClassName(...)>``."""
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        kind = _lock_kind(node.value)
        if kind is not None:
            cls.locks[target.attr] = LockId(
                cls.name, target.attr, condition=kind == "condition"
            )
            return
        if isinstance(node.value, ast.Call) and isinstance(
            node.value.func, (ast.Name, ast.Attribute)
        ):
            ctor = _terminal(node.value.func)
            if ctor and ctor[:1].isupper():
                cls.attr_types.setdefault(target.attr, ctor)

    # ------------------------------------------------------ resolution
    def resolve_class(
        self, name: str, mod: _ModuleInfo
    ) -> tuple[_ModuleInfo, _ClassInfo] | None:
        if name in mod.classes:
            return mod, mod.classes[name]
        src = mod.imports.get(name)
        if src is not None and src in self.modules:
            other = self.modules[src]
            if name in other.classes:
                return other, other.classes[name]
        sites = self.classes_by_name.get(name, [])
        if len(sites) == 1:
            return sites[0]
        return None

    def resolve_function(self, name: str, mod: _ModuleInfo) -> _FuncInfo | None:
        if name in mod.functions:
            return mod.functions[name]
        src = mod.imports.get(name)
        if src is not None and src in self.modules:
            other = self.modules[src]
            if name in other.functions:
                return other.functions[name]
        sites = self.functions_by_name.get(name, [])
        if len(sites) == 1:
            return sites[0]
        return None

    def resolve_method(
        self, cls_site: tuple[_ModuleInfo, _ClassInfo], name: str
    ) -> _FuncInfo | None:
        seen: set[str] = set()
        stack = [cls_site]
        while stack:
            mod, cls = stack.pop()
            if cls.name in seen:
                continue
            seen.add(cls.name)
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                site = self.resolve_class(base, mod)
                if site is not None:
                    stack.append(site)
        return None

    def class_lock(
        self, cls_site: tuple[_ModuleInfo, _ClassInfo], attr: str
    ) -> LockId | None:
        """Lock attribute ``attr`` on the class or its bases."""
        seen: set[str] = set()
        stack = [cls_site]
        while stack:
            mod, cls = stack.pop()
            if cls.name in seen:
                continue
            seen.add(cls.name)
            if attr in cls.locks:
                return cls.locks[attr]
            for base in cls.bases:
                site = self.resolve_class(base, mod)
                if site is not None:
                    stack.append(site)
        return None

    def unique_lock_attr(self, attr: str) -> LockId | None:
        """Unique-name fallback: ``attr`` is a lock on exactly one class."""
        owners = self.lock_attr_owners.get(attr, [])
        if len(owners) == 1:
            return owners[0]
        return None


# ---------------------------------------------------------------------------
# per-function summaries
# ---------------------------------------------------------------------------
@dataclass
class _Acquisition:
    lock: LockId
    lineno: int
    #: locks syntactically held when this one is taken.
    held: tuple[LockId, ...]


@dataclass
class _CallSite:
    callee: _FuncInfo
    lineno: int
    held: tuple[LockId, ...]


@dataclass
class _Write:
    attr: str
    lineno: int
    held: tuple[LockId, ...]


@dataclass
class _BlockingCall:
    description: str
    lineno: int
    held: tuple[LockId, ...]


@dataclass
class _WaitSite:
    lock: LockId
    lineno: int
    #: nearest enclosing loop: "while-predicate", "while-true", "for",
    #: or None (no loop at all).
    loop: str | None


@dataclass
class _Summary:
    info: _FuncInfo
    acquisitions: list[_Acquisition] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    writes: list[_Write] = field(default_factory=list)
    blocking: list[_BlockingCall] = field(default_factory=list)
    waits: list[_WaitSite] = field(default_factory=list)


class _FunctionScanner:
    """Build one function's :class:`_Summary` (single recursive walk
    carrying the syntactically-held lock stack)."""

    def __init__(self, index: _Index, info: _FuncInfo) -> None:
        self.index = index
        self.info = info
        self.summary = _Summary(info)
        self._local_types: dict[str, str] = {}
        self._local_locks: dict[str, LockId] = {}
        self._loop_stack: list[str] = []

    # ------------------------------------------------------------ types
    def _prepass(self) -> None:
        node = self.info.node
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if arg.arg in ("self", "cls") or arg.annotation is None:
                continue
            terminal = _terminal(arg.annotation)
            if terminal and terminal[:1].isupper():
                self._local_types[arg.arg] = terminal
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = _lock_kind(sub.value)
            if kind is not None:
                self._local_locks[target.id] = LockId(
                    self.info.display, target.id, condition=kind == "condition"
                )
                continue
            if isinstance(sub.value, ast.Call):
                func = sub.value.func
                ctor = _terminal(func)
                if ctor and ctor[:1].isupper():
                    self._local_types[target.id] = ctor
                elif (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    # ``job = self._job(...)`` with an annotated return.
                    meth = self._self_method(func.attr)
                    if meth is not None and meth.node.returns is not None:
                        ret = _terminal(meth.node.returns)
                        if ret and ret[:1].isupper():
                            self._local_types[target.id] = ret

    def _self_method(self, name: str) -> _FuncInfo | None:
        if self.info.cls is None:
            return None
        cls = self.info.module.classes.get(self.info.cls)
        if cls is None:
            return None
        return self.index.resolve_method((self.info.module, cls), name)

    # ------------------------------------------------------------ locks
    def _lock_of(self, expr: ast.expr) -> LockId | None:
        """Resolve a lock-valued expression to a :class:`LockId`.

        Returns ``None`` when ``expr`` is clearly not a lock; returns
        an unresolved ``LockId("?", attr)`` when it plausibly is one
        (attribute named like a known lock) but the receiver type is
        unknown.
        """
        if isinstance(expr, ast.Name):
            if expr.id in self._local_locks:
                return self._local_locks[expr.id]
            mod_lock = self.info.module.locks.get(expr.id)
            if mod_lock is not None:
                return mod_lock
            src = self.info.module.imports.get(expr.id)
            if src is not None and src in self.index.modules:
                return self.index.modules[src].locks.get(expr.id)
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        value = expr.value
        if isinstance(value, ast.Name):
            owner_cls: str | None = None
            if value.id == "self":
                owner_cls = self.info.cls
            else:
                owner_cls = self._local_types.get(value.id)
            if owner_cls is not None:
                site = self.index.resolve_class(owner_cls, self.info.module)
                if site is not None:
                    lock = self.index.class_lock(site, attr)
                    if lock is not None:
                        return lock
                    if value.id == "self":
                        # self.<attr> on a class where <attr> is not a
                        # lock: definitely not an acquisition target.
                        return None
        unique = self.index.unique_lock_attr(attr)
        if unique is not None:
            return unique
        if attr in self.index.lock_attr_owners:
            return LockId("?", attr)
        return None

    # ------------------------------------------------------------- walk
    def scan(self) -> _Summary:
        self._prepass()
        for stmt in self.info.node.body:
            self._visit(stmt, ())
        return self.summary

    def _visit(self, node: ast.AST, held: tuple[LockId, ...]) -> None:
        if isinstance(node, ast.With):
            acquired: list[LockId] = []
            for item in node.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.summary.acquisitions.append(
                        _Acquisition(lock, item.context_expr.lineno, held)
                    )
                    acquired.append(lock)
                else:
                    self._visit(item.context_expr, held)
            inner = held + tuple(acquired)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, (ast.While, ast.For)):
            if isinstance(node, ast.While):
                predicate = not (
                    isinstance(node.test, ast.Constant) and bool(node.test.value)
                )
                self._loop_stack.append(
                    "while-predicate" if predicate else "while-true"
                )
            else:
                self._loop_stack.append("for")
            self._visit_children(node, held)
            self._loop_stack.pop()
            return
        if isinstance(node, ast.Call):
            self._check_call(node, held)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate scopes; skip
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            self._check_write(node, held)
        self._visit_children(node, held)

    def _visit_children(self, node: ast.AST, held: tuple[LockId, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    # ------------------------------------------------------------ calls
    def _check_call(self, call: ast.Call, held: tuple[LockId, ...]) -> None:
        func = call.func
        terminal = _terminal(func)
        # Explicit .acquire() on a lock expression.
        if terminal == "acquire" and isinstance(func, ast.Attribute):
            lock = self._lock_of(func.value)
            if lock is not None:
                self.summary.acquisitions.append(
                    _Acquisition(lock, call.lineno, held)
                )
                return
        # Condition.wait discipline (LOCK502).
        if terminal == "wait" and isinstance(func, ast.Attribute):
            lock = self._lock_of(func.value)
            if lock is not None and lock.condition:
                loop = self._loop_stack[-1] if self._loop_stack else None
                self.summary.waits.append(_WaitSite(lock, call.lineno, loop))
                return
        # Blocking calls (LOCK504); Condition.wait was handled above
        # and is exempt (it releases the lock while waiting).
        blocking = self._blocking_description(call, terminal)
        if blocking is not None and held:
            self.summary.blocking.append(
                _BlockingCall(blocking, call.lineno, held)
            )
        # Container mutation through a method call (LOCK503 write).
        if (
            terminal in _MUTATORS
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self.summary.writes.append(
                _Write(func.value.attr, call.lineno, held)
            )
        # Call-graph edge.
        callee = self._resolve_call(call)
        if callee is not None:
            self.summary.calls.append(_CallSite(callee, call.lineno, held))

    def _blocking_description(
        self, call: ast.Call, terminal: str | None
    ) -> str | None:
        dotted = _dotted(call.func)
        if dotted in _BLOCKING_DOTTED:
            return f"{dotted}()"
        if terminal is None:
            return None
        if terminal in BLOCKING_TERMINALS:
            return f"{terminal}()"
        if terminal == "get":
            has_timeout = any(kw.arg == "timeout" for kw in call.keywords)
            receiver = (
                _terminal(call.func.value)
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if has_timeout or receiver in ("events", "queue"):
                return "Queue.get()"
        return None

    def _resolve_call(self, call: ast.Call) -> _FuncInfo | None:
        func = call.func
        mod = self.info.module
        if isinstance(func, ast.Name):
            site = self.index.resolve_class(func.id, mod)
            if site is not None:
                return self.index.resolve_method(site, "__init__")
            return self.index.resolve_function(func.id, mod)
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self" and self.info.cls is not None:
                meth = self._self_method(func.attr)
                if meth is not None:
                    return meth
                return None
            owner = self._local_types.get(value.id)
            if owner is not None:
                site = self.index.resolve_class(owner, mod)
                if site is not None:
                    return self.index.resolve_method(site, func.attr)
                return None
            src = mod.imports.get(value.id)
            if src is not None and src in self.index.modules:
                return self.index.modules[src].functions.get(func.attr)
            return None
        # ``self.<attr>.<method>()`` through a typed attribute
        # (``self.clock.tick()`` where __init__ did
        # ``self.clock = LamportClock()``).
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.info.cls is not None
        ):
            cls = mod.classes.get(self.info.cls)
            if cls is not None:
                owner = cls.attr_types.get(value.attr)
                if owner is not None:
                    site = self.index.resolve_class(owner, mod)
                    if site is not None:
                        return self.index.resolve_method(site, func.attr)
        return None

    # ----------------------------------------------------------- writes
    def _check_write(
        self, node: ast.Assign | ast.AugAssign, held: tuple[LockId, ...]
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            for attr, lineno in self._self_attr_stores(target):
                self.summary.writes.append(_Write(attr, lineno, held))

    def _self_attr_stores(
        self, target: ast.expr
    ) -> Iterator[tuple[str, int]]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._self_attr_stores(elt)
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value  # self.x[k] = v writes x
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            yield node.attr, target.lineno


# ---------------------------------------------------------------------------
# whole-program analysis
# ---------------------------------------------------------------------------
class _Analysis:
    def __init__(self, index: _Index) -> None:
        self.index = index
        self.findings: list[Finding] = []
        self.summaries: dict[str, _Summary] = {}
        for mod in index.modules.values():
            for fn in mod.functions.values():
                self.summaries[fn.qualname] = _FunctionScanner(index, fn).scan()
            for cls in mod.classes.values():
                for meth in cls.methods.values():
                    self.summaries[meth.qualname] = _FunctionScanner(
                        index, meth
                    ).scan()
        self._effective = self._effective_acquisitions()
        self._coverage = self._caller_coverage()

    # ------------------------------------------------------------- emit
    def _emit(
        self, rule_id: str, path: str, lineno: int, message: str, **context: object
    ) -> None:
        rule = get_rule(rule_id)
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                message=message,
                file=path,
                line=lineno,
                source="lint",
                context=dict(context),
            )
        )

    # ------------------------------------------- transitive acquisitions
    def _effective_acquisitions(self) -> dict[str, frozenset[LockId]]:
        """Locks each function may acquire, directly or via callees."""
        eff: dict[str, set[LockId]] = {
            q: {a.lock for a in s.acquisitions if a.lock.resolved}
            for q, s in self.summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for q, s in self.summaries.items():
                for call in s.calls:
                    callee = eff.get(call.callee.qualname)
                    if callee and not callee <= eff[q]:
                        eff[q] |= callee
                        changed = True
        return {q: frozenset(v) for q, v in eff.items()}

    # ------------------------------------------------- caller lock cover
    def _caller_coverage(self) -> dict[str, frozenset[LockId]]:
        """Locks provably held at *every* resolved call site of a
        function (Eraser-style: a helper only ever invoked under the
        lock counts as locked).  Call sites inside ``__init__`` are
        pre-publication and skipped; a function whose call sites are
        all inits (or that has none at all) gets the conservative
        answer for its role: all-locks for init-only helpers, none for
        public entry points.
        """
        sites: dict[str, list[tuple[str, tuple[LockId, ...]]]] = {
            q: [] for q in self.summaries
        }
        for q, s in self.summaries.items():
            for call in s.calls:
                target = call.callee.qualname
                if target in sites:
                    sites[target].append((q, call.held))
        all_locks = frozenset(
            lock
            for s in self.summaries.values()
            for a in s.acquisitions
            if a.lock.resolved
            for lock in (a.lock,)
        )
        coverage: dict[str, frozenset[LockId]] = {}
        for q in self.summaries:
            non_init = [
                (caller, held)
                for caller, held in sites[q]
                if not self.summaries[caller].info.is_init
            ]
            if sites[q] and not non_init:
                coverage[q] = all_locks  # init-only helper: exempt
            elif not non_init:
                coverage[q] = frozenset()  # no known callers: entry point
            else:
                coverage[q] = all_locks  # refined below
        changed = True
        while changed:
            changed = False
            for q in self.summaries:
                non_init = [
                    (caller, held)
                    for caller, held in sites[q]
                    if not self.summaries[caller].info.is_init
                ]
                if not non_init:
                    continue
                new = frozenset.intersection(
                    *(
                        frozenset(held) | coverage[caller]
                        for caller, held in non_init
                    )
                )
                if new != coverage[q]:
                    coverage[q] = new
                    changed = True
        return coverage

    # ---------------------------------------------------------- LOCK501
    def check_lock_order(self) -> None:
        """Edges ``A -> B`` for every B acquired (directly or via a
        call) while A is held; report each edge on a cycle."""
        edges: dict[tuple[LockId, LockId], tuple[str, int, str]] = {}

        def note(
            a: LockId, b: LockId, path: str, lineno: int, via: str
        ) -> None:
            if a == b or not (a.resolved and b.resolved):
                return
            edges.setdefault((a, b), (path, lineno, via))

        for q in sorted(self.summaries):
            s = self.summaries[q]
            path = s.info.module.path
            for acq in s.acquisitions:
                for held in acq.held:
                    note(held, acq.lock, path, acq.lineno, s.info.display)
            for call in s.calls:
                if not call.held:
                    continue
                for lock in sorted(
                    self._effective.get(call.callee.qualname, ()),
                    key=str,
                ):
                    for held in call.held:
                        note(
                            held,
                            lock,
                            path,
                            call.lineno,
                            f"{s.info.display} -> {call.callee.display}",
                        )

        adjacency: dict[LockId, set[LockId]] = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)

        def reaches(src: LockId, dst: LockId) -> bool:
            seen: set[LockId] = set()
            stack = [src]
            while stack:
                node = stack.pop()
                if node == dst:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(adjacency.get(node, ()))
            return False

        for (a, b), (path, lineno, via) in sorted(
            edges.items(), key=lambda kv: (kv[1][0], kv[1][1], str(kv[0][0]))
        ):
            if reaches(b, a):
                self._emit(
                    "LOCK501",
                    path,
                    lineno,
                    f"lock-order inversion: `{b}` is acquired while "
                    f"`{a}` is held (in {via}), but another path "
                    f"acquires `{a}` while holding `{b}` — two threads "
                    "interleaving these paths deadlock",
                    edge=[str(a), str(b)],
                    via=via,
                )

    # ---------------------------------------------------------- LOCK502
    def check_condition_waits(self) -> None:
        for q in sorted(self.summaries):
            s = self.summaries[q]
            for wait in s.waits:
                if wait.loop == "while-predicate":
                    continue
                shape = {
                    None: "outside any loop",
                    "while-true": "inside `while True`",
                    "for": "inside a `for` loop",
                }[wait.loop]
                self._emit(
                    "LOCK502",
                    s.info.module.path,
                    wait.lineno,
                    f"`{wait.lock}.wait()` {shape} in {s.info.display}: "
                    "condition waits wake spuriously and the predicate "
                    "can re-falsify before the waiter runs — use "
                    "`while not <predicate>: wait()` (or wait_for)",
                    lock=str(wait.lock),
                    function=s.info.display,
                )

    # ---------------------------------------------------------- LOCK503
    def check_shared_state(self) -> None:
        for modname in sorted(self.index.modules):
            mod = self.index.modules[modname]
            for clsname in sorted(mod.classes):
                cls = mod.classes[clsname]
                if not cls.locks:
                    continue
                self._check_class_state(mod, cls)

    def _held_at(
        self, summary: _Summary, held: tuple[LockId, ...]
    ) -> frozenset[LockId]:
        return frozenset(held) | self._coverage.get(
            summary.info.qualname, frozenset()
        )

    def _check_class_state(self, mod: _ModuleInfo, cls: _ClassInfo) -> None:
        class_locks = set(cls.locks.values())
        guarded: dict[str, set[LockId]] = {}
        for meth in cls.methods.values():
            if meth.is_init:
                continue
            summary = self.summaries[meth.qualname]
            for write in summary.writes:
                if write.attr in cls.locks:
                    continue
                locks = self._held_at(summary, write.held) & class_locks
                if locks:
                    guarded.setdefault(write.attr, set()).update(locks)
        if not guarded:
            return
        for name in sorted(cls.methods):
            meth = cls.methods[name]
            if meth.is_init:
                continue
            summary = self.summaries[meth.qualname]
            for write in summary.writes:
                locks = guarded.get(write.attr)
                if not locks:
                    continue
                if self._held_at(summary, write.held) & locks:
                    continue
                lock_names = ", ".join(sorted(f"`{lk}`" for lk in locks))
                self._emit(
                    "LOCK503",
                    mod.path,
                    write.lineno,
                    f"`self.{write.attr}` is written under {lock_names} "
                    f"elsewhere but written without it in "
                    f"{meth.display}: unlocked writes race every locked "
                    "reader and writer of the shared attribute",
                    attribute=write.attr,
                    locks=sorted(str(lk) for lk in locks),
                    function=meth.display,
                )

    # ---------------------------------------------------------- LOCK504
    def check_blocking_calls(self) -> None:
        for q in sorted(self.summaries):
            s = self.summaries[q]
            for blocked in s.blocking:
                locks = ", ".join(f"`{lk}`" for lk in blocked.held)
                self._emit(
                    "LOCK504",
                    s.info.module.path,
                    blocked.lineno,
                    f"blocking call {blocked.description} while holding "
                    f"{locks} in {s.info.display}: every thread "
                    "contending for the lock stalls for the full wait — "
                    "snapshot under the lock, block outside it",
                    call=blocked.description,
                    locks=[str(lk) for lk in blocked.held],
                    function=s.info.display,
                )

    def run(self) -> list[Finding]:
        self.check_lock_order()
        self.check_condition_waits()
        self.check_shared_state()
        self.check_blocking_calls()
        return self.findings


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def _module_name_for(path: str) -> str:
    """Dotted module name of ``path``; falls back to the stem."""
    posix = os.path.abspath(path).replace(os.sep, "/")
    marker = "/src/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        rel = posix[idx + len("/src/") :]
        return rel[: -len(".py")].replace("/", ".").replace(".__init__", "")
    return os.path.basename(path)[: -len(".py")]


def _apply_suppressions(index: _Index, findings: list[Finding]) -> list[Finding]:
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.file, []).append(f)
    out: list[Finding] = []
    sources = {mod.path: mod.source for mod in index.modules.values()}
    for path, source in sorted(sources.items()):
        out.extend(
            filter_findings(
                source, path, by_file.get(path, []), families=("LOCK",)
            )
        )
    return out


def threads_check_source(
    source: str, filename: str = "<string>"
) -> list[Finding]:
    """Run the LOCK pass over one standalone source string."""
    index = _Index()
    index.add_source(source, filename, "<standalone>")
    return _apply_suppressions(index, _Analysis(index).run())


def default_threads_paths() -> list[str]:
    """The whole ``repro`` package.

    Unlike the DET pass there is no exclusion list: the threaded
    layers (service, elastic, stream) are precisely the point, and the
    lock-free numeric subsystems contribute nothing to index but also
    nothing to flag.
    """
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def threads_check_paths(paths: Sequence[str] | None = None) -> list[Finding]:
    """Run the LOCK pass over ``.py`` files under ``paths``.

    All files are indexed together so lock identities and caller
    coverage cross module boundaries (the scheduler holding its
    condition while touching ``Job.cond``, the store fanning out to
    replica locks).
    """
    roots = paths if paths else default_threads_paths()
    targets: list[str] = []
    for path in roots:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                targets.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            targets.append(path)
        else:
            raise ValueError(f"not a directory or .py file: {path}")
    index = _Index()
    for target in targets:
        with open(target, "r", encoding="utf-8") as fh:
            index.add_source(fh.read(), target, _module_name_for(target))
    return _apply_suppressions(index, _Analysis(index).run())
