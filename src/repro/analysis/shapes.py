"""SHAPE1xx: symbolic shape/dtype/memory abstract interpretation.

The paper's central scaling hazard is silent blow-up: the Kronecker
lifting ``vec Y = (I ⊗ X) vec B`` (eq. 9) is ≈ p³ the size of the
data, so one stray dense materialization — or one allocation whose
symbolic size scales like ``n · p²`` — exhausts a node 40 minutes into
a 100k-core run.  This pass proves the absence of those blow-ups
*before* launch by abstract interpretation over the syntax tree:

* symbolic dims are seeded from the codebase's own idiom
  (``n, p = X.shape``, ``q = len(lambdas)``) and propagated through
  numpy constructors (``zeros``/``empty``/``eye``/``arange``/...),
  ``kron``, ``@``, ``.T``, and ``asarray``/``astype`` dtype casts;
* every recognized allocation is evaluated, as a product of symbolic
  dims times the dtype's itemsize, against a configurable per-rank
  :class:`MemoryBudget` at reference paper scale (``SHAPE102``);
* dense materialization of ``I ⊗ X`` outside the sanctioned
  :func:`repro.linalg.kron.identity_kron` path is flagged
  (``SHAPE101``): ``np.kron(np.eye(p), X)``, ``identity_kron(...,
  sparse=False)``, and ``.toarray()`` on a lifted object;
* float32/float64 drift is flagged (``SHAPE103``): mixed-dtype
  arithmetic, and float32 arrays crossing a solver boundary that
  normalizes to float64.

Like the SPMD linter, the pass is precision-first: every rule fires
only on evidence the AST actually carries (a known constructor, a
known shape binding, a known dtype on both operands), so
``repro check shapes`` gates CI on zero findings over
``repro.linalg`` and ``repro.distribution`` without blanket
suppressions.  Suppress per line with ``# repro: ignore[SHAPE10x]``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import get_rule
from repro.analysis.suppress import filter_findings

__all__ = [
    "Dim",
    "ArrayInfo",
    "MemoryBudget",
    "DEFAULT_BINDINGS",
    "SANCTIONED_KRON_MODULES",
    "SOLVER_BOUNDARIES",
    "shape_check_source",
    "shape_check_file",
    "shape_check_paths",
    "default_shape_paths",
]

#: Reference paper scale used to evaluate symbolic sizes: the Fig. 9
#: configuration (N ≈ 1e5 samples, p = 1000 network nodes, VAR order
#: d = 3, q = 48 penalties, B1 = B2 = 48 bootstraps).  Symbol lookup
#: is case-insensitive on the terminal identifier.
DEFAULT_BINDINGS: dict[str, float] = {
    "n": 100_000.0,
    "m": 100_000.0,
    "t": 100_000.0,
    "nrows": 100_000.0,
    "n_rows": 100_000.0,
    "p": 1_000.0,
    "c": 1_000.0,
    "ncols": 1_000.0,
    "n_cols": 1_000.0,
    "q": 48.0,
    "n_lambdas": 48.0,
    "nlam": 48.0,
    "k": 3_000.0,
    "kdim": 3_000.0,
    "ncoef": 3_000_000.0,
    "d": 3.0,
    "order": 3.0,
    "lag": 3.0,
    "b": 48.0,
    "b1": 48.0,
    "b2": 48.0,
    "nboot": 48.0,
}

#: Value assumed for symbols with no binding: deliberately small, so
#: only *named* paper-scale dims (or Kronecker products of them) can
#: push an allocation over budget — unknown-dim allocations never
#: false-positive.
DEFAULT_SYMBOL_VALUE = 64.0

#: Modules allowed to materialize ``I ⊗ X`` (posix-style path
#: suffixes).  ``repro.linalg.kron`` owns the sanctioned
#: representations; everything else must go through it.
SANCTIONED_KRON_MODULES: tuple[str, ...] = ("linalg/kron.py",)

#: Callables that normalize their array arguments to float64: a known
#: float32 array crossing one of these boundaries silently upcasts.
SOLVER_BOUNDARIES = frozenset(
    {
        "lasso_cd",
        "lasso_admm",
        "consensus_lasso_admm",
        "ols_on_support",
        "ridge_on_support",
    }
)

_DTYPE_SIZES = {
    "float64": 8,
    "float32": 4,
    "float16": 2,
    "complex128": 16,
    "int64": 8,
    "int32": 4,
    "intp": 8,
    "int8": 1,
    "uint8": 1,
    "bool": 1,
}

_ALLOC_FUNCS = frozenset({"zeros", "empty", "ones", "full"})
_UNKNOWN = "?"


@dataclass(frozen=True)
class Dim:
    """One symbolic dimension: ``coeff * prod(syms)`` (a monomial).

    Sums and non-monomial expressions collapse to the unknown symbol
    ``"?"`` — the interpreter under-approximates rather than guess.
    """

    coeff: float = 1.0
    syms: tuple[str, ...] = ()

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(
            self.coeff * other.coeff, tuple(sorted(self.syms + other.syms))
        )

    def evaluate(self, bindings: dict[str, float]) -> float:
        value = self.coeff
        for sym in self.syms:
            value *= bindings.get(sym.lower(), DEFAULT_SYMBOL_VALUE)
        return value

    def __str__(self) -> str:
        parts = [str(int(self.coeff))] if self.coeff != 1.0 or not self.syms else []
        parts.extend(self.syms)
        return "*".join(parts) if parts else "1"


@dataclass
class ArrayInfo:
    """What the interpreter knows about one bound array variable."""

    shape: tuple[Dim, ...] | None = None
    dtype: str | None = None
    lifted: bool = False  # result of identity_kron / IdentityKronOperator


@dataclass
class MemoryBudget:
    """Per-rank memory budget for ``SHAPE102``.

    ``bindings`` maps symbol names (case-insensitive) to reference
    values; ``per_rank_bytes`` is the ceiling one allocation may reach
    when evaluated at those values (default 4 GiB — half a Cori KNL
    node's usable DRAM, the paper's target machine).
    """

    per_rank_bytes: float = 4.0 * 2**30
    bindings: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_BINDINGS))


def _terminal(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _var_key(node: ast.expr) -> str | None:
    """Dotted key for a Name/Attribute chain (``x``, ``self.Xc``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _var_key(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_np_attr(node: ast.expr, names: Iterable[str]) -> str | None:
    """``fn`` when ``node`` is ``np.fn`` / ``numpy.fn`` with fn in names."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
        and node.attr in names
    ):
        return node.attr
    return None


def _dtype_of_node(node: ast.expr | None) -> str | None:
    """Dtype string for a ``dtype=`` argument node, if recognizable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        if node.id == "float":
            return "float64"
        if node.id in ("int", "bool"):
            return "int64" if node.id == "int" else "bool"
        return None
    if isinstance(node, ast.Attribute):
        # np.float32, np.float64, np.intp, ...
        if node.attr in _DTYPE_SIZES:
            return node.attr
    return None


def _kwarg(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _itemsize(dtype: str | None) -> int:
    return _DTYPE_SIZES.get(dtype or "float64", 8)


class _ScopeInterpreter:
    """Abstract interpretation of one scope (function or module body)."""

    def __init__(
        self,
        filename: str,
        findings: list[Finding],
        budget: MemoryBudget,
        sanctioned: bool,
    ) -> None:
        self.filename = filename
        self.findings = findings
        self.budget = budget
        self.sanctioned = sanctioned
        self.env: dict[str, ArrayInfo] = {}

    # ------------------------------------------------------------ emit
    def _emit(self, rule_id: str, lineno: int, message: str, **context: object) -> None:
        rule = get_rule(rule_id)
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                message=message,
                file=self.filename,
                line=lineno,
                source="lint",
                context=context,
            )
        )

    # ----------------------------------------------------- dim algebra
    def _dim(self, node: ast.expr) -> Dim:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return Dim(float(node.value))
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = _terminal(node)
            return Dim(1.0, (name,)) if name else Dim(1.0, (_UNKNOWN,))
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return self._dim(node.left) * self._dim(node.right)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and node.args
        ):
            inner = _var_key(node.args[0])
            return Dim(1.0, (f"len({inner})" if inner else _UNKNOWN,))
        return Dim(1.0, (_UNKNOWN,))

    def _shape_from_tuple(self, node: ast.expr) -> tuple[Dim, ...]:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._dim(el) for el in node.elts)
        return (self._dim(node),)

    # ----------------------------------------------------- allocations
    def _record_allocation(
        self,
        lineno: int,
        shape: tuple[Dim, ...],
        dtype: str | None,
        what: str,
    ) -> None:
        """SHAPE102: evaluate the allocation at reference scale."""
        total = Dim(float(_itemsize(dtype)))
        for dim in shape:
            total = total * dim
        nbytes = total.evaluate(self.budget.bindings)
        if nbytes > self.budget.per_rank_bytes:
            shape_str = " x ".join(str(d) for d in shape)
            self._emit(
                "SHAPE102",
                lineno,
                f"{what} of symbolic shape ({shape_str}) evaluates to "
                f"{nbytes:.3g} bytes at reference scale, over the "
                f"{self.budget.per_rank_bytes:.3g}-byte per-rank budget",
                shape=[str(d) for d in shape],
                bytes=nbytes,
                budget=self.budget.per_rank_bytes,
            )

    # ------------------------------------------------- expression eval
    def _eval_call(self, call: ast.Call) -> ArrayInfo | None:
        """ArrayInfo for a recognized constructor call, else None.

        Also responsible for the SHAPE101 checks that key on call
        syntax (``np.kron(np.eye(p), X)``, ``identity_kron(...,
        sparse=False)``).
        """
        func = call.func
        lineno = call.lineno

        fn = _is_np_attr(func, _ALLOC_FUNCS)
        if fn is not None and call.args:
            shape = self._shape_from_tuple(call.args[0])
            dtype = _dtype_of_node(_kwarg(call, "dtype"))
            self._record_allocation(lineno, shape, dtype, f"np.{fn} allocation")
            return ArrayInfo(shape=shape, dtype=dtype or "float64")

        fn = _is_np_attr(func, ("eye", "identity"))
        if fn is not None and call.args:
            d = self._dim(call.args[0])
            dtype = _dtype_of_node(_kwarg(call, "dtype"))
            self._record_allocation(lineno, (d, d), dtype, f"np.{fn} allocation")
            return ArrayInfo(shape=(d, d), dtype=dtype or "float64")

        if _is_np_attr(func, ("arange",)) is not None and call.args:
            d = self._dim(call.args[-1] if len(call.args) <= 1 else call.args[1])
            dtype = _dtype_of_node(_kwarg(call, "dtype"))
            return ArrayInfo(shape=(d,), dtype=dtype)

        if _is_np_attr(func, ("kron",)) is not None and len(call.args) == 2:
            left, right = call.args
            if not self.sanctioned and isinstance(left, ast.Call) and (
                _is_np_attr(left.func, ("eye", "identity")) is not None
            ):
                self._emit(
                    "SHAPE101",
                    lineno,
                    "dense materialization of I ⊗ X via np.kron(np.eye(p), "
                    "X): ≈ p³ blow-up — use repro.linalg.kron "
                    "(identity_kron sparse / IdentityKronOperator) instead",
                    pattern="np.kron(np.eye, .)",
                )
            linfo = self._eval_expr(left)
            rinfo = self._eval_expr(right)
            if (
                linfo is not None
                and rinfo is not None
                and linfo.shape is not None
                and rinfo.shape is not None
                and len(linfo.shape) == len(rinfo.shape) == 2
            ):
                shape = (
                    linfo.shape[0] * rinfo.shape[0],
                    linfo.shape[1] * rinfo.shape[1],
                )
                self._record_allocation(
                    lineno, shape, rinfo.dtype, "np.kron materialization"
                )
                return ArrayInfo(shape=shape, dtype=rinfo.dtype)
            return ArrayInfo()

        # identity_kron(...) / IdentityKronOperator(...): lifted objects.
        callee = _terminal(func)
        if callee == "identity_kron":
            sparse_kw = _kwarg(call, "sparse")
            dense = (
                isinstance(sparse_kw, ast.Constant) and sparse_kw.value is False
            )
            if dense and not self.sanctioned:
                self._emit(
                    "SHAPE101",
                    lineno,
                    "identity_kron(..., sparse=False) materializes the "
                    "dense lifted design (≈ p³): keep the sparse default "
                    "or use IdentityKronOperator",
                    pattern="identity_kron(sparse=False)",
                )
            return ArrayInfo(lifted=True)
        if callee == "IdentityKronOperator":
            return ArrayInfo(lifted=True)

        if _is_np_attr(func, ("asarray", "ascontiguousarray", "array")) and call.args:
            inner = self._eval_expr(call.args[0])
            dtype = _dtype_of_node(_kwarg(call, "dtype"))
            if inner is not None:
                return ArrayInfo(
                    shape=inner.shape,
                    dtype=dtype or inner.dtype,
                    lifted=inner.lifted,
                )
            return ArrayInfo(dtype=dtype)

        # x.astype(dt): dtype change, shape preserved.
        if isinstance(func, ast.Attribute) and func.attr == "astype" and call.args:
            inner = self._eval_expr(func.value)
            dtype = _dtype_of_node(call.args[0])
            if inner is not None:
                return ArrayInfo(shape=inner.shape, dtype=dtype, lifted=inner.lifted)
            return ArrayInfo(dtype=dtype)

        # .toarray() on a lifted object: dense materialization.
        if isinstance(func, ast.Attribute) and func.attr == "toarray":
            inner = self._eval_expr(func.value)
            if inner is not None and inner.lifted and not self.sanctioned:
                self._emit(
                    "SHAPE101",
                    lineno,
                    ".toarray() on a lifted I ⊗ X object materializes the "
                    "dense design (≈ p³ blow-up)",
                    pattern=".toarray()",
                )
            return ArrayInfo()

        # Solver boundary: float32 arguments silently upcast to float64.
        if callee in SOLVER_BOUNDARIES:
            for arg in call.args:
                info = self._eval_expr(arg)
                if info is not None and info.dtype == "float32":
                    self._emit(
                        "SHAPE103",
                        lineno,
                        f"float32 array crosses the `{callee}` solver "
                        "boundary, which normalizes to float64: the input "
                        "dtype is silently dropped — cast explicitly at "
                        "the boundary",
                        boundary=callee,
                    )
        return None

    def _eval_expr(self, node: ast.expr) -> ArrayInfo | None:
        """ArrayInfo of an expression, if the interpreter can tell."""
        key = _var_key(node)
        if key is not None and key in self.env:
            return self.env[key]
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute) and node.attr == "T":
            inner = self._eval_expr(node.value)
            if inner is not None and inner.shape is not None:
                return ArrayInfo(
                    shape=tuple(reversed(inner.shape)), dtype=inner.dtype
                )
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
            left = self._eval_expr(node.left)
            right = self._eval_expr(node.right)
            self._check_mixed_dtype(node, left, right)
            if (
                left is not None
                and right is not None
                and left.shape is not None
                and right.shape is not None
                and len(left.shape) == 2
                and len(right.shape) == 2
            ):
                return ArrayInfo(
                    shape=(left.shape[0], right.shape[1]),
                    dtype=left.dtype if left.dtype == right.dtype else None,
                )
            return None
        if isinstance(node, ast.BinOp):
            left = self._eval_expr(node.left)
            right = self._eval_expr(node.right)
            self._check_mixed_dtype(node, left, right)
            if left is not None and left.shape is not None:
                return ArrayInfo(shape=left.shape, dtype=left.dtype)
            return None
        return None

    def _check_mixed_dtype(
        self, node: ast.BinOp, left: ArrayInfo | None, right: ArrayInfo | None
    ) -> None:
        """SHAPE103: arithmetic mixing known float32 and float64."""
        dtypes = {
            info.dtype
            for info in (left, right)
            if info is not None and info.dtype in ("float32", "float64")
        }
        if dtypes == {"float32", "float64"}:
            self._emit(
                "SHAPE103",
                node.lineno,
                "mixed float32/float64 arithmetic silently upcasts to "
                "float64: normalize the dtype at the subsystem boundary",
                op=type(node.op).__name__,
            )

    # -------------------------------------------------------- statements
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are interpreted separately
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._assign(stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, stmt.value)
        else:
            self._visit_exprs(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, (ast.expr,)) and not isinstance(
                stmt, (ast.Assign, ast.AnnAssign)
            ):
                pass  # already visited via _visit_exprs
        # Statement bodies (for/if/while/with) are statements and are
        # handled by the iter_child_nodes walk above.

    def _visit_exprs(self, stmt: ast.stmt) -> None:
        """Evaluate every call/binop in a non-assignment statement."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(node, ast.Call):
                self._eval_call(node)
            elif isinstance(node, ast.BinOp):
                self._check_mixed_dtype(
                    node,
                    self._eval_expr(node.left),
                    self._eval_expr(node.right),
                )

    def _assign(self, target: ast.expr, value: ast.expr) -> None:
        # `n, p = X.shape`: bind X's shape to the target symbols.
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(value, ast.Attribute)
            and value.attr == "shape"
        ):
            src = _var_key(value.value)
            dims = []
            for el in target.elts:
                name = el.id if isinstance(el, ast.Name) else _UNKNOWN
                dims.append(Dim(1.0, (name,)))
            if src is not None:
                existing = self.env.get(src)
                self.env[src] = ArrayInfo(
                    shape=tuple(dims),
                    dtype=existing.dtype if existing else None,
                    lifted=existing.lifted if existing else False,
                )
            return
        # Parallel assignment of calls: evaluate for side effects.
        if isinstance(target, (ast.Tuple, ast.List)):
            self._eval_expr(value)
            return
        info = self._eval_expr(value)
        key = _var_key(target)
        if key is None:
            return
        if info is not None:
            self.env[key] = info
        else:
            self.env.pop(key, None)  # rebound to something unknown


def _scope_bodies(tree: ast.Module) -> Iterable[list[ast.stmt]]:
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _is_sanctioned(filename: str, sanctioned: tuple[str, ...]) -> bool:
    posix = filename.replace(os.sep, "/")
    return any(posix.endswith(suffix) for suffix in sanctioned)


def shape_check_source(
    source: str,
    filename: str = "<string>",
    *,
    budget: MemoryBudget | None = None,
    sanctioned: tuple[str, ...] = SANCTIONED_KRON_MODULES,
) -> list[Finding]:
    """Run the SHAPE pass over one source string."""
    tree = ast.parse(source, filename=filename)
    budget = budget if budget is not None else MemoryBudget()
    findings: list[Finding] = []
    in_sanctioned = _is_sanctioned(filename, sanctioned)
    for body in _scope_bodies(tree):
        interp = _ScopeInterpreter(filename, findings, budget, in_sanctioned)
        interp.run(body)
    # One finding per (rule, line): the expression evaluator may visit
    # a call twice (once as a value, once inside an enclosing binop).
    seen: set[tuple[str, int, str]] = set()
    unique: list[Finding] = []
    for f in findings:
        sig = (f.rule, f.line, f.message)
        if sig not in seen:
            seen.add(sig)
            unique.append(f)
    return filter_findings(source, filename, unique, families=("SHAPE",))


def shape_check_file(
    path: str, *, budget: MemoryBudget | None = None
) -> list[Finding]:
    """Run the SHAPE pass over one file."""
    with open(path, "r", encoding="utf-8") as fh:
        return shape_check_source(fh.read(), filename=path, budget=budget)


def default_shape_paths() -> list[str]:
    """The tree ``repro check shapes`` covers by default: the numeric
    kernels (``repro.linalg``) and the data-distribution layer
    (``repro.distribution``) — the two subsystems the Kronecker lifting
    flows through."""
    here = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [os.path.join(here, "linalg"), os.path.join(here, "distribution")]


def shape_check_paths(
    paths: Sequence[str] | None = None,
    *,
    budget: MemoryBudget | None = None,
) -> list[Finding]:
    """Run the SHAPE pass over ``.py`` files under ``paths``."""
    targets: list[str] = []
    for path in paths if paths else default_shape_paths():
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                targets.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            targets.append(path)
        else:
            raise ValueError(f"not a directory or .py file: {path}")
    findings: list[Finding] = []
    for target in targets:
        findings.extend(shape_check_file(target, budget=budget))
    return findings
