"""Runtime SPMD checkers for the simulated MPI substrate.

A :class:`DynamicChecker` is handed to
:func:`repro.simmpi.run_spmd(checker=...) <repro.simmpi.run_spmd>` and
receives callbacks from the communication layer while the program
runs:

* **Collective matching** (``DYN201``/``DYN202``) — every collective
  contribution carries a little metadata record (operation kind,
  reduce op, root, payload dtype/shape, call site); when the last rank
  arrives the checker validates that all ranks agree *before* the
  payloads are combined, catching rank-divergent call sequences and
  silently rank-dependent reductions.
* **RMA epoch races** (``DYN203``) — every ``Window.get``/``put``/
  ``accumulate`` is recorded against its fence epoch; at each fence
  (and at job end) the epoch's accesses are checked pairwise for
  conflicting overlap on the same target rows.
* **Deadlock reporting** (``DYN204``) — when the runtime's timeout
  abort fires, the checker records a finding naming every blocked
  rank and the call each was waiting in.
* **Lock-order observation** (``DYN206``) — a
  :class:`LockOrderObserver` wraps the service/elastic/stream lock
  objects (production code creates them through the
  :func:`instrumented_lock` / :func:`instrumented_rlock` /
  :func:`instrumented_condition` factories, which return *plain*
  ``threading`` primitives whenever no observer is active), records
  each thread's acquisition stack, and reports observed order
  inversions and long-held-lock stalls — the runtime twin of the
  static ``LOCK501``/``LOCK504`` pass in
  :mod:`repro.analysis.threads`.  Enable globally with
  ``REPRO_THREAD_CHECK=1`` or per-scope with
  :func:`use_lock_observer`.

The checker is pure observation: it never touches payloads, so runs
with a checker attached are bitwise identical to runs without
(asserted in ``tests/test_analysis_dynamic.py``).  The hooks are
consulted only when a checker is attached; the disabled-path cost is
one ``is None`` test per operation.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.analysis.findings import Finding
from repro.analysis.rules import get_rule

__all__ = [
    "DynamicChecker",
    "CollectiveMismatchError",
    "call_site",
    "LockOrderObserver",
    "instrumented_lock",
    "instrumented_rlock",
    "instrumented_condition",
    "use_lock_observer",
    "current_lock_observer",
]

#: Files whose frames are skipped when attributing a dynamic finding
#: to a user call site.
_INTERNAL_FILES = (
    os.path.join("simmpi", "comm.py"),
    os.path.join("simmpi", "window.py"),
    os.path.join("simmpi", "executor.py"),
    os.path.join("analysis", "dynamic.py"),
)


class CollectiveMismatchError(RuntimeError):
    """Raised at the mismatched collective when a checker detects that
    ranks posted different operation kinds to one sequence point."""


def call_site() -> tuple[str, int]:
    """``(file, line)`` of the innermost non-runtime caller frame."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(_INTERNAL_FILES):
            return filename, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


def _describe_value(value: Any) -> dict:
    """Shape/dtype summary of a collective contribution."""
    if isinstance(value, np.ndarray):
        return {"dtype": str(value.dtype), "shape": list(value.shape)}
    return {"dtype": type(value).__name__, "shape": None}


def _key_footprint(key: Any, length: int) -> tuple:
    """Normalize an RMA index key to ``(rows, cols)`` for overlap tests.

    ``rows`` is a frozenset of first-axis indices when the key is
    analyzable (int / slice / integer array, or a tuple whose first
    element is one), else ``None`` meaning *potentially everything*.
    ``cols`` is ``None`` (whole rows) or the ``repr`` of the trailing
    index components.
    """
    cols: str | None = None
    head = key
    if isinstance(key, tuple):
        head = key[0] if key else slice(None)
        if len(key) > 1:
            cols = repr(key[1:])
    rows: frozenset | None
    if isinstance(head, (int, np.integer)):
        idx = int(head)
        rows = frozenset({idx % length if length else idx})
    elif isinstance(head, slice):
        rows = frozenset(range(*head.indices(length)))
    elif isinstance(head, (list, np.ndarray)):
        arr = np.asarray(head)
        if arr.dtype == bool:
            rows = frozenset(np.flatnonzero(arr).tolist())
        elif np.issubdtype(arr.dtype, np.integer):
            rows = frozenset(int(i) % length if length else int(i) for i in arr.ravel())
        else:
            rows = None
    else:
        rows = None
    return rows, cols


def _footprints_conflict(a: tuple, b: tuple) -> bool:
    rows_a, cols_a = a
    rows_b, cols_b = b
    if rows_a is not None and rows_b is not None and not (rows_a & rows_b):
        return False
    if cols_a is not None and cols_b is not None and cols_a != cols_b:
        return False
    return True


class DynamicChecker:
    """Thread-safe collector of runtime SPMD findings.

    Parameters
    ----------
    raise_on_mismatch:
        When True (default), a collective *kind* mismatch (``DYN201``)
        raises :class:`CollectiveMismatchError` in the arriving rank
        after recording the finding — without this the runtime would
        combine unrelated payloads and fail somewhere far from the
        cause.  Argument-level mismatches (``DYN202``) and RMA races
        (``DYN203``) are recorded but never raise: the checked program
        runs to completion bitwise-identically.
    """

    def __init__(self, *, raise_on_mismatch: bool = True) -> None:
        self.raise_on_mismatch = raise_on_mismatch
        self.findings: list[Finding] = []
        self._lock = threading.Lock()
        #: (comm_id, seq) -> {rank: meta}; dropped after validation.
        self._slots: dict[tuple[int, int], dict[int, dict]] = {}
        #: (win_id, epoch) -> list of access records.
        self._epochs: dict[tuple[int, int], list[dict]] = {}
        self._analyzed: set[tuple[int, int]] = set()

    # ------------------------------------------------------------- core
    def _emit(
        self,
        rule_id: str,
        message: str,
        site: tuple[str, int],
        **context: object,
    ) -> Finding:
        rule = get_rule(rule_id)
        finding = Finding(
            rule=rule.id,
            severity=rule.severity,
            message=message,
            file=site[0],
            line=site[1],
            source="dynamic",
            context=context,
        )
        with self._lock:
            self.findings.append(finding)
        return finding

    def findings_for(self, rule_id: str) -> list[Finding]:
        with self._lock:
            return [f for f in self.findings if f.rule == rule_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self.findings)

    # ------------------------------------------------------ collectives
    def collective_meta(
        self,
        kind: str,
        value: Any = None,
        *,
        op: str | None = None,
        root: int | None = None,
        checked_value: bool = True,
    ) -> dict:
        """Build one rank's contribution record (called by ``SimComm``)."""
        meta: dict[str, Any] = {"kind": kind, "site": call_site()}
        if op is not None:
            meta["op"] = op
        if root is not None:
            meta["root"] = root
        if checked_value:
            meta.update(_describe_value(value))
        return meta

    def on_collective_contribution(
        self, comm_id: int, comm_size: int, seq: int, rank: int, meta: dict
    ) -> None:
        """Register one rank's contribution; validate on the last one."""
        with self._lock:
            slot = self._slots.setdefault((comm_id, seq), {})
            slot[rank] = meta
            if len(slot) < comm_size:
                return
            del self._slots[(comm_id, seq)]
        self._validate_slot(comm_id, seq, slot)

    def _validate_slot(self, comm_id: int, seq: int, metas: dict[int, dict]) -> None:
        by_rank = sorted(metas.items())
        kinds = {m["kind"] for _, m in by_rank}
        if len(kinds) > 1:
            per_rank = {r: m["kind"] for r, m in by_rank}
            sites = {r: f"{m['site'][0]}:{m['site'][1]}" for r, m in by_rank}
            finding = self._emit(
                "DYN201",
                f"collective sequence mismatch at seq {seq}: ranks called "
                + ", ".join(f"rank {r}: {k}" for r, k in per_rank.items()),
                by_rank[0][1]["site"],
                seq=seq,
                kinds=per_rank,
                sites=sites,
            )
            if self.raise_on_mismatch:
                raise CollectiveMismatchError(
                    f"[{finding.rule}] {finding.message} "
                    f"(sites: {', '.join(f'{r}={s}' for r, s in sites.items())})"
                )
            return

        kind = by_rank[0][1]["kind"]
        for attr, label in (("op", "reduce op"), ("root", "root")):
            values = {m.get(attr) for _, m in by_rank}
            if len(values) > 1:
                self._emit(
                    "DYN202",
                    f"`{kind}` at seq {seq} called with mismatched {label}s "
                    f"across ranks: {sorted(map(str, values))}",
                    by_rank[0][1]["site"],
                    seq=seq,
                    kind=kind,
                    attribute=attr,
                    values={r: m.get(attr) for r, m in by_rank},
                )

        described = [(r, m) for r, m in by_rank if "dtype" in m]
        if described:
            dtypes = {m["dtype"] for _, m in described}
            shapes = {
                tuple(m["shape"]) if m["shape"] is not None else None
                for _, m in described
            }
            if len(dtypes) > 1 or len(shapes) > 1:
                self._emit(
                    "DYN202",
                    f"`{kind}` at seq {seq} called with mismatched "
                    f"contributions across ranks: dtypes={sorted(dtypes)}, "
                    f"shapes={sorted(map(str, shapes))}",
                    by_rank[0][1]["site"],
                    seq=seq,
                    kind=kind,
                    attribute="payload",
                    dtypes={r: m["dtype"] for r, m in described},
                    shapes={r: m["shape"] for r, m in described},
                )

    # -------------------------------------------------------------- rma
    def on_rma(
        self,
        win_id: int,
        epoch: int,
        origin: int,
        target: int,
        op: str,
        key: Any,
        buffer_len: int,
    ) -> None:
        """Record one one-sided access (called by ``Window``)."""
        record = {
            "origin": origin,
            "target": target,
            "op": op,
            "key": repr(key),
            "footprint": _key_footprint(key, buffer_len),
            "site": call_site(),
        }
        with self._lock:
            self._epochs.setdefault((win_id, epoch), []).append(record)

    def end_epoch(self, win_id: int, epoch: int) -> None:
        """Analyze one closed fence epoch (idempotent across ranks)."""
        with self._lock:
            if (win_id, epoch) in self._analyzed:
                return
            self._analyzed.add((win_id, epoch))
            accesses = self._epochs.pop((win_id, epoch), [])
        self._analyze_epoch(epoch, accesses)

    def finalize(self) -> None:
        """Analyze every epoch never closed by a fence (job end)."""
        with self._lock:
            pending = [
                (key, accesses)
                for key, accesses in self._epochs.items()
                if key not in self._analyzed
            ]
            for key, _ in pending:
                self._analyzed.add(key)
            self._epochs.clear()
        for (win_id, epoch), accesses in pending:
            self._analyze_epoch(epoch, accesses)

    def _analyze_epoch(self, epoch: int, accesses: list[dict]) -> None:
        writes = [a for a in accesses if a["op"] in ("put", "accumulate")]
        if not writes:
            return
        reported: set[tuple] = set()
        for w in writes:
            for other in accesses:
                if other is w:
                    continue
                if other["target"] != w["target"]:
                    continue
                if w["op"] == "accumulate" and other["op"] == "accumulate":
                    continue  # concurrent same-op accumulates are ordered
                if not _footprints_conflict(w["footprint"], other["footprint"]):
                    continue
                pair_id = (
                    frozenset(
                        (
                            (w["origin"], w["op"], w["key"]),
                            (other["origin"], other["op"], other["key"]),
                        )
                    ),
                    w["target"],
                )
                if pair_id in reported:
                    continue
                reported.add(pair_id)
                self._emit(
                    "DYN203",
                    f"RMA race in epoch {epoch}: `{w['op']}` from rank "
                    f"{w['origin']} conflicts with `{other['op']}` from rank "
                    f"{other['origin']} on target rank {w['target']} key "
                    f"{w['key']} — separate them with a fence",
                    w["site"],
                    epoch=epoch,
                    target=w["target"],
                    ops=sorted({w["op"], other["op"]}),
                    origins=sorted({w["origin"], other["origin"]}),
                    keys=sorted({w["key"], other["key"]}),
                    other_site=f"{other['site'][0]}:{other['site'][1]}",
                )

    # --------------------------------------------------------- deadlock
    def on_deadlock(self, blocked: dict[int, str], reason: str) -> None:
        """Record the runtime's deadlock report (called on timeout abort)."""
        description = "; ".join(
            f"rank {r} waiting in {call}" for r, call in sorted(blocked.items())
        )
        self._emit(
            "DYN204",
            f"deadlock: {reason} — blocked: {description or 'no ranks registered'}",
            ("<runtime>", 0),
            blocked={str(r): c for r, c in blocked.items()},
        )

    def on_lease_stall(self, stalled: dict[str, str], reason: str) -> None:
        """Record a coordinator fleet stall (DYN205).

        The worker-lease generalization of :meth:`on_deadlock`:
        ``stalled`` maps each worker name to a description of the
        lease it holds (chain + subproblem keys); called by the
        engine coordinator when no completion, partial, join or leave
        arrives within its stall timeout, right before the run aborts.
        """
        description = "; ".join(
            f"worker {w} holding {lease}"
            for w, lease in sorted(stalled.items())
        )
        self._emit(
            "DYN205",
            f"worker-lease stall: {reason} — "
            f"{description or 'no workers registered'}",
            ("<coordinator>", 0),
            stalled=dict(sorted(stalled.items())),
        )


# ---------------------------------------------------------------------------
# DYN206: runtime lock-order observation
# ---------------------------------------------------------------------------
class LockOrderObserver:
    """Observe the order in which threads take instrumented locks.

    The runtime twin of the static ``LOCK501``/``LOCK504`` pass: every
    :func:`instrumented_lock`/:func:`instrumented_rlock` acquisition is
    pushed onto a per-thread stack, and

    * taking lock ``B`` while holding ``A`` records the directed edge
      ``A -> B``; the first time the *reverse* edge is also observed —
      from any thread, at any point in the run — a ``DYN206`` finding
      is emitted naming both sites (one finding per unordered pair);
    * a lock held longer than ``stall_threshold`` seconds (checked
      when the outermost hold is released, and when a ``Condition``
      wait releases it) emits a ``DYN206`` stall finding (once per
      lock name; locks created with ``stall_exempt=True`` — the
      elastic executor's intentional whole-stage serialization — are
      skipped).

    Pure observation: acquisition metadata only, payloads untouched —
    a run with the observer attached is bitwise identical to one
    without (asserted in ``tests/test_analysis_lock_observer.py``).
    Reentrant re-acquisition of the same object and same-name pairs
    (two replicas of one class) never produce edges.
    """

    def __init__(
        self,
        checker: DynamicChecker | None = None,
        *,
        stall_threshold: float = 5.0,
    ) -> None:
        self.checker = checker if checker is not None else DynamicChecker()
        self.stall_threshold = stall_threshold
        self._lock = threading.Lock()
        self._local = threading.local()
        #: (holder name, acquired name) -> first site observed.
        self._edges: dict[tuple[str, str], tuple[str, int]] = {}
        self._reported_pairs: set[frozenset[str]] = set()
        self._reported_stalls: set[str] = set()

    # ------------------------------------------------------------ state
    def _state(self) -> dict[str, Any]:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = {"held": [], "depth": {}, "t0": {}}
        return state

    def findings(self) -> list[Finding]:
        return self.checker.findings_for("DYN206")

    # ------------------------------------------------------ transitions
    def on_acquired(self, lock: "_ObservedLock") -> None:
        state = self._state()
        depth = state["depth"].get(lock, 0)
        if depth == 0:
            for prior in state["held"]:
                if prior is lock or prior.name == lock.name:
                    continue
                self._note_edge(prior, lock)
            state["held"].append(lock)
            state["t0"][lock] = time.monotonic()
        state["depth"][lock] = depth + 1

    def on_release(self, lock: "_ObservedLock") -> None:
        state = self._state()
        depth = state["depth"].get(lock, 0)
        if depth > 1:
            state["depth"][lock] = depth - 1
            return
        self._drop(state, lock)

    def on_wait_release(self, lock: "_ObservedLock") -> int:
        """Condition.wait is about to fully release ``lock``; the hold
        ends here (wait time must not count toward the stall check)."""
        state = self._state()
        depth = state["depth"].get(lock, 0)
        self._drop(state, lock)
        return depth

    def on_wait_acquire(self, lock: "_ObservedLock", depth: int) -> None:
        """Condition.wait re-acquired ``lock`` at its saved depth."""
        state = self._state()
        state["held"].append(lock)
        state["t0"][lock] = time.monotonic()
        state["depth"][lock] = max(1, depth)

    def _drop(self, state: dict[str, Any], lock: "_ObservedLock") -> None:
        state["depth"].pop(lock, None)
        if lock in state["held"]:
            state["held"].remove(lock)
        t0 = state["t0"].pop(lock, None)
        if t0 is None or lock.stall_exempt:
            return
        held_for = time.monotonic() - t0
        if held_for < self.stall_threshold:
            return
        with self._lock:
            if lock.name in self._reported_stalls:
                return
            self._reported_stalls.add(lock.name)
        self.checker._emit(
            "DYN206",
            f"long-held lock: `{lock.name}` held for {held_for:.2f}s "
            f"(threshold {self.stall_threshold:.2f}s) — every thread "
            "contending for it stalled for the full hold",
            call_site(),
            lock=lock.name,
            held_for=round(held_for, 3),
            threshold=self.stall_threshold,
        )

    # ------------------------------------------------------------ edges
    def _note_edge(self, holder: "_ObservedLock", acquired: "_ObservedLock") -> None:
        site = call_site()
        edge = (holder.name, acquired.name)
        reverse_site: tuple[str, int] | None = None
        with self._lock:
            self._edges.setdefault(edge, site)
            reverse_site = self._edges.get((acquired.name, holder.name))
            if reverse_site is not None:
                pair = frozenset(edge)
                if pair in self._reported_pairs:
                    return
                self._reported_pairs.add(pair)
        if reverse_site is None:
            return
        self.checker._emit(
            "DYN206",
            f"lock-order inversion observed: acquired `{acquired.name}` "
            f"while holding `{holder.name}`, but the opposite order was "
            f"also taken at {reverse_site[0]}:{reverse_site[1]} — two "
            "threads interleaving these paths deadlock",
            site,
            edge=[holder.name, acquired.name],
            reverse_site=f"{reverse_site[0]}:{reverse_site[1]}",
        )


class _ObservedLock:
    """``threading.Lock`` wrapper reporting transitions to an observer.

    Deliberately does *not* expose ``_release_save``/``_acquire_restore``
    /``_is_owned``: a ``Condition`` built over this wrapper falls back
    to routing its wait-release/re-acquire through :meth:`release` and
    :meth:`acquire`, which keeps observation consistent.
    """

    _factory = staticmethod(threading.Lock)

    def __init__(
        self, observer: LockOrderObserver, name: str, stall_exempt: bool
    ) -> None:
        self._inner = self._factory()
        self._observer = observer
        self.name = name
        self.stall_exempt = stall_exempt

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._observer.on_acquired(self)
        return acquired

    def release(self) -> None:
        self._observer.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_ObservedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} {self._inner!r}>"


class _ObservedRLock(_ObservedLock):
    """``threading.RLock`` wrapper that also implements the protocol
    ``Condition`` captures at construction (``_release_save`` /
    ``_acquire_restore`` / ``_is_owned``) — a plain passthrough would
    bypass observation during ``wait()`` and count the wait as hold
    time."""

    _factory = staticmethod(threading.RLock)

    def _release_save(self) -> tuple[Any, int]:
        inner_state = self._inner._release_save()  # type: ignore[attr-defined]
        return inner_state, self._observer.on_wait_release(self)

    def _acquire_restore(self, state: tuple[Any, int]) -> None:
        inner_state, depth = state
        self._inner._acquire_restore(inner_state)  # type: ignore[attr-defined]
        self._observer.on_wait_acquire(self, depth)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()  # type: ignore[attr-defined]


# Scope-local observer (tests, `repro check threads`) layered over an
# optional process-global one gated by REPRO_THREAD_CHECK (CI).
_ACTIVE_OBSERVER: LockOrderObserver | None = None
_ENV_OBSERVER: LockOrderObserver | None = None
_OBSERVER_GUARD = threading.Lock()


def current_lock_observer() -> LockOrderObserver | None:
    """The observer new instrumented locks should report to, if any."""
    if _ACTIVE_OBSERVER is not None:
        return _ACTIVE_OBSERVER
    if os.environ.get("REPRO_THREAD_CHECK", "") not in ("", "0"):
        global _ENV_OBSERVER
        with _OBSERVER_GUARD:
            if _ENV_OBSERVER is None:
                _ENV_OBSERVER = LockOrderObserver()
            return _ENV_OBSERVER
    return None


@contextmanager
def use_lock_observer(
    observer: LockOrderObserver,
) -> Iterator[LockOrderObserver]:
    """Make ``observer`` the target of instrumented locks created in
    this scope (locks snapshot the observer at construction, so only
    objects *built* inside the scope are observed)."""
    global _ACTIVE_OBSERVER
    previous = _ACTIVE_OBSERVER
    _ACTIVE_OBSERVER = observer
    try:
        yield observer
    finally:
        _ACTIVE_OBSERVER = previous


def instrumented_lock(
    name: str,
    *,
    observer: LockOrderObserver | None = None,
    stall_exempt: bool = False,
) -> Any:
    """A ``threading.Lock``, wrapped for observation when an observer
    is active (explicitly passed, scoped via :func:`use_lock_observer`,
    or the ``REPRO_THREAD_CHECK`` global) — a *plain* lock otherwise,
    so the disabled path costs nothing."""
    target = observer if observer is not None else current_lock_observer()
    if target is None:
        return threading.Lock()
    return _ObservedLock(target, name, stall_exempt)


def instrumented_rlock(
    name: str,
    *,
    observer: LockOrderObserver | None = None,
    stall_exempt: bool = False,
) -> Any:
    """Reentrant variant of :func:`instrumented_lock`."""
    target = observer if observer is not None else current_lock_observer()
    if target is None:
        return threading.RLock()
    return _ObservedRLock(target, name, stall_exempt)


def instrumented_condition(
    name: str, *, observer: LockOrderObserver | None = None
) -> threading.Condition:
    """A ``threading.Condition`` over an instrumented reentrant lock
    (or a plain one when no observer is active)."""
    return threading.Condition(instrumented_rlock(name, observer=observer))
