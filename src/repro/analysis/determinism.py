"""DET3xx: determinism taint from nondeterminism sources into plans.

The engine's headline invariant — same seed → bitwise-identical
coefficients on every backend — is stated as a contract in
:mod:`repro.engine.plan`: all random draws happen in ``__init__``,
``run_chain`` is a pure function of plan state, and ``reduce``
consumes results in a fixed order.  PR 4's runtime checkers can only
catch violations on schedules that actually execute; this pass proves
the contract statically by answering one question: *can a
nondeterminism source flow into code reachable from
``UoIPlan.run_chain`` or ``reduce``?*

The pass builds a whole-package index (modules, imports, classes,
functions), roots the call graph at every ``run_chain``/``reduce``
method of a :class:`~repro.engine.plan.UoIPlan` subclass, and walks
the reachable closure looking for:

* ``DET301`` — wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``, ...);
* ``DET302`` — os-ordered listings (``glob``, ``os.listdir``,
  ``os.scandir``, ``Path.iterdir``) not wrapped in ``sorted(...)``;
* ``DET303`` — iteration over a ``set`` (literal, ``set()`` /
  ``frozenset()`` call, or a local provably bound to one), whose
  order depends on hash randomization;
* ``DET304`` — unseeded RNGs: ``np.random.default_rng()`` with no
  seed, or stdlib ``random.*`` global-state calls (extending SPMD002,
  which covers the global numpy RNG everywhere).

Call resolution is deliberately conservative (precision-first, like
the SPMD linter): names resolve through the module's own defs, its
``from``-imports, local ``var = ClassName(...)`` instantiations, and
``self.``-methods up the base-class chain; an attribute call on an
object of unknown type is *not* traversed.  Observational substrate —
``repro.telemetry``, ``repro.simmpi``, ``repro.perf``,
``repro.analysis`` — is excluded from the index by design: it may
read clocks (that is its job) but never feeds values back into plan
arithmetic.  Suppress per line with ``# repro: ignore[DET30x]``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import get_rule
from repro.analysis.suppress import filter_findings

__all__ = [
    "EXCLUDED_SUBPACKAGES",
    "SCANNED_EXCEPTIONS",
    "PLAN_BASE",
    "ROOT_METHODS",
    "determinism_check_source",
    "determinism_check_paths",
    "default_determinism_paths",
]

#: Observational substrate never traversed or scanned: these packages
#: read clocks and walk directories *by design* (telemetry, tracing,
#: performance reporting, this very tooling) and feed nothing back
#: into plan arithmetic.  ``service`` is orchestration above the
#: engine: its wall clocks, thread scheduling, socket I/O and Lamport
#: timestamps order *jobs and replica writes*, never floats — every
#: numeric result is produced by the member plans it wraps, which
#: stay inside the taint pass.  ``coordinator`` and ``elastic`` are
#: the PR-7 orchestration layer: lease issue/expiry, straggler
#: percentiles and worker join/leave all read the monotonic clock *by
#: design*, but they only decide *where and when* a chain runs —
#: every payload comes out of ``UoIPlan.run_chain`` and is replayed
#: through hooks in deterministic chain order, so no clock value can
#: reach plan arithmetic.  ``transports`` (the in-process
#: serial/multiprocess/simmpi worker shims) deliberately stays
#: scanned: it calls straight into plan code.  ``stream`` is the
#: live-data layer: ingestion timestamps, buffer timeouts, socket
#: reads and per-window wall-clock seconds are its *job* — they pace
#: and annotate the rolling loop, while every number in a window's
#: result comes out of the ``VarPlan`` it builds, which stays inside
#: the taint pass (and is asserted bitwise-equal to a cold batch fit
#: under ``StreamConfig(verify=True)``) — except its two pure-compute
#: modules, listed in :data:`SCANNED_EXCEPTIONS` below.
EXCLUDED_SUBPACKAGES: tuple[str, ...] = (
    "telemetry",
    "simmpi",
    "analysis",
    "perf",
    "service",
    "coordinator",
    "elastic",
    "stream",
)

#: Modules scanned *despite* living in an excluded subpackage.
#: ``repro.stream.window`` (incremental lag-window Gram/Kron products)
#: and ``repro.stream.diff`` (network-diff arithmetic) are pure
#: computation — no sockets, no clocks, no thread scheduling — and
#: their numbers feed window fits directly, so they stay under the
#: taint pass even though the rest of ``repro.stream`` is
#: observational pacing.
SCANNED_EXCEPTIONS: tuple[str, ...] = (
    "repro.stream.window",
    "repro.stream.diff",
)

#: Base class whose subclasses carry the determinism contract.
PLAN_BASE = "UoIPlan"

#: Methods rooting the taint traversal.  ``__init__`` is deliberately
#: absent: the contract *requires* randomness there (pre-drawn from the
#: run's seed).
ROOT_METHODS: tuple[str, ...] = ("run_chain", "reduce")

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

_OS_ORDER_CALLS = {
    "glob.glob",
    "glob.iglob",
    "os.listdir",
    "os.scandir",
}

_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "shuffle",
        "choice",
        "choices",
        "sample",
        "betavariate",
        "expovariate",
        "normalvariate",
    }
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


@dataclass
class _FuncInfo:
    module: "_ModuleInfo"
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def qualname(self) -> str:
        prefix = f"{self.cls}." if self.cls else ""
        return f"{self.module.name}.{prefix}{self.name}"

    @property
    def display(self) -> str:
        prefix = f"{self.cls}." if self.cls else ""
        return f"{prefix}{self.name}"


@dataclass
class _ClassInfo:
    name: str
    bases: list[str] = field(default_factory=list)  # terminal base names
    methods: dict[str, _FuncInfo] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    name: str  # dotted module name (repro.engine.plans)
    path: str
    source: str
    tree: ast.Module
    functions: dict[str, _FuncInfo] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    #: ``from repro.x import f`` / ``import repro.x as y`` bindings:
    #: local name -> dotted source module.
    imports: dict[str, str] = field(default_factory=dict)


class _Index:
    """Whole-package symbol index for call resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, _ModuleInfo] = {}
        #: module-level function name -> every definition site.
        self.functions_by_name: dict[str, list[_FuncInfo]] = {}
        #: class name -> every (module, class) definition site.
        self.classes_by_name: dict[str, list[tuple[_ModuleInfo, _ClassInfo]]] = {}

    # -------------------------------------------------------- building
    def add_source(self, source: str, path: str, modname: str) -> None:
        tree = ast.parse(source, filename=path)
        mod = _ModuleInfo(name=modname, path=path, source=source, tree=tree)
        for stmt in tree.body:
            self._index_stmt(mod, stmt)
        self.modules[modname] = mod
        for fn in mod.functions.values():
            self.functions_by_name.setdefault(fn.name, []).append(fn)
        for cls in mod.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append((mod, cls))

    def _index_stmt(self, mod: _ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[stmt.name] = _FuncInfo(mod, None, stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            cls = _ClassInfo(name=stmt.name)
            for base in stmt.bases:
                terminal = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if terminal:
                    cls.bases.append(terminal)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[sub.name] = _FuncInfo(
                        mod, stmt.name, sub.name, sub
                    )
            mod.classes[stmt.name] = cls
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                mod.imports[alias.asname or alias.name] = stmt.module
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                mod.imports[alias.asname or alias.name] = alias.name
        elif isinstance(stmt, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._index_stmt(mod, child)

    # ------------------------------------------------------ resolution
    def resolve_class(
        self, name: str, mod: _ModuleInfo
    ) -> tuple[_ModuleInfo, _ClassInfo] | None:
        if name in mod.classes:
            return mod, mod.classes[name]
        src = mod.imports.get(name)
        if src is not None and src in self.modules:
            other = self.modules[src]
            if name in other.classes:
                return other, other.classes[name]
        sites = self.classes_by_name.get(name, [])
        if len(sites) == 1:
            return sites[0]
        return None

    def resolve_function(self, name: str, mod: _ModuleInfo) -> _FuncInfo | None:
        if name in mod.functions:
            return mod.functions[name]
        src = mod.imports.get(name)
        if src is not None and src in self.modules:
            other = self.modules[src]
            if name in other.functions:
                return other.functions[name]
        sites = self.functions_by_name.get(name, [])
        if len(sites) == 1:
            return sites[0]
        return None

    def resolve_method(
        self, cls_site: tuple[_ModuleInfo, _ClassInfo], name: str
    ) -> _FuncInfo | None:
        """Look up ``name`` on the class, walking the base-name chain."""
        seen: set[str] = set()
        stack = [cls_site]
        while stack:
            mod, cls = stack.pop()
            if cls.name in seen:
                continue
            seen.add(cls.name)
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                site = self.resolve_class(base, mod)
                if site is not None:
                    stack.append(site)
        return None

    def is_plan_class(self, mod: _ModuleInfo, cls: _ClassInfo) -> bool:
        """Whether ``cls`` transitively derives from ``UoIPlan``.

        An *unresolvable* base named ``UoIPlan`` still counts: a
        single-file fixture subclassing the (unindexed) engine base is
        a plan by declaration.
        """
        seen: set[str] = set()
        stack: list[tuple[_ModuleInfo, _ClassInfo]] = [(mod, cls)]
        while stack:
            m, c = stack.pop()
            if c.name in seen:
                continue
            seen.add(c.name)
            if c.name == PLAN_BASE:
                return True
            for base in c.bases:
                if base == PLAN_BASE:
                    return True
                site = self.resolve_class(base, m)
                if site is not None:
                    stack.append(site)
        return False


class _FunctionScanner:
    """Scan one reachable function for sources and outgoing calls."""

    def __init__(self, index: _Index, info: _FuncInfo, path: list[str]) -> None:
        self.index = index
        self.info = info
        self.path = path  # display names, root first
        self.findings: list[Finding] = []
        self.callees: list[_FuncInfo] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        #: local name -> class site, from ``x = ClassName(...)``.
        self._local_types: dict[str, tuple[_ModuleInfo, _ClassInfo]] = {}
        #: local names provably bound to sets.
        self._local_sets: set[str] = set()

    # ------------------------------------------------------------ emit
    def _emit(self, rule_id: str, lineno: int, message: str) -> None:
        rule = get_rule(rule_id)
        via = " -> ".join(self.path)
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                message=f"{message} [reachable via {via}]",
                file=self.info.module.path,
                line=lineno,
                source="lint",
                context={"path": list(self.path)},
            )
        )

    # ------------------------------------------------------------ scan
    def scan(self) -> None:
        body = self.info.node.body
        for stmt in body:
            for node in ast.walk(stmt):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        self._prepass(body)
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._check_call(node)
                    self._resolve_call(node)
                elif isinstance(node, ast.For):
                    self._check_set_iteration(node.iter)
                elif isinstance(node, ast.comprehension):
                    self._check_set_iteration(node.iter)

    def _prepass(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if isinstance(value, (ast.Set, ast.SetComp)):
                    self._local_sets.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                ):
                    if value.func.id in ("set", "frozenset"):
                        self._local_sets.add(target.id)
                    else:
                        site = self.index.resolve_class(
                            value.func.id, self.info.module
                        )
                        if site is not None:
                            self._local_types[target.id] = site

    # ----------------------------------------------------- taint rules
    def _check_call(self, call: ast.Call) -> None:
        dotted = _dotted(call.func)
        if dotted is None:
            return
        if dotted in _WALL_CLOCK_CALLS:
            self._emit(
                "DET301",
                call.lineno,
                f"wall-clock read `{dotted}()` in plan-reachable code: "
                "results would depend on when the run started, breaking "
                "same-seed bitwise replay",
            )
            return
        if (
            dotted in _OS_ORDER_CALLS or dotted.endswith(".iterdir")
        ) and not self._wrapped_in_sorted(call):
            self._emit(
                "DET302",
                call.lineno,
                f"os-ordered listing `{dotted}()` feeds plan-reachable "
                "code without sorted(...): filesystem order differs "
                "across nodes and runs",
            )
            return
        # DET304: unseeded RNG.
        terminal = dotted.rsplit(".", 1)[-1]
        if terminal == "default_rng" and not call.args and not call.keywords:
            self._emit(
                "DET304",
                call.lineno,
                "unseeded default_rng() in plan-reachable code: draws OS "
                "entropy and cannot replay — pre-draw in __init__ from "
                "the run's random_state",
            )
            return
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _RANDOM_MODULE_FUNCS
        ):
            self._emit(
                "DET304",
                call.lineno,
                f"stdlib global-state RNG `{dotted}()` in plan-reachable "
                "code: process-wide state interleaves across simulated "
                "ranks and cannot replay from the run's seed",
            )

    def _wrapped_in_sorted(self, call: ast.Call) -> bool:
        node: ast.AST = call
        parent = self._parents.get(node)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            if parent.func.id in ("sorted", "len", "any", "all"):
                return True
        return False

    def _check_set_iteration(self, it: ast.expr) -> None:
        is_set = isinstance(it, (ast.Set, ast.SetComp))
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset")
        ):
            is_set = True
        if isinstance(it, ast.Name) and it.id in self._local_sets:
            is_set = True
        if is_set:
            self._emit(
                "DET303",
                it.lineno,
                "iteration over a set in plan-reachable code: order "
                "depends on hash randomization and insertion history — "
                "iterate sorted(...) instead",
            )

    # ------------------------------------------------- call resolution
    def _resolve_call(self, call: ast.Call) -> None:
        func = call.func
        mod = self.info.module
        if isinstance(func, ast.Name):
            site = self.index.resolve_class(func.id, mod)
            if site is not None:
                init = self.index.resolve_method(site, "__init__")
                if init is not None:
                    self.callees.append(init)
                return
            fn = self.index.resolve_function(func.id, mod)
            if fn is not None:
                self.callees.append(fn)
            return
        if not isinstance(func, ast.Attribute):
            return
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self" and self.info.cls is not None:
                cls = mod.classes.get(self.info.cls)
                if cls is not None:
                    meth = self.index.resolve_method((mod, cls), func.attr)
                    if meth is not None:
                        self.callees.append(meth)
                return
            if value.id in self._local_types:
                meth = self.index.resolve_method(
                    self._local_types[value.id], func.attr
                )
                if meth is not None:
                    self.callees.append(meth)
                return
            src = mod.imports.get(value.id)
            if src is not None and src in self.index.modules:
                other = self.index.modules[src]
                if func.attr in other.functions:
                    self.callees.append(other.functions[func.attr])
            return


def _module_name_for(path: str) -> str:
    """Dotted module name of ``path``; falls back to the stem."""
    posix = os.path.abspath(path).replace(os.sep, "/")
    marker = "/src/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        rel = posix[idx + len("/src/") :]
        return rel[: -len(".py")].replace("/", ".").replace(".__init__", "")
    return os.path.basename(path)[: -len(".py")]


def _excluded(modname: str) -> bool:
    if modname in SCANNED_EXCEPTIONS:
        return False
    parts = modname.split(".")
    return any(sub in parts for sub in EXCLUDED_SUBPACKAGES)


def _roots(index: _Index) -> list[_FuncInfo]:
    out: list[_FuncInfo] = []
    for mod in index.modules.values():
        for cls in mod.classes.values():
            if not index.is_plan_class(mod, cls):
                continue
            for meth in ROOT_METHODS:
                if meth in cls.methods:
                    out.append(cls.methods[meth])
    out.sort(key=lambda f: (f.module.path, f.node.lineno))
    return out


def _taint(index: _Index) -> list[Finding]:
    """BFS the call graph from every plan root, scanning as we go."""
    findings: list[Finding] = []
    visited: set[str] = set()
    queue: list[tuple[_FuncInfo, list[str]]] = [
        (root, [root.display]) for root in _roots(index)
    ]
    while queue:
        info, path = queue.pop(0)
        if info.qualname in visited:
            continue
        visited.add(info.qualname)
        scanner = _FunctionScanner(index, info, path)
        scanner.scan()
        findings.extend(scanner.findings)
        for callee in scanner.callees:
            if callee.qualname not in visited:
                queue.append((callee, path + [callee.display]))
    return findings


def _apply_suppressions(
    index: _Index, findings: list[Finding]
) -> list[Finding]:
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.file, []).append(f)
    out: list[Finding] = []
    sources = {mod.path: mod.source for mod in index.modules.values()}
    for path, source in sorted(sources.items()):
        out.extend(
            filter_findings(
                source, path, by_file.get(path, []), families=("DET",)
            )
        )
    return out


def determinism_check_source(
    source: str, filename: str = "<string>"
) -> list[Finding]:
    """Run the DET pass over one standalone source string.

    The file is indexed in isolation: classes subclassing a base
    *named* ``UoIPlan`` root the traversal even though the engine base
    itself is not indexed.
    """
    index = _Index()
    index.add_source(source, filename, "<standalone>")
    return _apply_suppressions(index, _taint(index))


def default_determinism_paths() -> list[str]:
    """The whole ``repro`` package (exclusions applied per module)."""
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def determinism_check_paths(
    paths: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the DET pass over ``.py`` files under ``paths``.

    All files are indexed together, so reachability crosses module
    boundaries (``run_chain`` → ``lasso_path`` → solver internals).
    """
    roots = paths if paths else default_determinism_paths()
    targets: list[str] = []
    for path in roots:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                targets.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        elif path.endswith(".py"):
            targets.append(path)
        else:
            raise ValueError(f"not a directory or .py file: {path}")
    index = _Index()
    for target in targets:
        modname = _module_name_for(target)
        if _excluded(modname):
            continue
        with open(target, "r", encoding="utf-8") as fh:
            index.add_source(fh.read(), target, modname)
    return _apply_suppressions(index, _taint(index))
