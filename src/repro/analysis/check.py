"""The ``repro check`` gate: run the static and dynamic checkers.

Six checkers share one findings currency and one gate (**zero
findings**: CI fails on any):

* ``repro check lint`` — the SPMD AST linter over ``src/repro``;
* ``repro check shapes`` — the SHAPE1xx symbolic shape/dtype/memory
  interpreter over ``repro.linalg`` and ``repro.distribution``;
* ``repro check determinism`` — the DET3xx taint pass from
  nondeterminism sources into plan-reachable code;
* ``repro check plan`` — the PLAN4xx verifier: static AST checks over
  the engine and distributed core, plus :func:`verify_plan` replayed
  over reference plans built from each driver family;
* ``repro check threads`` — the LOCK5xx lock-order / shared-state
  pass over the threaded layers (service, elastic engine, stream),
  plus a short checked concurrency workload (two-writer replicated
  store, double-buffered ingest) under a
  :class:`~repro.analysis.dynamic.LockOrderObserver` (``DYN206``);
* ``repro check dynamic`` — a battery of real communication
  workloads (a distributed UoI_LASSO fit, an all-collectives
  exerciser, the two RMA-heavy distribution paths) under a
  :class:`~repro.analysis.dynamic.DynamicChecker`.

``repro check static`` runs the five static passes; ``repro check
all`` runs everything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.determinism import determinism_check_paths
from repro.analysis.dynamic import DynamicChecker, LockOrderObserver, use_lock_observer
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_paths
from repro.analysis.planver import plan_lint_paths, verify_plan
from repro.analysis.shapes import MemoryBudget, shape_check_paths
from repro.analysis.threads import threads_check_paths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simmpi.comm import SimComm

__all__ = [
    "run_lint",
    "run_shapes",
    "run_determinism",
    "run_plan_checks",
    "run_threads",
    "run_dynamic",
    "run_check",
    "MODES",
]

MODES = (
    "lint",
    "shapes",
    "determinism",
    "plan",
    "threads",
    "static",
    "dynamic",
    "all",
)


def run_lint(paths: Sequence[str] | None = None) -> list[Finding]:
    """Static SPMD lint over ``paths`` (default: the installed ``repro``)."""
    return lint_paths(paths)


def run_shapes(
    paths: Sequence[str] | None = None,
    *,
    budget: MemoryBudget | None = None,
) -> list[Finding]:
    """SHAPE pass over ``paths`` (default: ``repro.linalg`` +
    ``repro.distribution``)."""
    return shape_check_paths(paths, budget=budget)


def run_determinism(paths: Sequence[str] | None = None) -> list[Finding]:
    """DET taint pass over ``paths`` (default: the whole package)."""
    return determinism_check_paths(paths)


def _reference_plans() -> list[object]:
    """One constructed plan per serial driver family, paper-shaped small.

    The distributed plans are exercised separately (their constructors
    need a live simulated communicator); their ownership arithmetic is
    covered by the AST side plus the engine test suite's
    ``verify_plan`` unit tests.
    """
    from repro.core.config import UoILassoConfig, UoIVarConfig
    from repro.engine.plans import LassoPlan, VarPlan

    rng = np.random.default_rng(0)
    X = rng.standard_normal((24, 5))
    y = X @ rng.standard_normal(5) + 0.1 * rng.standard_normal(24)
    lasso_cfg = UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=3,
        n_estimation_bootstraps=3,
        random_state=7,
    )
    series = rng.standard_normal((30, 3))
    var_cfg = UoIVarConfig(
        order=2,
        lasso=UoILassoConfig(
            n_lambdas=3,
            n_selection_bootstraps=2,
            n_estimation_bootstraps=2,
            random_state=7,
        ),
    )
    return [LassoPlan(lasso_cfg, X, y), VarPlan(var_cfg, series)]


def run_plan_checks(paths: Sequence[str] | None = None) -> list[Finding]:
    """PLAN pass: AST lint plus ``verify_plan`` over reference plans."""
    findings = plan_lint_paths(paths)
    for plan in _reference_plans():
        findings.extend(verify_plan(plan))
    return findings


def run_threads(paths: Sequence[str] | None = None) -> list[Finding]:
    """LOCK pass over ``paths`` (default: the whole package)."""
    return threads_check_paths(paths)


def _exercise_lock_observer() -> DynamicChecker:
    """A short checked concurrency workload for ``DYN206``.

    Two writer threads race puts into a two-shard replicated store
    (primary lock -> replica locks -> checkpoint lock) while a
    producer/consumer pair runs the double-buffered ingest condition
    protocol — the lock topologies the observer exists to watch.
    """
    import tempfile
    import threading

    from repro.service.store import ReplicatedResultsStore
    from repro.stream.ingest import DoubleBuffer

    observer = LockOrderObserver()
    with use_lock_observer(observer), tempfile.TemporaryDirectory() as root:
        store = ReplicatedResultsStore(root, nshards=2)
        barrier = threading.Barrier(2)

        def writer(tid: int) -> None:
            barrier.wait()
            for i in range(6):
                store.put(
                    f"t{tid}/k{i}", {"b": np.full(3, float(tid * 10 + i))}
                )

        buffer = DoubleBuffer(capacity=4)

        def producer() -> None:
            for i in range(32):
                buffer.put(np.full(2, float(i)))
            buffer.close()

        consumed: list[np.ndarray] = []

        def consumer() -> None:
            consumed.extend(buffer.drain(poll_interval=0.001))

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(2)
        ] + [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if not store.converged() or len(consumed) != 32:  # pragma: no cover
            raise RuntimeError("lock-observer exercise workload misbehaved")
    return observer.checker


def _exercise_collectives(nranks: int) -> DynamicChecker:
    """Every collective kind once, checked, on ``nranks`` ranks."""
    from repro.simmpi import LAPTOP, MIN, SUM, run_spmd

    checker = DynamicChecker()

    def program(comm: SimComm) -> None:
        v = np.arange(4.0) + comm.rank
        comm.allreduce(v, SUM)
        comm.allreduce(v, MIN)
        comm.bcast(v if comm.rank == 0 else None, root=0)
        comm.barrier()
        comm.reduce(v, SUM, root=0)
        comm.gather(comm.rank, root=0)
        comm.allgather(comm.rank)
        comm.scatter(list(range(comm.size)) if comm.rank == 0 else None, root=0)
        comm.alltoall([comm.rank * 100 + j for j in range(comm.size)])
        comm.reduce_scatter(np.ones(comm.size, dtype=float), SUM)
        comm.scan(float(comm.rank), SUM)
        req = comm.iallreduce(v, SUM)
        req.wait()
        comm.ibarrier().wait()
        sub = comm.split(color=comm.rank % 2)
        sub.allreduce(float(comm.rank), SUM)
        return None

    run_spmd(nranks, program, machine=LAPTOP, checker=checker)
    return checker


def _exercise_rma(nranks: int) -> DynamicChecker:
    """Fenced one-sided traffic on both distribution paths, checked."""
    from repro.distribution.kron_dist import DistributedKron
    from repro.distribution.randomized import RandomizedDistributor
    from repro.pfs import SimH5File
    from repro.simmpi import LAPTOP, run_spmd

    checker = DynamicChecker()
    rng = np.random.default_rng(7)
    data = rng.standard_normal((32, 5))
    file = SimH5File("/check.h5")
    file.create_dataset("data", data)
    series = rng.standard_normal((24, 3))

    def program(comm: SimComm) -> None:
        dist = RandomizedDistributor(comm, file, "data")
        rows = np.random.default_rng(11).integers(0, 32, size=16)
        dist.sample(rows)
        dist.barrier()
        dist.sample(rows[::-1])
        dist.close()

        X, Y = series[:-1], series[1:]
        kron = DistributedKron(
            comm,
            X if comm.rank == 0 else None,
            Y if comm.rank == 0 else None,
            n_readers=1,
        )
        kron.build_local()
        kron.close()
        return None

    run_spmd(nranks, program, machine=LAPTOP, checker=checker)
    return checker


def _exercise_fit(nranks: int) -> DynamicChecker:
    """A checked end-to-end distributed UoI_LASSO fit."""
    from repro.experiments._functional import mini_uoi_lasso_run

    checker = DynamicChecker()
    mini_uoi_lasso_run(nranks=nranks, n=64, p=8, checker=checker)
    return checker


def run_dynamic(*, nranks: int = 4) -> list[Finding]:
    """Run the checked workload battery; returns every finding."""
    findings: list[Finding] = []
    for exercise in (_exercise_collectives, _exercise_rma, _exercise_fit):
        checker = exercise(nranks)
        findings.extend(checker.findings)
    return findings


def run_check(
    mode: str = "all",
    *,
    paths: Sequence[str] | None = None,
    nranks: int = 4,
    budget: MemoryBudget | None = None,
) -> list[Finding]:
    """Run the selected checkers; the gate passes iff the list is empty.

    ``paths`` overrides each static pass's default tree (the passes
    have different defaults — lint covers the whole package, shapes
    the numeric subsystems, plan the engine+core); ``budget``
    configures the SHAPE per-rank memory ceiling.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    findings: list[Finding] = []
    if mode in ("lint", "static", "all"):
        findings.extend(run_lint(paths))
    if mode in ("shapes", "static", "all"):
        findings.extend(run_shapes(paths, budget=budget))
    if mode in ("determinism", "static", "all"):
        findings.extend(run_determinism(paths))
    if mode in ("plan", "static", "all"):
        findings.extend(run_plan_checks(paths))
    if mode in ("threads", "static", "all"):
        findings.extend(run_threads(paths))
    if mode in ("threads", "dynamic", "all"):
        findings.extend(_exercise_lock_observer().findings)
    if mode in ("dynamic", "all"):
        findings.extend(run_dynamic(nranks=nranks))
    return findings
