"""The ``repro check`` gate: run the static and dynamic checkers.

``repro check lint`` lints ``src/repro``; ``repro check dynamic`` runs
a battery of real communication workloads — a distributed UoI_LASSO
fit, an all-collectives exerciser, and the two RMA-heavy distribution
paths (Tier-2 shuffle, distributed Kronecker build) — under a
:class:`~repro.analysis.dynamic.DynamicChecker`; ``repro check all``
does both.  The gate is **zero findings**: CI fails on any.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.dynamic import DynamicChecker
from repro.analysis.findings import Finding
from repro.analysis.linter import lint_paths

__all__ = ["run_lint", "run_dynamic", "run_check", "MODES"]

MODES = ("lint", "dynamic", "all")


def run_lint(paths: Sequence[str] | None = None) -> list[Finding]:
    """Static SPMD lint over ``paths`` (default: the installed ``repro``)."""
    return lint_paths(paths)


def _exercise_collectives(nranks: int) -> DynamicChecker:
    """Every collective kind once, checked, on ``nranks`` ranks."""
    from repro.simmpi import LAPTOP, MIN, SUM, run_spmd

    checker = DynamicChecker()

    def program(comm):
        v = np.arange(4.0) + comm.rank
        comm.allreduce(v, SUM)
        comm.allreduce(v, MIN)
        comm.bcast(v if comm.rank == 0 else None, root=0)
        comm.barrier()
        comm.reduce(v, SUM, root=0)
        comm.gather(comm.rank, root=0)
        comm.allgather(comm.rank)
        comm.scatter(list(range(comm.size)) if comm.rank == 0 else None, root=0)
        comm.alltoall([comm.rank * 100 + j for j in range(comm.size)])
        comm.reduce_scatter(np.ones(comm.size, dtype=float), SUM)
        comm.scan(float(comm.rank), SUM)
        req = comm.iallreduce(v, SUM)
        req.wait()
        comm.ibarrier().wait()
        sub = comm.split(color=comm.rank % 2)
        sub.allreduce(float(comm.rank), SUM)
        return None

    run_spmd(nranks, program, machine=LAPTOP, checker=checker)
    return checker


def _exercise_rma(nranks: int) -> DynamicChecker:
    """Fenced one-sided traffic on both distribution paths, checked."""
    from repro.distribution.kron_dist import DistributedKron
    from repro.distribution.randomized import RandomizedDistributor
    from repro.pfs import SimH5File
    from repro.simmpi import LAPTOP, run_spmd

    checker = DynamicChecker()
    rng = np.random.default_rng(7)
    data = rng.standard_normal((32, 5))
    file = SimH5File("/check.h5")
    file.create_dataset("data", data)
    series = rng.standard_normal((24, 3))

    def program(comm):
        dist = RandomizedDistributor(comm, file, "data")
        rows = np.random.default_rng(11).integers(0, 32, size=16)
        dist.sample(rows)
        dist.barrier()
        dist.sample(rows[::-1])
        dist.close()

        X, Y = series[:-1], series[1:]
        kron = DistributedKron(
            comm,
            X if comm.rank == 0 else None,
            Y if comm.rank == 0 else None,
            n_readers=1,
        )
        kron.build_local()
        kron.close()
        return None

    run_spmd(nranks, program, machine=LAPTOP, checker=checker)
    return checker


def _exercise_fit(nranks: int) -> DynamicChecker:
    """A checked end-to-end distributed UoI_LASSO fit."""
    from repro.experiments._functional import mini_uoi_lasso_run

    checker = DynamicChecker()
    mini_uoi_lasso_run(nranks=nranks, n=64, p=8, checker=checker)
    return checker


def run_dynamic(*, nranks: int = 4) -> list[Finding]:
    """Run the checked workload battery; returns every finding."""
    findings: list[Finding] = []
    for exercise in (_exercise_collectives, _exercise_rma, _exercise_fit):
        checker = exercise(nranks)
        findings.extend(checker.findings)
    return findings


def run_check(
    mode: str = "all",
    *,
    paths: Sequence[str] | None = None,
    nranks: int = 4,
) -> list[Finding]:
    """Run the selected checkers; the gate passes iff the list is empty."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    findings: list[Finding] = []
    if mode in ("lint", "all"):
        findings.extend(run_lint(paths))
    if mode in ("dynamic", "all"):
        findings.extend(run_dynamic(nranks=nranks))
    return findings
