"""SARIF 2.1.0 export of :class:`~repro.analysis.findings.Finding`.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests: uploading a
``repro check`` run as SARIF annotates every finding inline on the PR
diff, at the exact ``file:line`` the checker reported.  The CI check
job produces one via ``repro check all --sarif-out`` and uploads it
with ``github/codeql-action/upload-sarif``.

The document is minimal but complete: one run, one tool driver named
``repro-check`` whose ``rules`` array carries the full registry
(id, summary, rationale) so GitHub renders the *why* next to each
annotation, and one result per finding.  Severities map
``error → error``, ``warning → warning``, ``info → note``.  Findings
without a source position (``line == 0``, e.g. runtime/plan findings)
omit the region, per spec.
"""

from __future__ import annotations

import json

from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.rules import RULES

__all__ = ["SARIF_VERSION", "findings_to_sarif"]

SARIF_VERSION = "2.1.0"

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {ERROR: "error", WARNING: "warning"}  # info -> note (default)


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "note")
        },
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.file.replace("\\", "/")}
        }
    }
    if finding.line > 0:
        location["physicalLocation"]["region"] = {
            "startLine": finding.line
        }
    result: dict = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "note"),
        "message": {"text": finding.message},
        "locations": [location],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.context:
        result["properties"] = {"context": dict(finding.context)}
    return result


def findings_to_sarif(
    findings: list[Finding], *, indent: int | None = 2
) -> str:
    """Serialize findings as a SARIF 2.1.0 document (JSON string).

    The ``rules`` array lists only the rules the findings reference
    (plus their registry metadata), keeping the document small; an
    empty findings list yields a valid document with zero results —
    the shape GitHub expects from a clean run.
    """
    referenced = sorted({f.rule for f in findings if f.rule in RULES})
    rule_index = {rule_id: i for i, rule_id in enumerate(referenced)}
    ordered = sorted(findings, key=lambda f: (f.file, f.line, f.rule))
    doc = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": [
                            _rule_descriptor(rid) for rid in referenced
                        ],
                    }
                },
                "results": [_result(f, rule_index) for f in ordered],
            }
        ],
    }
    return json.dumps(doc, indent=indent)
