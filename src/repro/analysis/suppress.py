"""Shared ``# repro: ignore[...]`` suppression machinery.

Every static pass — the SPMD linter, the SHAPE shape/memory
interpreter, the DET determinism-taint pass, and the PLAN plan
verifier's AST side — filters its findings through one
:class:`Suppressions` instance per file, so the directive syntax and
semantics are identical everywhere:

``# repro: ignore[RULE]``
    Suppress findings of ``RULE`` on this line.
``# repro: ignore[RULE1,RULE2]``
    Comma-separated rule list.
``# repro: ignore``
    Suppress every rule on this line (discouraged; prefer naming the
    rule so stale directives can be detected).

Each pass owns a rule-id *family* (``SPMD``, ``SHAPE``, ``DET``,
``PLAN``): a rule-scoped suppression that names a rule of the running
pass's family but matched no finding is itself reported as a
:data:`~repro.analysis.rules.STALE_RULE` finding (warning severity) —
dead suppressions hide future regressions.  Suppressions naming rules
of *other* families are left for those passes to account for, and bare
``# repro: ignore`` directives are never reported stale (the pass
cannot know whether another family used them).
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.findings import Finding

__all__ = ["IGNORE_RE", "Suppressions", "filter_findings"]

IGNORE_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Rule id of stale-suppression findings (registered in
#: :mod:`repro.analysis.rules`).
STALE_RULE = "SUP001"


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """``(lineno, text)`` of every *real* comment in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps directive
    text quoted inside strings and docstrings — e.g. a rule-registry
    rationale describing the syntax — from being parsed as a live
    suppression and then reported stale.  Falls back to a raw line
    scan if the source does not tokenize (the AST passes will raise a
    real syntax error anyway).
    """
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


class Suppressions:
    """Per-line ``# repro: ignore[...]`` directives of one file.

    ``suppressed`` records which directives actually matched a finding;
    :meth:`stale_findings` then reports the rule-scoped leftovers of
    the caller's rule family.
    """

    def __init__(self, source: str) -> None:
        #: line -> ``None`` (bare ignore) or the named rule ids.
        self.by_line: dict[int, frozenset[str] | None] = {}
        self._used: set[tuple[int, str]] = set()
        self._bare_used: set[int] = set()
        for lineno, text in _comment_lines(source):
            m = IGNORE_RE.search(text)
            if not m:
                continue
            rules = m.group("rules")
            if rules is None:
                self.by_line[lineno] = None  # suppress everything
            else:
                self.by_line[lineno] = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` at ``lineno`` is suppressed (and mark use)."""
        if lineno not in self.by_line:
            return False
        rules = self.by_line[lineno]
        if rules is None:
            self._bare_used.add(lineno)
            return True
        if rule_id in rules:
            self._used.add((lineno, rule_id))
            return True
        return False

    def stale_findings(
        self, filename: str, families: tuple[str, ...]
    ) -> list[Finding]:
        """Unused rule-scoped directives of the given rule families.

        ``families`` are rule-id prefixes (``("SPMD",)``, ``("SHAPE",)``
        ...).  A directive naming ``SHAPE101`` is only the SHAPE pass's
        to report: the SPMD linter walking the same file must not call
        it stale.
        """
        out: list[Finding] = []
        for lineno in sorted(self.by_line):
            rules = self.by_line[lineno]
            if rules is None:
                continue  # bare ignores are family-ambiguous
            for rule_id in sorted(rules):
                if not any(rule_id.startswith(f) for f in families):
                    continue
                if (lineno, rule_id) in self._used:
                    continue
                out.append(
                    Finding(
                        rule=STALE_RULE,
                        severity="warning",
                        message=(
                            f"stale suppression: `# repro: ignore[{rule_id}]` "
                            "matches no finding on this line — remove it"
                        ),
                        file=filename,
                        line=lineno,
                        source="lint",
                        context={"suppressed_rule": rule_id},
                    )
                )
        return out


def filter_findings(
    source: str,
    filename: str,
    findings: list[Finding],
    families: tuple[str, ...],
) -> list[Finding]:
    """Apply suppressions and append stale-directive findings.

    The shared tail of every static pass: drop suppressed findings,
    report this family's unused rule-scoped directives, and return the
    result sorted by location.
    """
    sup = Suppressions(source)
    kept = [f for f in findings if not sup.suppressed(f.rule, f.line)]
    kept.extend(sup.stale_findings(filename, families))
    kept.sort(key=lambda f: (f.file, f.line, f.rule))
    return kept
