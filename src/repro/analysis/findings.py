"""Findings: the common currency of the static and dynamic checkers.

Both halves of :mod:`repro.analysis` — the AST-based SPMD linter and
the runtime checkers wired into :mod:`repro.simmpi` — report problems
as :class:`Finding` records carrying a rule id, a severity, a
``file:line`` location, and a human message.  The ``repro check`` CLI
renders them as a human table or JSON (the CI artifact format), and
tests assert on them directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Finding",
    "findings_to_json",
    "findings_from_json",
    "format_findings",
]

#: Severity levels, most severe first.  ``repro check`` exits nonzero
#: on any finding regardless of severity — the gate is zero findings —
#: but severities order the report and let downstream tooling filter.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Finding:
    """One problem reported by a checker.

    Attributes
    ----------
    rule:
        Rule id (``SPMD001``, ``DYN203``, ...) — see
        :mod:`repro.analysis.rules`.
    severity:
        One of :data:`SEVERITIES`.
    message:
        One-line human description of the specific violation.
    file:
        Path of the offending source file (repo-relative when the
        linter was given relative paths; absolute otherwise).  Dynamic
        findings carry the call site that performed the offending
        operation.
    line:
        1-based line number, or 0 when no source position applies.
    source:
        ``"lint"`` for static findings, ``"dynamic"`` for runtime ones.
    context:
        Free-form JSON-serializable details (ranks involved, the
        conflicting keys, the mismatched shapes, ...).
    """

    rule: str
    severity: str
    message: str
    file: str
    line: int = 0
    source: str = "lint"
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity {self.severity!r} not in {SEVERITIES}"
            )

    @property
    def location(self) -> str:
        """``file:line`` (just ``file`` when no line is known)."""
        return f"{self.file}:{self.line}" if self.line else self.file

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "source": self.source,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            rule=d["rule"],
            severity=d["severity"],
            message=d["message"],
            file=d["file"],
            line=int(d.get("line", 0)),
            source=d.get("source", "lint"),
            context=dict(d.get("context", {})),
        )


def _severity_key(f: Finding) -> tuple:
    return (SEVERITIES.index(f.severity), f.file, f.line, f.rule)


def findings_to_json(findings: list[Finding], *, indent: int | None = 2) -> str:
    """Serialize findings (schema 1) — the CI artifact format."""
    doc = {
        "schema": 1,
        "count": len(findings),
        "findings": [f.to_dict() for f in sorted(findings, key=_severity_key)],
    }
    return json.dumps(doc, indent=indent, sort_keys=False)


def findings_from_json(text: str) -> list[Finding]:
    """Inverse of :func:`findings_to_json`."""
    doc = json.loads(text)
    if doc.get("schema") != 1:
        raise ValueError(f"unsupported findings schema {doc.get('schema')!r}")
    return [Finding.from_dict(d) for d in doc["findings"]]


def format_findings(findings: list[Finding], *, title: str = "findings") -> str:
    """Human report: one ``location  RULE  severity  message`` line each."""
    if not findings:
        return f"{title}: none"
    ordered = sorted(findings, key=_severity_key)
    loc_w = max(len(f.location) for f in ordered)
    rule_w = max(len(f.rule) for f in ordered)
    sev_w = max(len(f.severity) for f in ordered)
    lines = [f"{title}: {len(ordered)}"]
    for f in ordered:
        lines.append(
            f"  {f.location:<{loc_w}}  {f.rule:<{rule_w}}  "
            f"{f.severity:<{sev_w}}  {f.message}"
        )
    return "\n".join(lines)
