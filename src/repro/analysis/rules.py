"""Rule registry for the SPMD linter and the simmpi dynamic checkers.

Static rules (``SPMD0xx``) are produced by
:mod:`repro.analysis.linter`; dynamic rules (``DYN2xx``) by
:class:`repro.analysis.dynamic.DynamicChecker`.  Every rule documented
here also appears, with an example and its suppression syntax, in
``docs/static-analysis.md`` — keep the two in sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import ERROR, WARNING

__all__ = ["Rule", "RULES", "STATIC_RULES", "DYNAMIC_RULES", "get_rule"]


@dataclass(frozen=True)
class Rule:
    """One checkable invariant.

    Attributes
    ----------
    id:
        Stable identifier (``SPMD001``); referenced by suppressions
        (``# repro: ignore[SPMD001]``) and asserted on by tests.
    name:
        Short kebab-case slug.
    severity:
        Default severity of findings from this rule.
    summary:
        One-line statement of the invariant.
    rationale:
        Why violating it breaks an SPMD program (message shown in
        ``docs/static-analysis.md``).
    """

    id: str
    name: str
    severity: str
    summary: str
    rationale: str


STATIC_RULES = (
    Rule(
        id="SPMD001",
        name="rank-conditional-collective",
        severity=ERROR,
        summary="collective call inside a rank-conditional branch",
        rationale=(
            "MPI collectives (allreduce, bcast, barrier, fence, ...) must "
            "be reached by every rank of the communicator in the same "
            "order; a collective guarded by `if comm.rank == ...` leaves "
            "the other ranks blocked forever (or silently matches the "
            "wrong call)."
        ),
    ),
    Rule(
        id="SPMD002",
        name="global-numpy-rng",
        severity=ERROR,
        summary="np.random.* global-state RNG used instead of default_rng",
        rationale=(
            "The global numpy RNG is process-wide state: simulated ranks "
            "are threads, so draws interleave nondeterministically and "
            "bootstrap replay from a shared seed breaks. All randomness "
            "must flow through an explicit np.random.default_rng(...) "
            "Generator."
        ),
    ),
    Rule(
        id="SPMD003",
        name="span-not-context-managed",
        severity=WARNING,
        summary="telemetry span opened without a `with` block",
        rationale=(
            "repro.telemetry.span(...) returns a context manager; a bare "
            "call records nothing (the interval is never closed), so the "
            "run's category breakdown silently loses that region."
        ),
    ),
    Rule(
        id="SPMD004",
        name="rma-buffer-mutated",
        severity=WARNING,
        summary="buffer returned by Window.get mutated in place without a copy",
        rationale=(
            "Under real MPI RMA the origin buffer of a Get belongs to the "
            "epoch until the next synchronization; mutating it in place "
            "races the transfer. The simulator's Window.get returns a "
            "private copy, so code relying on that is not portable to an "
            "mpi4py backend — take an explicit .copy() before mutating."
        ),
    ),
)

DYNAMIC_RULES = (
    Rule(
        id="DYN201",
        name="collective-sequence-mismatch",
        severity=ERROR,
        summary="ranks called different collectives at the same sequence point",
        rationale=(
            "Collectives match by call order per communicator; when rank "
            "A's n-th collective is an allreduce and rank B's is a bcast, "
            "the runtime combines unrelated payloads (or deadlocks). The "
            "checker validates the operation kind of every contribution "
            "before it is combined."
        ),
    ),
    Rule(
        id="DYN202",
        name="collective-argument-mismatch",
        severity=ERROR,
        summary="collective called with mismatched op/root/dtype/shape across ranks",
        rationale=(
            "A reduction where ranks pass different ReduceOps (or "
            "different dtypes/shapes, or different roots) silently uses "
            "whichever rank combined last — a rank-dependent result that "
            "no test at small scale reliably catches."
        ),
    ),
    Rule(
        id="DYN203",
        name="rma-epoch-race",
        severity=ERROR,
        summary="conflicting RMA operations on one target location within an epoch",
        rationale=(
            "Between two Window.fence calls, a put/accumulate that "
            "overlaps a get (or another put) on the same target rows is "
            "unordered: MPI leaves the outcome undefined. Separate "
            "conflicting accesses with a fence."
        ),
    ),
    Rule(
        id="DYN204",
        name="deadlock",
        severity=ERROR,
        summary="ranks blocked forever in mismatched communication",
        rationale=(
            "A rank waiting in a collective or recv that its peers never "
            "post can only time out; the reporter names every blocked "
            "rank and the call each is waiting in so the mismatch is "
            "diagnosable from one message."
        ),
    ),
)

#: id -> Rule for every rule, static and dynamic.
RULES: dict[str, Rule] = {r.id: r for r in STATIC_RULES + DYNAMIC_RULES}


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id; raises ``KeyError`` with the known ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
        ) from None
