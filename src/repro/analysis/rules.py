"""Rule registry for the static passes and the simmpi dynamic checkers.

Six rule families, one findings currency:

* ``SPMD0xx`` — the AST SPMD linter (:mod:`repro.analysis.linter`);
* ``SHAPE1xx`` — the symbolic shape/dtype/memory interpreter
  (:mod:`repro.analysis.shapes`);
* ``DYN2xx`` — the runtime checkers
  (:class:`repro.analysis.dynamic.DynamicChecker`, including the
  ``DYN206`` lock-order observer);
* ``DET3xx`` — the determinism-taint pass
  (:mod:`repro.analysis.determinism`);
* ``PLAN4xx`` — the pre-run plan verifier
  (:mod:`repro.analysis.planver`);
* ``LOCK5xx`` — the thread-safety pass over the service/elastic/
  stream layers (:mod:`repro.analysis.threads`), plus ``SUP001`` for
  stale suppressions (:mod:`repro.analysis.suppress`).

Every rule documented here also appears, with an example and its
suppression syntax, in ``docs/static-analysis.md`` — keep the two in
sync.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.findings import ERROR, WARNING

__all__ = [
    "Rule",
    "RULES",
    "STATIC_RULES",
    "SHAPE_RULES",
    "DYNAMIC_RULES",
    "DETERMINISM_RULES",
    "PLAN_RULES",
    "THREAD_RULES",
    "SUPPRESSION_RULES",
    "get_rule",
]


@dataclass(frozen=True)
class Rule:
    """One checkable invariant.

    Attributes
    ----------
    id:
        Stable identifier (``SPMD001``); referenced by suppressions
        (``# repro: ignore[SPMD001]``) and asserted on by tests.
    name:
        Short kebab-case slug.
    severity:
        Default severity of findings from this rule.
    summary:
        One-line statement of the invariant.
    rationale:
        Why violating it breaks an SPMD program (message shown in
        ``docs/static-analysis.md``).
    """

    id: str
    name: str
    severity: str
    summary: str
    rationale: str


STATIC_RULES = (
    Rule(
        id="SPMD001",
        name="rank-conditional-collective",
        severity=ERROR,
        summary="collective call inside a rank-conditional branch",
        rationale=(
            "MPI collectives (allreduce, bcast, barrier, fence, ...) must "
            "be reached by every rank of the communicator in the same "
            "order; a collective guarded by `if comm.rank == ...` leaves "
            "the other ranks blocked forever (or silently matches the "
            "wrong call)."
        ),
    ),
    Rule(
        id="SPMD002",
        name="global-numpy-rng",
        severity=ERROR,
        summary="np.random.* global-state RNG used instead of default_rng",
        rationale=(
            "The global numpy RNG is process-wide state: simulated ranks "
            "are threads, so draws interleave nondeterministically and "
            "bootstrap replay from a shared seed breaks. All randomness "
            "must flow through an explicit np.random.default_rng(...) "
            "Generator."
        ),
    ),
    Rule(
        id="SPMD003",
        name="span-not-context-managed",
        severity=WARNING,
        summary="telemetry span opened without a `with` block",
        rationale=(
            "repro.telemetry.span(...) returns a context manager; a bare "
            "call records nothing (the interval is never closed), so the "
            "run's category breakdown silently loses that region."
        ),
    ),
    Rule(
        id="SPMD004",
        name="rma-buffer-mutated",
        severity=WARNING,
        summary="buffer returned by Window.get mutated in place without a copy",
        rationale=(
            "Under real MPI RMA the origin buffer of a Get belongs to the "
            "epoch until the next synchronization; mutating it in place "
            "races the transfer. The simulator's Window.get returns a "
            "private copy, so code relying on that is not portable to an "
            "mpi4py backend — take an explicit .copy() before mutating."
        ),
    ),
)

DYNAMIC_RULES = (
    Rule(
        id="DYN201",
        name="collective-sequence-mismatch",
        severity=ERROR,
        summary="ranks called different collectives at the same sequence point",
        rationale=(
            "Collectives match by call order per communicator; when rank "
            "A's n-th collective is an allreduce and rank B's is a bcast, "
            "the runtime combines unrelated payloads (or deadlocks). The "
            "checker validates the operation kind of every contribution "
            "before it is combined."
        ),
    ),
    Rule(
        id="DYN202",
        name="collective-argument-mismatch",
        severity=ERROR,
        summary="collective called with mismatched op/root/dtype/shape across ranks",
        rationale=(
            "A reduction where ranks pass different ReduceOps (or "
            "different dtypes/shapes, or different roots) silently uses "
            "whichever rank combined last — a rank-dependent result that "
            "no test at small scale reliably catches."
        ),
    ),
    Rule(
        id="DYN203",
        name="rma-epoch-race",
        severity=ERROR,
        summary="conflicting RMA operations on one target location within an epoch",
        rationale=(
            "Between two Window.fence calls, a put/accumulate that "
            "overlaps a get (or another put) on the same target rows is "
            "unordered: MPI leaves the outcome undefined. Separate "
            "conflicting accesses with a fence."
        ),
    ),
    Rule(
        id="DYN204",
        name="deadlock",
        severity=ERROR,
        summary="ranks blocked forever in mismatched communication",
        rationale=(
            "A rank waiting in a collective or recv that its peers never "
            "post can only time out; the reporter names every blocked "
            "rank and the call each is waiting in so the mismatch is "
            "diagnosable from one message."
        ),
    ),
    Rule(
        id="DYN205",
        name="worker-lease-stall",
        severity=ERROR,
        summary="coordinator fleet made no progress within the stall timeout",
        rationale=(
            "The worker-lease generalization of DYN204: when every "
            "outstanding lease sits on a worker that is neither "
            "completing, streaming partials, nor departing — and no new "
            "worker joins — the elastic run can only time out. The "
            "reporter names each stalled worker and the lease it holds "
            "(chain + subproblem keys) so a hung fleet is diagnosable "
            "from one message."
        ),
    ),
    Rule(
        id="DYN206",
        name="lock-order-violation",
        severity=ERROR,
        summary="observed lock-order inversion or long-held-lock stall",
        rationale=(
            "The runtime twin of LOCK501: a LockOrderObserver wrapped "
            "around the service/elastic/stream locks records every "
            "thread's acquisition stack. Two locks observed held in "
            "both orders is a deadlock that merely has not interleaved "
            "badly yet; a lock held past the stall threshold starves "
            "every contending thread. Observation only — checked runs "
            "are bitwise-identical to unchecked ones."
        ),
    ),
)

SHAPE_RULES = (
    Rule(
        id="SHAPE101",
        name="dense-kron-materialization",
        severity=ERROR,
        summary="dense materialization of I ⊗ X outside the sanctioned "
        "identity_kron path",
        rationale=(
            "The lifted design I_p ⊗ X of eq. (9) is ≈ p³ the size of the "
            "data: materializing it densely on one rank (np.kron(np.eye(p), "
            "X), identity_kron(..., sparse=False), .toarray() on a lifted "
            "operator) silently exhausts node memory at paper scale. All "
            "materialization must flow through repro.linalg.kron's "
            "sanctioned sparse/lazy representations."
        ),
    ),
    Rule(
        id="SHAPE102",
        name="per-rank-memory-budget",
        severity=ERROR,
        summary="symbolic allocation size exceeds the per-rank memory budget",
        rationale=(
            "An allocation whose symbolic size — dims propagated from "
            "`n, p = X.shape`-style bindings — evaluates above the "
            "configured per-rank budget at reference scale (N=1e5, p=1e3) "
            "will OOM a production run 40 minutes in; the interpreter "
            "proves it before launch."
        ),
    ),
    Rule(
        id="SHAPE103",
        name="dtype-drift",
        severity=WARNING,
        summary="float32/float64 mixed arithmetic or solver-boundary upcast",
        rationale=(
            "Mixing float32 and float64 operands silently upcasts: memory "
            "doubles, results stop being bitwise-reproducible against the "
            "float32 pipeline, and scipy.sparse ops materialize float64 "
            "copies. Normalize the dtype at the subsystem boundary "
            "instead."
        ),
    ),
)

DETERMINISM_RULES = (
    Rule(
        id="DET301",
        name="wall-clock-in-plan",
        severity=ERROR,
        summary="wall-clock read reachable from UoIPlan.run_chain/reduce",
        rationale=(
            "The plan module's determinism contract promises that the same "
            "seed yields bitwise-identical coefficients on every backend; "
            "a time.time()/perf_counter()/datetime.now() value flowing "
            "into plan-reachable code makes results depend on when the run "
            "started."
        ),
    ),
    Rule(
        id="DET302",
        name="os-ordering-dependence",
        severity=ERROR,
        summary="os-ordered listing (glob/listdir/scandir/iterdir) reachable "
        "from a plan without sorted()",
        rationale=(
            "glob.glob, os.listdir, os.scandir and Path.iterdir return "
            "entries in filesystem order, which differs across nodes and "
            "runs; feeding that order into plan-reachable code breaks "
            "cross-backend bitwise identity. Wrap the listing in "
            "sorted(...)."
        ),
    ),
    Rule(
        id="DET303",
        name="set-iteration-order",
        severity=ERROR,
        summary="iteration over a set feeding plan-reachable computation",
        rationale=(
            "Set iteration order depends on insertion history and hash "
            "randomization; iterating a set inside run_chain/reduce (or "
            "anything they call) reorders float accumulation and breaks "
            "the fixed reduction order the determinism contract requires. "
            "Iterate sorted(the_set) instead."
        ),
    ),
    Rule(
        id="DET304",
        name="unseeded-rng-in-plan",
        severity=ERROR,
        summary="unseeded RNG (default_rng() / random.*) reachable from a plan",
        rationale=(
            "All plan randomness must be pre-drawn in __init__ from the "
            "run's random_state; an unseeded np.random.default_rng() or a "
            "stdlib random.* call in plan-reachable code draws entropy "
            "from the OS and cannot replay. (Global np.random state is "
            "SPMD002; this extends the contract to nominally-local but "
            "unseeded generators.)"
        ),
    ),
)

PLAN_RULES = (
    Rule(
        id="PLAN401",
        name="duplicate-checkpoint-key",
        severity=ERROR,
        summary="two subproblems share one checkpoint key",
        rationale=(
            "Checkpoint records are keyed by Subproblem.key; a duplicate "
            "key makes the second write clobber the first, so a restarted "
            "run recovers the wrong payload and the resume is no longer "
            "bitwise-identical. Statically: a constant key built inside a "
            "task loop is a duplicate in waiting."
        ),
    ),
    Rule(
        id="PLAN402",
        name="warm-start-order",
        severity=ERROR,
        summary="chain tasks out of warm-start order",
        rationale=(
            "Tasks in one chain share bootstrap data and λ-path warm "
            "starts and must run in list order: positions must be "
            "0,1,2,... and λ indices monotone, and a chain must not mix "
            "stages or bootstraps. An out-of-order chain warm-starts the "
            "solver from the wrong β and changes every downstream bit."
        ),
    ),
    Rule(
        id="PLAN403",
        name="grid-coverage",
        severity=ERROR,
        summary="stage does not cover the (bootstrap, λ) grid exactly once",
        rationale=(
            "Selection must enumerate every bootstrap 0..B1-1 (and, for "
            "per-λ plans, every λ 0..q-1) exactly once, estimation "
            "likewise over B2: a gap silently drops a subproblem from the "
            "intersection/union, a duplicate double-counts it — neither "
            "crashes, both corrupt the estimator."
        ),
    ),
    Rule(
        id="PLAN404",
        name="collective-congruence",
        severity=ERROR,
        summary="rank-divergent collective schedule provable from the plan",
        rationale=(
            "The static twin of DYN201/202: every cell must own a "
            "disjoint, exhaustive slice of the task grid, run_chain must "
            "not post world-wide collectives (ownership filtering makes "
            "them rank-divergent), and reduce's collectives must be "
            "unconditional — otherwise ranks disagree on the collective "
            "sequence and the run deadlocks or combines unrelated "
            "payloads."
        ),
    ),
    Rule(
        id="PLAN405",
        name="lease-disjointness",
        severity=ERROR,
        summary="two active leases cover the same subproblem",
        rationale=(
            "The coordinator's leases must partition outstanding work "
            "the way PLAN404's grid cells partition the plan: at most "
            "one primary (non-speculative) lease may cover a subproblem "
            "key at a time. Overlapping primary leases mean two workers "
            "own one subproblem — wasted compute at best, and a "
            "first-writer-wins race on checkpoint records at worst. "
            "Speculative duplicates are exempt by design: they re-run "
            "the same pure chain and the coordinator keeps only the "
            "first result."
        ),
    ),
)

THREAD_RULES = (
    Rule(
        id="LOCK501",
        name="lock-order-inversion",
        severity=ERROR,
        summary="two locks are acquired in both orders on different paths",
        rationale=(
            "If one code path takes lock A then lock B while another "
            "takes B then A, two threads interleaving those paths "
            "deadlock forever — each holds the lock the other needs. "
            "The pass builds the lock-acquisition graph across every "
            "`with lock:` / `.acquire()` site (following calls made "
            "while a lock is held, like the DET pass follows taint) and "
            "reports each edge participating in a cycle."
        ),
    ),
    Rule(
        id="LOCK502",
        name="bare-condition-wait",
        severity=ERROR,
        summary="Condition.wait() outside a while-predicate loop",
        rationale=(
            "Condition waits are subject to spurious wakeups, and the "
            "predicate can be re-falsified between notify and wakeup "
            "under multiple waiters; a wait guarded by `if` (or by no "
            "check at all) proceeds on stale state. The only safe shape "
            "is `while not predicate: cond.wait()` — or wait_for(), "
            "which loops internally."
        ),
    ),
    Rule(
        id="LOCK503",
        name="unlocked-shared-write",
        severity=ERROR,
        summary="attribute written under a lock somewhere is also written "
        "without it",
        rationale=(
            "An attribute that any method writes while holding a lock is, "
            "by that act, declared shared mutable state; a write to it on "
            "a path that does not hold the same lock races every locked "
            "reader and writer (lost updates, torn compound state). The "
            "lock-set attribution follows callers: a helper only ever "
            "invoked with the lock held counts as locked (Eraser-style)."
        ),
    ),
    Rule(
        id="LOCK504",
        name="blocking-call-under-lock",
        severity=ERROR,
        summary="blocking call (socket recv/accept, Queue.get, "
        "future.result, engine run) while holding a lock",
        rationale=(
            "A lock held across an unbounded wait — a socket recv, a "
            "queue get, a future result, an entire engine run — stalls "
            "every thread contending for that lock for as long as the "
            "wait lasts, and deadlocks outright if the awaited event "
            "itself needs the lock to make progress. Snapshot under the "
            "lock, then block outside it (Condition.wait is exempt: it "
            "releases the lock while waiting)."
        ),
    ),
)

SUPPRESSION_RULES = (
    Rule(
        id="SUP001",
        name="stale-suppression",
        severity=WARNING,
        summary="rule-scoped suppression matches no finding",
        rationale=(
            "A `# repro: ignore[RULE]` that no longer suppresses anything "
            "is dead weight that will silently swallow the next real "
            "finding on that line; remove it once the underlying issue is "
            "fixed."
        ),
    ),
)

#: id -> Rule for every rule, static and dynamic.
RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        STATIC_RULES
        + SHAPE_RULES
        + DYNAMIC_RULES
        + DETERMINISM_RULES
        + PLAN_RULES
        + THREAD_RULES
        + SUPPRESSION_RULES
    )
}


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id; raises ``KeyError`` with the known ids."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
        ) from None
