"""Residual diagnostics for fitted VAR models.

A Granger network is only trustworthy if the VAR it came from fits:
the residuals should be serially uncorrelated (everything dynamic was
captured) and the fitted dynamics stable.  This module provides the
standard checks (Lütkepohl 2005, ch. 4): residual computation, a
per-component Ljung–Box portmanteau test, and a stability verdict on
the fitted coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.stats

from repro.var.lag import build_lag_matrices, stack_coefficients
from repro.var.model import spectral_radius

__all__ = ["residuals", "ljung_box", "LjungBoxResult", "diagnose", "Diagnosis"]


def residuals(
    series: np.ndarray,
    coefs: list[np.ndarray],
    *,
    intercept: np.ndarray | None = None,
) -> np.ndarray:
    """One-step-ahead residuals of fitted coefficients on a series.

    Returns an ``(N - d, p)`` array in the same (descending-time) row
    order as :func:`repro.var.lag.build_lag_matrices`.
    """
    coefs = [np.asarray(A, dtype=float) for A in coefs]
    d = len(coefs)
    has_mu = intercept is not None
    Y, X = build_lag_matrices(series, d, add_intercept=has_mu)
    B = stack_coefficients(coefs, intercept if has_mu else None)
    return Y - X @ B


@dataclass(frozen=True)
class LjungBoxResult:
    """Per-component portmanteau test for residual autocorrelation.

    Attributes
    ----------
    statistic:
        ``(p,)`` Q statistics.
    p_value:
        ``(p,)`` chi-square tail probabilities (small = autocorrelated
        residuals = the model missed dynamics).
    lags:
        Number of autocorrelation lags pooled into Q.
    """

    statistic: np.ndarray
    p_value: np.ndarray
    lags: int

    def passed(self, alpha: float = 0.05) -> bool:
        """True when no component rejects whiteness at level ``alpha``."""
        return bool(np.all(self.p_value > alpha))


def ljung_box(resid: np.ndarray, *, lags: int = 10) -> LjungBoxResult:
    """Ljung–Box Q test applied to each residual component.

    ``Q = T (T + 2) sum_{k=1..m} r_k^2 / (T - k)`` compared against a
    chi-square with ``m`` degrees of freedom.
    """
    resid = np.asarray(resid, dtype=float)
    if resid.ndim != 2:
        raise ValueError(f"residuals must be 2-D, got {resid.shape}")
    T, p = resid.shape
    if lags < 1 or lags >= T:
        raise ValueError(f"lags must lie in [1, {T - 1}], got {lags}")
    centered = resid - resid.mean(axis=0)
    denom = np.einsum("ij,ij->j", centered, centered)
    denom = np.where(denom == 0.0, 1.0, denom)
    stats = np.zeros(p)
    for k in range(1, lags + 1):
        r_k = np.einsum("ij,ij->j", centered[k:], centered[:-k]) / denom
        stats += r_k**2 / (T - k)
    stats *= T * (T + 2)
    pvals = scipy.stats.chi2.sf(stats, df=lags)
    return LjungBoxResult(statistic=stats, p_value=pvals, lags=lags)


@dataclass(frozen=True)
class Diagnosis:
    """Bundle of model-adequacy checks.

    Attributes
    ----------
    stable:
        Whether the fitted coefficients define a stable process.
    spectral_radius:
        Companion-matrix spectral radius of the fit.
    whiteness:
        The Ljung–Box result on the residuals.
    residual_std:
        ``(p,)`` per-component residual standard deviations.
    """

    stable: bool
    spectral_radius: float
    whiteness: LjungBoxResult
    residual_std: np.ndarray

    def ok(self, alpha: float = 0.05) -> bool:
        """Stable *and* white residuals."""
        return self.stable and self.whiteness.passed(alpha)


def diagnose(
    series: np.ndarray,
    coefs: list[np.ndarray],
    *,
    intercept: np.ndarray | None = None,
    lags: int = 10,
) -> Diagnosis:
    """Run the full adequacy check on a fitted model."""
    radius = spectral_radius(coefs)
    resid = residuals(series, coefs, intercept=intercept)
    lags = min(lags, resid.shape[0] - 1)
    return Diagnosis(
        stable=radius < 1.0,
        spectral_radius=radius,
        whiteness=ljung_box(resid, lags=lags),
        residual_std=resid.std(axis=0),
    )
