"""Granger-causal network extraction (the paper's Fig. 11 output).

A fitted VAR gives matrices ``A_1 ... A_d``; component ``j``
Granger-causes component ``i`` exactly when some lag carries a nonzero
weight ``A_l[i, j]``.  The paper draws this as a directed graph with
node size proportional to degree and edge width proportional to the
estimate magnitude; :func:`granger_digraph` builds the corresponding
``networkx.DiGraph`` and :func:`network_summary` reports the headline
statistics ("fewer than 40 edges out of 2500 possible").
"""

from __future__ import annotations

import numpy as np
import networkx as nx

__all__ = ["granger_adjacency", "granger_digraph", "edge_list", "network_summary"]


def granger_adjacency(
    coefs: list[np.ndarray],
    *,
    tol: float = 0.0,
) -> np.ndarray:
    """Weighted adjacency ``W[i, j]`` = max-over-lags ``|A_l[i, j]|``.

    Entries at or below ``tol`` are zeroed (no edge).  ``W[i, j] > 0``
    means there is a directed Granger edge ``j -> i``.
    """
    coefs = [np.asarray(A, dtype=float) for A in coefs]
    if not coefs:
        raise ValueError("need at least one coefficient matrix")
    p = coefs[0].shape[0]
    for A in coefs:
        if A.shape != (p, p):
            raise ValueError(f"all A_l must be ({p}, {p}); got {A.shape}")
    W = np.max(np.stack([np.abs(A) for A in coefs]), axis=0)
    W[W <= tol] = 0.0
    return W


def granger_digraph(
    coefs: list[np.ndarray],
    *,
    labels: list[str] | None = None,
    tol: float = 0.0,
    include_self_loops: bool = False,
) -> nx.DiGraph:
    """Directed graph with an edge ``j -> i`` per nonzero ``A_l[i, j]``.

    Parameters
    ----------
    coefs:
        Fitted ``A_1 ... A_d``.
    labels:
        Optional node names (e.g. company tickers); defaults to
        integer indices.
    tol:
        Magnitude threshold below which entries count as zero.
    include_self_loops:
        Keep ``i -> i`` autoregressive edges (the paper's figure drops
        them — self-dependence is not network structure).
    """
    W = granger_adjacency(coefs, tol=tol)
    p = W.shape[0]
    if labels is None:
        labels = [str(i) for i in range(p)]
    if len(labels) != p:
        raise ValueError(f"got {len(labels)} labels for {p} nodes")
    g = nx.DiGraph()
    g.add_nodes_from(labels)
    for i in range(p):
        for j in range(p):
            if W[i, j] > 0.0 and (include_self_loops or i != j):
                g.add_edge(labels[j], labels[i], weight=float(W[i, j]))
    return g


def edge_list(
    coefs: list[np.ndarray],
    *,
    labels: list[str] | None = None,
    tol: float = 0.0,
) -> list[tuple[str, str, float]]:
    """Edges ``(source, target, weight)`` sorted by descending weight."""
    g = granger_digraph(coefs, labels=labels, tol=tol)
    edges = [(u, v, d["weight"]) for u, v, d in g.edges(data=True)]
    edges.sort(key=lambda e: (-e[2], e[0], e[1]))
    return edges


def network_summary(coefs: list[np.ndarray], *, tol: float = 0.0) -> dict:
    """Headline statistics of the inferred network.

    Returns a dict with ``nodes``, ``possible_edges`` (p², counting
    self-loops, as the paper's "2500 possible" does for p = 50),
    ``edges`` (off-diagonal), ``self_loops``, ``density``,
    ``max_in_degree``, ``max_out_degree``.
    """
    W = granger_adjacency(coefs, tol=tol)
    p = W.shape[0]
    mask = W > 0.0
    off = mask & ~np.eye(p, dtype=bool)
    return {
        "nodes": p,
        "possible_edges": p * p,
        "edges": int(off.sum()),
        "self_loops": int(np.diag(mask).sum()),
        "density": float(off.sum() / max(p * (p - 1), 1)),
        "max_in_degree": int(off.sum(axis=1).max()) if p else 0,
        "max_out_degree": int(off.sum(axis=0).max()) if p else 0,
    }
