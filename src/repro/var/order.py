"""VAR order selection by information criteria.

The paper fixes the order per application (VAR(1) for the financial
example).  A production VAR library needs to *choose* ``d``; this
module implements the standard multivariate information criteria
(Lütkepohl 2005, §4.3) on least-squares fits:

    AIC(d)  = log det(Sigma_d) + 2 d p^2 / T
    BIC(d)  = log det(Sigma_d) + log(T) d p^2 / T
    HQC(d)  = log det(Sigma_d) + 2 log(log T) d p^2 / T

where ``Sigma_d`` is the residual covariance of the order-``d`` fit
and ``T`` the effective sample count (all orders are scored on the
same trailing window so the criteria are comparable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.var.lag import build_lag_matrices

__all__ = ["OrderSelection", "information_criterion", "select_order"]

_CRITERIA = ("aic", "bic", "hqc")


@dataclass(frozen=True)
class OrderSelection:
    """Result of an order sweep.

    Attributes
    ----------
    order:
        The selected VAR order.
    criterion:
        Which criterion chose it.
    scores:
        ``{order: score}`` for every candidate (lower is better).
    """

    order: int
    criterion: str
    scores: dict[int, float]


def information_criterion(
    series: np.ndarray,
    order: int,
    *,
    criterion: str = "bic",
    holdback: int | None = None,
) -> float:
    """Score one candidate order (lower is better).

    Parameters
    ----------
    series:
        ``(N, p)`` observations.
    order:
        Candidate ``d``.
    criterion:
        ``"aic"``, ``"bic"`` or ``"hqc"``.
    holdback:
        Drop this many leading rows before building the lag matrices so
        different orders are scored on identical targets (defaults to
        0, i.e. score on the order's own maximal window).
    """
    if criterion not in _CRITERIA:
        raise ValueError(f"criterion must be one of {_CRITERIA}, got {criterion!r}")
    series = np.asarray(series, dtype=float)
    if holdback:
        if holdback < 0 or holdback >= series.shape[0] - order:
            raise ValueError(f"invalid holdback {holdback}")
        series = series[holdback - order:] if holdback >= order else series
    Y, X = build_lag_matrices(series, order, add_intercept=True)
    T, p = Y.shape
    B, *_ = np.linalg.lstsq(X, Y, rcond=None)
    resid = Y - X @ B
    sigma = resid.T @ resid / T
    sign, logdet = np.linalg.slogdet(sigma + 1e-12 * np.eye(p))
    if sign <= 0:
        logdet = -np.inf  # degenerate fit: perfectly explained
    k = order * p * p
    if criterion == "aic":
        penalty = 2.0 * k / T
    elif criterion == "bic":
        penalty = np.log(T) * k / T
    else:
        penalty = 2.0 * np.log(np.log(T)) * k / T
    return float(logdet + penalty)


def select_order(
    series: np.ndarray,
    max_order: int = 6,
    *,
    criterion: str = "bic",
) -> OrderSelection:
    """Sweep orders 1..max_order, return the criterion's minimizer.

    All candidates are scored on the common trailing window implied by
    ``max_order`` (standard practice, so the comparison is fair).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be 2-D, got {series.shape}")
    if max_order < 1:
        raise ValueError("max_order must be >= 1")
    if series.shape[0] <= max_order + 1:
        raise ValueError(
            f"series too short ({series.shape[0]} rows) for max_order {max_order}"
        )
    scores: dict[int, float] = {}
    for d in range(1, max_order + 1):
        # Common window: drop the first (max_order - d) rows so every
        # candidate predicts the same targets.
        window = series[max_order - d:]
        scores[d] = information_criterion(window, d, criterion=criterion)
    best = min(scores, key=scores.get)
    return OrderSelection(order=best, criterion=criterion, scores=scores)
