"""Lag-matrix construction (paper eqs. 7-8) and coefficient bookkeeping.

For a series ``X_1 ... X_N`` and order ``d`` the multivariate
least-squares form ``Y = X B + E`` uses

    Y = (X_N, X_{N-1}, ..., X_{d+1})'                (eq. 7, rows in
                                                      descending time)
    X row for target X_t = (X'_{t-1}, X'_{t-2}, ..., X'_{t-d})  (eq. 8)

with coefficient matrix ``B' = (A_1 A_2 ... A_d)`` — i.e. ``B`` stacks
``A_1', ..., A_d'`` vertically.  With an intercept, a leading ones
column is appended to ``X`` and ``mu'`` becomes the first row of
``B``; Algorithm 2's line 31 ("partition beta-hat and rearrange into
(A_1 ... A_d) and mu") is :func:`partition_coefficients`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_lag_matrices", "partition_coefficients", "stack_coefficients"]


def build_lag_matrices(
    series: np.ndarray,
    order: int,
    *,
    add_intercept: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Build ``(Y, X)`` of eqs. 7-8 from an ``(N, p)`` series.

    Parameters
    ----------
    series:
        Observations, row ``t`` = ``X_{t+1}`` (time increases down the
        array).
    order:
        VAR order ``d``; needs ``N > d``.
    add_intercept:
        Prepend a ones column to ``X`` (so the fitted ``B`` carries
        ``mu`` in its first row).

    Returns
    -------
    (Y, X):
        ``Y`` is ``(N - d, p)``; ``X`` is ``(N - d, dp)`` (or
        ``(N - d, 1 + dp)`` with intercept).  Row ``r`` of both refers
        to target time ``t = N - r`` (descending, as in the paper).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError(f"series must be 2-D (N, p), got {series.shape}")
    N, p = series.shape
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if N <= order:
        raise ValueError(f"need N > d: N={N}, d={order}")
    m = N - order
    # Targets X_N ... X_{d+1}: series rows N-1 down to d.
    Y = series[np.arange(N - 1, order - 1, -1)]
    blocks = []
    for j in range(1, order + 1):
        # Lag-j regressor for target X_t is X_{t-j}: rows N-1-j down to d-j.
        blocks.append(series[np.arange(N - 1 - j, order - 1 - j, -1)])
    X = np.hstack(blocks)
    if add_intercept:
        X = np.hstack([np.ones((m, 1)), X])
    return np.ascontiguousarray(Y), np.ascontiguousarray(X)


def stack_coefficients(
    coefs: list[np.ndarray],
    intercept: np.ndarray | None = None,
) -> np.ndarray:
    """Assemble ``B`` from ``(A_1 ... A_d)`` (+ optional ``mu``).

    The inverse of :func:`partition_coefficients`: ``B`` is ``(dp, p)``
    (or ``(1 + dp, p)``) with ``B' = (mu A_1 ... A_d)``.
    """
    coefs = [np.asarray(A, dtype=float) for A in coefs]
    p = coefs[0].shape[0]
    rows = [A.T for A in coefs]
    if intercept is not None:
        intercept = np.asarray(intercept, dtype=float).reshape(1, p)
        rows = [intercept, *rows]
    return np.vstack(rows)


def partition_coefficients(
    B: np.ndarray,
    p: int,
    order: int,
    *,
    has_intercept: bool = False,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Rearrange a fitted ``B`` (or flattened ``vec B``) into ``(A_j, mu)``.

    Parameters
    ----------
    B:
        ``(k, p)`` coefficient matrix or its column-stacked ``vec`` of
        length ``k * p``, where ``k = dp (+ 1 with intercept)``.
    p:
        Process dimension.
    order:
        VAR order ``d``.
    has_intercept:
        Whether row 0 of ``B`` is the intercept.

    Returns
    -------
    (coefs, mu):
        ``coefs`` is the list ``[A_1, ..., A_d]``; ``mu`` is ``(p,)``
        (zeros when ``has_intercept`` is False).
    """
    k = (1 if has_intercept else 0) + order * p
    B = np.asarray(B, dtype=float)
    if B.ndim == 1:
        if B.shape != (k * p,):
            raise ValueError(f"vec B length {B.shape[0]} != {k * p}")
        B = B.reshape((k, p), order="F")
    if B.shape != (k, p):
        raise ValueError(f"B shape {B.shape} != ({k}, {p})")
    if has_intercept:
        mu = B[0].copy()
        body = B[1:]
    else:
        mu = np.zeros(p)
        body = B
    coefs = [body[j * p : (j + 1) * p].T.copy() for j in range(order)]
    return coefs, mu
