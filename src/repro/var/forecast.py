"""Multi-step forecasting from fitted VAR coefficients.

Granger networks are fitted to *predict*; this module turns estimated
``(A_1 ... A_d, mu)`` into h-step-ahead point forecasts and
simulation-based predictive intervals, plus the standard forecast
accuracy scores used to compare fitted models out of sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Forecast", "forecast", "forecast_intervals", "forecast_mse"]


def _check_inputs(coefs, intercept, history):
    coefs = [np.asarray(A, dtype=float) for A in coefs]
    if not coefs:
        raise ValueError("need at least one coefficient matrix")
    p = coefs[0].shape[0]
    for A in coefs:
        if A.shape != (p, p):
            raise ValueError(f"all A_j must be ({p}, {p}); got {A.shape}")
    intercept = (
        np.zeros(p) if intercept is None else np.asarray(intercept, dtype=float)
    )
    if intercept.shape != (p,):
        raise ValueError(f"intercept must be ({p},)")
    history = np.asarray(history, dtype=float)
    d = len(coefs)
    if history.ndim != 2 or history.shape[1] != p or history.shape[0] < d:
        raise ValueError(
            f"history must be (>= {d}, {p}), got {history.shape}"
        )
    return coefs, intercept, history, p, d


def forecast(
    coefs: list[np.ndarray],
    history: np.ndarray,
    steps: int,
    *,
    intercept: np.ndarray | None = None,
) -> np.ndarray:
    """Deterministic h-step-ahead point forecast.

    Parameters
    ----------
    coefs:
        Fitted ``[A_1 ... A_d]``.
    history:
        ``(>= d, p)`` trailing observations (most recent last).
    steps:
        Forecast horizon ``h >= 1``.
    intercept:
        Fitted drift (defaults to zero).

    Returns
    -------
    numpy.ndarray
        ``(steps, p)`` forecasts, row 0 = one step ahead.
    """
    coefs, intercept, history, p, d = _check_inputs(coefs, intercept, history)
    if steps < 1:
        raise ValueError("steps must be >= 1")
    window = list(history[-d:][::-1])  # window[0] = most recent
    out = np.empty((steps, p))
    for h in range(steps):
        x = intercept.copy()
        for j, A in enumerate(coefs):
            x += A @ window[j]
        out[h] = x
        window = [x, *window[:-1]]
    return out


@dataclass(frozen=True)
class Forecast:
    """Point forecast with simulation-based predictive intervals.

    Attributes
    ----------
    mean:
        ``(steps, p)`` point forecast.
    lower, upper:
        Per-step elementwise quantile bands.
    level:
        Nominal coverage of the bands (e.g. 0.9).
    """

    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    level: float


def forecast_intervals(
    coefs: list[np.ndarray],
    history: np.ndarray,
    steps: int,
    *,
    intercept: np.ndarray | None = None,
    noise_cov: np.ndarray | None = None,
    level: float = 0.9,
    n_paths: int = 500,
    rng: np.random.Generator | None = None,
) -> Forecast:
    """Monte-Carlo predictive intervals around the point forecast.

    ``n_paths`` future trajectories are simulated with Gaussian
    disturbances (``noise_cov`` defaults to identity), and the
    elementwise ``(1-level)/2`` quantiles form the band.
    """
    coefs, intercept, history, p, d = _check_inputs(coefs, intercept, history)
    if not (0.0 < level < 1.0):
        raise ValueError("level must lie in (0, 1)")
    if n_paths < 2:
        raise ValueError("n_paths must be >= 2")
    rng = rng if rng is not None else np.random.default_rng()
    cov = np.eye(p) if noise_cov is None else np.asarray(noise_cov, dtype=float)
    if cov.shape != (p, p):
        raise ValueError(f"noise_cov must be ({p}, {p})")
    chol = np.linalg.cholesky(cov)

    mean = forecast(coefs, history, steps, intercept=intercept)
    paths = np.empty((n_paths, steps, p))
    base_window = list(history[-d:][::-1])
    noise = rng.standard_normal((n_paths, steps, p)) @ chol.T
    for s in range(n_paths):
        window = list(base_window)
        for h in range(steps):
            x = intercept.copy() + noise[s, h]
            for j, A in enumerate(coefs):
                x += A @ window[j]
            paths[s, h] = x
            window = [x, *window[:-1]]
    alpha = (1.0 - level) / 2.0
    lower = np.quantile(paths, alpha, axis=0)
    upper = np.quantile(paths, 1.0 - alpha, axis=0)
    return Forecast(mean=mean, lower=lower, upper=upper, level=level)


def forecast_mse(
    coefs: list[np.ndarray],
    series: np.ndarray,
    *,
    intercept: np.ndarray | None = None,
    steps: int = 1,
) -> float:
    """Rolling out-of-sample h-step forecast MSE over a series.

    For every time ``t`` with enough history, the ``steps``-ahead
    forecast is compared with the realized value; the mean squared
    error over all such origins is returned.
    """
    coefs_list = [np.asarray(A, dtype=float) for A in coefs]
    d = len(coefs_list)
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError("series must be 2-D")
    n = series.shape[0]
    if n < d + steps + 1:
        raise ValueError("series too short for the requested horizon")
    errors = []
    for t in range(d, n - steps + 1):
        pred = forecast(
            coefs_list, series[:t], steps, intercept=intercept
        )[-1]
        errors.append(series[t + steps - 1] - pred)
    return float(np.mean(np.square(errors)))
