"""Vector-autoregression substrate.

Everything UoI_VAR needs around the core solver:

* :mod:`repro.var.model` — the VAR(d) process itself (eq. 6):
  simulation with Gaussian disturbances, the companion-matrix
  stability criterion, and coefficient bookkeeping.
* :mod:`repro.var.lag` — the multivariate least-squares rearrangement
  (eqs. 7-8): response matrix ``Y``, lagged design ``X``, and the
  partition of a fitted ``vec B`` back into ``(A_1, ..., A_d)`` and
  the intercept (Algorithm 2, line 31).
* :mod:`repro.var.granger` — Granger-causal network extraction: edge
  ``j -> i`` exists when some lag's ``A_l[i, j]`` is nonzero; exports
  a ``networkx.DiGraph`` like the paper's Fig. 11.
"""

from repro.var.model import VARProcess, companion_matrix, spectral_radius, is_stable
from repro.var.lag import (
    build_lag_matrices,
    partition_coefficients,
    stack_coefficients,
)
from repro.var.order import OrderSelection, information_criterion, select_order
from repro.var.forecast import Forecast, forecast, forecast_intervals, forecast_mse
from repro.var.diagnostics import Diagnosis, LjungBoxResult, diagnose, ljung_box, residuals
from repro.var.granger import (
    granger_adjacency,
    granger_digraph,
    edge_list,
    network_summary,
)

__all__ = [
    "VARProcess",
    "companion_matrix",
    "spectral_radius",
    "is_stable",
    "build_lag_matrices",
    "partition_coefficients",
    "stack_coefficients",
    "OrderSelection",
    "Forecast",
    "forecast",
    "forecast_intervals",
    "forecast_mse",
    "Diagnosis",
    "LjungBoxResult",
    "diagnose",
    "ljung_box",
    "residuals",
    "information_criterion",
    "select_order",
    "granger_adjacency",
    "granger_digraph",
    "edge_list",
    "network_summary",
]
