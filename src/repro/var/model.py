"""The VAR(d) process (paper eq. 6).

    X_t = mu + sum_{j=1..d} A_j X_{t-j} + U_t,   U_t ~ N_p(0, Sigma)

with the stability constraint ``det(I - sum_j A_j z^j) != 0`` for all
``|z| <= 1`` — equivalently, the companion matrix's spectral radius is
strictly below one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["VARProcess", "companion_matrix", "spectral_radius", "is_stable"]


def companion_matrix(coefs: list[np.ndarray] | np.ndarray) -> np.ndarray:
    """Companion form of VAR coefficient matrices.

    For ``d`` matrices of shape ``(p, p)`` returns the ``(dp, dp)``
    block matrix ``[[A_1 ... A_d], [I 0 ... 0], ..., [0 ... I 0]]``
    whose eigenvalues decide stability.
    """
    coefs = [np.asarray(A, dtype=float) for A in coefs]
    if not coefs:
        raise ValueError("need at least one coefficient matrix")
    p = coefs[0].shape[0]
    for A in coefs:
        if A.shape != (p, p):
            raise ValueError(f"all A_j must be ({p}, {p}); got {A.shape}")
    d = len(coefs)
    comp = np.zeros((d * p, d * p))
    comp[:p] = np.hstack(coefs)
    if d > 1:
        comp[p:, :-p] = np.eye((d - 1) * p)
    return comp


def spectral_radius(coefs: list[np.ndarray] | np.ndarray) -> float:
    """Largest |eigenvalue| of the companion matrix."""
    return float(np.max(np.abs(np.linalg.eigvals(companion_matrix(coefs)))))


def is_stable(coefs: list[np.ndarray] | np.ndarray, *, tol: float = 1e-10) -> bool:
    """Stability check: spectral radius strictly below ``1 - tol``."""
    return spectral_radius(coefs) < 1.0 - tol


@dataclass
class VARProcess:
    """A concrete VAR(d) process: coefficients, intercept, noise.

    Attributes
    ----------
    coefs:
        List of ``d`` coefficient matrices ``A_1 ... A_d``, each
        ``(p, p)``; ``A_j[i, :]`` are the weights of lag-``j`` values
        in component ``i``'s equation.
    intercept:
        ``(p,)`` drift ``mu`` (defaults to zero).
    noise_cov:
        ``(p, p)`` disturbance covariance ``Sigma`` (defaults to I).
    """

    coefs: list[np.ndarray]
    intercept: np.ndarray | None = None
    noise_cov: np.ndarray | None = None
    _chol: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.coefs = [np.asarray(A, dtype=float) for A in self.coefs]
        if not self.coefs:
            raise ValueError("need at least one coefficient matrix")
        p = self.coefs[0].shape[0]
        for A in self.coefs:
            if A.shape != (p, p):
                raise ValueError(f"all A_j must be ({p}, {p}); got {A.shape}")
        if self.intercept is None:
            self.intercept = np.zeros(p)
        else:
            self.intercept = np.asarray(self.intercept, dtype=float)
            if self.intercept.shape != (p,):
                raise ValueError(f"intercept must be ({p},)")
        if self.noise_cov is None:
            self.noise_cov = np.eye(p)
        else:
            self.noise_cov = np.asarray(self.noise_cov, dtype=float)
            if self.noise_cov.shape != (p, p):
                raise ValueError(f"noise_cov must be ({p}, {p})")
        self._chol = np.linalg.cholesky(self.noise_cov)

    @property
    def p(self) -> int:
        """Process dimension (number of network nodes)."""
        return self.coefs[0].shape[0]

    @property
    def order(self) -> int:
        """Autoregressive order ``d``."""
        return len(self.coefs)

    def stable(self) -> bool:
        """Whether the process satisfies the stability constraint."""
        return is_stable(self.coefs)

    def simulate(
        self,
        n_samples: int,
        rng: np.random.Generator,
        *,
        burn_in: int = 200,
        initial: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` consecutive observations.

        Parameters
        ----------
        n_samples:
            Length of the returned series.
        rng:
            Source of randomness.
        burn_in:
            Extra leading steps discarded so the series starts near
            stationarity.
        initial:
            Optional ``(d, p)`` history to start from (defaults to
            zeros).

        Returns
        -------
        numpy.ndarray
            ``(n_samples, p)`` array, row ``t`` = ``X_t``.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if burn_in < 0:
            raise ValueError("burn_in must be >= 0")
        p, d = self.p, self.order
        total = n_samples + burn_in
        hist = np.zeros((d, p)) if initial is None else np.asarray(initial, float)
        if hist.shape != (d, p):
            raise ValueError(f"initial must be ({d}, {p})")
        out = np.empty((total, p))
        noise = rng.standard_normal((total, p)) @ self._chol.T
        window = hist.copy()  # window[0] = X_{t-1}, window[1] = X_{t-2}, ...
        for t in range(total):
            x = self.intercept + noise[t]
            for j in range(d):
                x = x + self.coefs[j] @ window[j]
            out[t] = x
            if d > 0:
                window = np.vstack([x, window[:-1]])
        return out[burn_in:]

    def support(self, *, tol: float = 0.0) -> np.ndarray:
        """Boolean ``(d, p, p)`` mask of (strictly) nonzero coefficients."""
        return np.stack([np.abs(A) > tol for A in self.coefs])
