"""Incremental lag matrices over a sliding sample window.

:class:`SlidingLagWindow` is the streaming counterpart of
:func:`repro.var.lag.build_lag_matrices` (paper eqs. 7-8): it holds the
last ``capacity`` raw samples of a ``p``-dimensional series and
maintains, under append + evict,

* the target matrix ``Y`` and lagged design ``X`` — as rings of
  precomputed rows, so materializing the canonical ``(Y, X)`` pair is a
  reorder of stored bytes and therefore **bitwise identical** to a full
  ``build_lag_matrices`` rebuild of the same raw window;
* the Gram product ``X'X`` and cross product ``X'Y`` — by rank-one
  row updates (add the new row's outer product, subtract the evicted
  row's), so they track the rebuilt products to floating-point
  tolerance rather than bitwise; :meth:`rebuild_products` resets the
  accumulated drift exactly when a consumer needs it.

Each appended sample costs ``O(dp)`` to form its lag row plus
``O((dp)^2)`` for the product updates — independent of the window
length, which is the whole point: a full rebuild costs ``O(m (dp)^2)``
for ``m`` rows (gated ≥5x slower in ``benchmarks/bench_stream.py``).

The downstream re-fit (:mod:`repro.stream.refit`) feeds
:meth:`series` to :class:`repro.engine.plans.VarPlan`, which rebuilds
its own lag matrices and λ grid from the raw window — so nothing in
the fitted numbers ever depends on the incrementally maintained
products.  ``X'Y`` still earns its keep as a free λ-grid preview
(:meth:`lambda_max_preview`) and as the window-equivalence witness in
the tests.
"""

from __future__ import annotations

import numpy as np

from repro.var.lag import build_lag_matrices

__all__ = ["SlidingLagWindow"]


class SlidingLagWindow:
    """Sliding window of raw samples with incremental ``(Y, X)`` and products.

    Parameters
    ----------
    p:
        Series dimension (columns of each sample).
    order:
        VAR order ``d``; each lag row concatenates the ``d`` previous
        samples (eq. 8).
    capacity:
        Maximum raw samples retained; appending beyond it evicts the
        oldest sample (and with it the oldest lag row).  Must exceed
        ``order`` so at least one lag row can form.
    add_intercept:
        Prepend a ones column to each lag row, mirroring
        ``build_lag_matrices(add_intercept=True)``.
    """

    def __init__(
        self,
        p: int,
        order: int,
        capacity: int,
        *,
        add_intercept: bool = False,
    ) -> None:
        if p < 1:
            raise ValueError("p must be >= 1")
        if order < 1:
            raise ValueError("order must be >= 1")
        if capacity <= order:
            raise ValueError(
                f"capacity must exceed order: capacity={capacity}, d={order}"
            )
        self.p = p
        self.order = order
        self.capacity = capacity
        self.add_intercept = add_intercept
        self.kdim = (1 if add_intercept else 0) + order * p
        self._max_rows = capacity - order

        # Raw-sample ring (ascending time) and lag-row rings (ascending
        # target time).  ``_rstart``/``_start`` index the oldest entry.
        self._raw = np.empty((capacity, p))
        self._rstart = 0
        self._rcount = 0
        self._y = np.empty((self._max_rows, p))
        self._x = np.empty((self._max_rows, self.kdim))
        self._start = 0
        self._count = 0

        self._gram = np.zeros((self.kdim, self.kdim))
        self._cross = np.zeros((self.kdim, p))
        self.total_appended = 0
        self.total_evicted = 0

    # ------------------------------------------------------------ sizing
    def __len__(self) -> int:
        """Number of lag rows currently held (``m`` of eqs. 7-8)."""
        return self._count

    @property
    def n_samples(self) -> int:
        """Raw samples currently held."""
        return self._rcount

    @property
    def full(self) -> bool:
        """Whether the next append will evict the oldest sample."""
        return self._rcount == self.capacity

    @property
    def ready(self) -> bool:
        """Whether at least one lag row exists (``n_samples > order``)."""
        return self._count > 0

    # ----------------------------------------------------------- updates
    def append(self, row: np.ndarray) -> None:
        """Add one sample; evicts the oldest first when at capacity."""
        row = np.asarray(row, dtype=float)
        if row.shape != (self.p,):
            raise ValueError(f"row must have shape ({self.p},), got {row.shape}")
        if self._rcount == self.capacity:
            self.evict()
        if self._rcount >= self.order:
            self._push_lag_row(row)
        self._raw[(self._rstart + self._rcount) % self.capacity] = row
        self._rcount += 1
        self.total_appended += 1

    def extend(self, rows: np.ndarray) -> None:
        """Append each row of an ``(n, p)`` block in order."""
        for row in np.asarray(rows, dtype=float):
            self.append(row)

    def evict(self) -> None:
        """Drop the oldest sample (and the lag row it anchors, if any)."""
        if self._rcount == 0:
            raise ValueError("window is empty")
        if self._count > 0:
            # The oldest lag row regresses on the oldest ``d`` samples,
            # so dropping the oldest sample invalidates exactly it.
            x = self._x[self._start]
            y = self._y[self._start]
            self._gram -= np.outer(x, x)
            self._cross -= np.outer(x, y)
            self._start = (self._start + 1) % self._max_rows
            self._count -= 1
        self._rstart = (self._rstart + 1) % self.capacity
        self._rcount -= 1
        self.total_evicted += 1

    def _push_lag_row(self, target: np.ndarray) -> None:
        """Form the lag row for ``target`` from the last ``d`` samples."""
        x = np.empty(self.kdim)
        off = 0
        if self.add_intercept:
            x[0] = 1.0
            off = 1
        p = self.p
        for j in range(1, self.order + 1):
            # Lag-j regressor is the sample j steps back (eq. 8).
            idx = (self._rstart + self._rcount - j) % self.capacity
            x[off + (j - 1) * p : off + j * p] = self._raw[idx]
        pos = (self._start + self._count) % self._max_rows
        self._x[pos] = x
        self._y[pos] = target
        self._count += 1
        self._gram += np.outer(x, x)
        self._cross += np.outer(x, target)

    # ------------------------------------------------------------- views
    def series(self) -> np.ndarray:
        """The raw window as an ascending-time ``(n_samples, p)`` copy."""
        idx = (self._rstart + np.arange(self._rcount)) % self.capacity
        return self._raw[idx].copy()

    def matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Canonical ``(Y, X)`` — bitwise what ``build_lag_matrices`` gives.

        Rows come out in the paper's descending-target-time order
        (row ``r`` targets time ``N - r``), i.e. the stored ascending
        rings reversed.
        """
        if self._count == 0:
            raise ValueError("no lag rows yet: need n_samples > order")
        idx = (self._start + np.arange(self._count - 1, -1, -1)) % self._max_rows
        return (
            np.ascontiguousarray(self._y[idx]),
            np.ascontiguousarray(self._x[idx]),
        )

    def gram(self) -> np.ndarray:
        """Incrementally maintained ``X'X`` (copy)."""
        return self._gram.copy()

    def cross(self) -> np.ndarray:
        """Incrementally maintained ``X'Y`` (copy)."""
        return self._cross.copy()

    def lambda_max_preview(self) -> float:
        """``2 max|X'Y|`` — the λ-grid anchor VarPlan derives, for free."""
        if self._count == 0:
            raise ValueError("no lag rows yet: need n_samples > order")
        return 2.0 * float(np.max(np.abs(self._cross)))

    def rebuild_products(self) -> None:
        """Recompute ``X'X`` / ``X'Y`` exactly, zeroing accumulated drift."""
        if self._count == 0:
            self._gram = np.zeros((self.kdim, self.kdim))
            self._cross = np.zeros((self.kdim, self.p))
            return
        Y, X = self.matrices()
        self._gram = X.T @ X
        self._cross = X.T @ Y

    # ------------------------------------------------------- verification
    def check_against_rebuild(self) -> None:
        """Assert the invariants against a from-scratch rebuild (tests)."""
        Y, X = self.matrices()
        Yr, Xr = build_lag_matrices(
            self.series(), self.order, add_intercept=self.add_intercept
        )
        if not (np.array_equal(Y, Yr) and np.array_equal(X, Xr)):
            raise AssertionError("incremental (Y, X) diverged from rebuild")
        if not (
            np.allclose(self._gram, Xr.T @ Xr, atol=1e-8)
            and np.allclose(self._cross, Xr.T @ Yr, atol=1e-8)
        ):
            raise AssertionError("incremental products drifted beyond tolerance")
