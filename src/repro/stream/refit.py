"""Cadence-driven rolling UoI_VAR re-fits with warm-started chains.

:class:`RollingRefitter` is the consumer half of the streaming
pipeline: ticks go in one at a time (:meth:`RollingRefitter.offer`),
and every ``cadence`` ticks — once the sliding window is primed — it
builds a fresh :class:`repro.engine.plans.VarPlan` over the window's
raw series and runs it on any engine backend.  Two things make this a
*streaming* fit rather than a loop of batch fits:

* **Warm-start chains.**  Each fit harvests its selection λ-paths
  (``keep_paths=True``) and seeds the next window's chains from them
  (``warm_start=``).  Seeding moves solver starting points only; every
  solve still runs to the configured tolerances, so each window's
  supports and coefficients are **bitwise identical** to an
  independent cold batch fit of the same window (``verify=True`` and
  ``tests/test_stream_refit.py`` check exactly this).  Only the
  iteration cost changes (gated ≥1.5x in
  ``benchmarks/bench_stream.py``).

  The identity rests on every solve actually *reaching* its tolerance:
  a solve that exhausts ``lasso.max_iter`` stops at a start-dependent
  point instead.  The refitter therefore watches the solver's
  ``cd.nonconverged`` telemetry counter per window and reports budget
  exhaustion on :attr:`WindowFit.nonconverged` (plus the
  ``stream.nonconverged_solves`` counter) so a too-small sweep budget
  is a visible, diagnosable condition rather than a silent divergence.
* **Recovery.**  A window whose run dies (worker killed, transport
  torn down) is retried with a freshly built plan, up to
  ``max_retries`` times; because plans are deterministic, a retried
  window produces the same numbers as an undisturbed one.

Per-window results come back as :class:`WindowFit` records carrying
the fitted :class:`~repro.engine.plan.PlanOutputs` plus the network
diff against the previous window; :class:`StreamOutputs` collects them
and quacks like a batch estimator (``coef``/``supports``/… delegate to
the newest window) so service-layer result flattening works unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.core.config import UoIVarConfig
from repro.engine import VarPlan, default_executor, run_plan
from repro.engine.plan import PlanOutputs
from repro.stream.diff import (
    DiffLog,
    NetworkDiff,
    diff_networks,
    edge_set,
    record_diff,
)
from repro.stream.window import SlidingLagWindow
from repro.telemetry.recorder import (
    Recorder,
    count as _tcount,
    current_recorder,
    span as _tspan,
    use_recorder,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executors import Executor

__all__ = [
    "StreamConfig",
    "WindowFit",
    "StreamOutputs",
    "RollingRefitter",
    "run_rolling",
    "expected_windows",
]


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of a rolling stream fit.

    Attributes
    ----------
    var:
        The per-window UoI_VAR hyperparameters.  ``solver="cd"`` is
        the recommended streaming solver: it converges to exact zeros
        at tight tolerance, which is what makes the warm/cold identity
        cheap to guarantee.
    window:
        Sliding-window capacity in raw samples.
    cadence:
        Ticks between re-fits once the window is primed.
    min_samples:
        Samples required before the first fit; ``None`` means a full
        window (the default — every fitted window then has identical
        shape, which keeps warm-start paths directly transplantable).
    warm:
        Seed each window's selection chains from the previous
        window's harvested λ-paths.  Changes cost, never results.
    chain_seeding:
        Seeding mode for chains without a warm-start path: ``"path"``
        (default) or ``"none"`` (cold chains; the baseline leg of
        ``benchmarks/bench_stream.py``).
    max_windows:
        Stop :func:`run_rolling` after this many fitted windows
        (``None`` = drain the source).
    edge_tol:
        ``|coefficient|`` threshold for an edge to count in diffs.
    verify:
        After every window, run an independent cold serial batch fit
        of the same raw window and assert bitwise-identical supports
        and coefficients.  Expensive; for tests and audits.
    max_retries:
        Re-fit attempts per window after a failure before giving up.
    """

    var: UoIVarConfig = field(default_factory=UoIVarConfig)
    window: int = 120
    cadence: int = 5
    min_samples: int | None = None
    warm: bool = True
    chain_seeding: str = "path"
    max_windows: int | None = None
    edge_tol: float = 0.0
    verify: bool = False
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.window <= self.var.order:
            raise ValueError(
                f"window must exceed VAR order: {self.window} <= {self.var.order}"
            )
        if self.cadence < 1:
            raise ValueError("cadence must be >= 1")
        if self.min_samples is not None and not (
            self.var.order < self.min_samples <= self.window
        ):
            raise ValueError(
                "min_samples must lie in (order, window]"
            )
        if self.chain_seeding not in ("path", "none"):
            raise ValueError(
                f"unknown chain_seeding mode {self.chain_seeding!r}"
            )
        if self.max_windows is not None and self.max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


def expected_windows(config: StreamConfig, n_ticks: int) -> int:
    """Windows a rolling run over ``n_ticks`` ticks will fit.

    Mirrors :meth:`RollingRefitter.offer`'s cadence: the first fit at
    ``min_samples`` ticks (a full window by default), one more every
    ``cadence`` ticks after that, capped at ``max_windows``.  The
    service layer uses this as a stream job's progress total.
    """
    if n_ticks < 0:
        raise ValueError("n_ticks must be >= 0")
    min_samples = (
        config.window if config.min_samples is None else config.min_samples
    )
    if n_ticks < min_samples:
        return 0
    n = 1 + (n_ticks - min_samples) // config.cadence
    if config.max_windows is not None:
        n = min(n, config.max_windows)
    return n


@dataclass
class WindowFit:
    """One fitted window of the stream.

    ``t_end`` is the stream tick count when the window was fit (the
    newest sample's 1-based position in the stream); ``retries`` is
    how many failed attempts preceded the successful one (0 for an
    undisturbed window); ``warm`` records whether warm-start paths
    from the previous window actually seeded this one.

    ``nonconverged`` counts solver calls in this window's fit that
    exhausted their iteration budget instead of reaching tolerance
    (from the ``cd.nonconverged`` telemetry counter).  Nonzero means
    the warm/cold identity is no longer guaranteed for this window —
    raise ``lasso.max_iter``.  Best-effort: solves running in worker
    *processes* (multiprocess/elastic backends) are uninstrumented, so
    only in-process backends feed this field; ``verify=True`` is the
    backend-independent hard check.
    """

    index: int
    t_end: int
    outputs: PlanOutputs
    seconds: float
    warm: bool
    retries: int = 0
    nonconverged: int = 0
    diff: NetworkDiff | None = None


class StreamOutputs:
    """All fitted windows of a rolling run, batch-estimator flavored.

    ``coef``/``supports``/``losses``/``winners``/``lambdas`` delegate
    to the newest window so anything written against
    :class:`~repro.engine.plan.PlanOutputs` (the service layer's
    result flattening, notably) consumes a stream result unchanged;
    ``extra`` additionally carries the per-window stability/drift/edge
    traces that are the stream's own signal.
    """

    def __init__(self, windows: list[WindowFit], p: int, order: int) -> None:
        if not windows:
            raise ValueError("no windows were fit (stream ended before priming)")
        self.windows = windows
        self.p = p
        self.order = order

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def final(self) -> WindowFit:
        return self.windows[-1]

    @property
    def coef(self) -> np.ndarray:
        return self.final.outputs.coef

    @property
    def supports(self) -> np.ndarray:
        return self.final.outputs.supports

    @property
    def losses(self) -> np.ndarray:
        return self.final.outputs.losses

    @property
    def winners(self) -> np.ndarray:
        return self.final.outputs.winners

    @property
    def lambdas(self) -> np.ndarray:
        return self.final.outputs.lambdas

    @property
    def extra(self) -> dict[str, Any]:
        merged = dict(self.final.outputs.extra)
        diffs = [w.diff for w in self.windows if w.diff is not None]
        merged["stream_t_end"] = np.array([w.t_end for w in self.windows])
        merged["stream_seconds"] = np.array([w.seconds for w in self.windows])
        merged["stream_retries"] = np.array([w.retries for w in self.windows])
        merged["stream_nonconverged"] = np.array(
            [w.nonconverged for w in self.windows]
        )
        merged["stream_stability"] = np.array([d.stability for d in diffs])
        merged["stream_drift"] = np.array([d.drift for d in diffs])
        merged["stream_edges"] = np.array(
            [d.n_edges_cur for d in diffs], dtype=float
        )
        return merged


class RollingRefitter:
    """Feed ticks in, get :class:`WindowFit` records out at cadence.

    Parameters
    ----------
    config:
        The stream configuration.
    p:
        Series dimension.
    executor:
        Engine backend for the per-window runs; ``None`` follows the
        process default (``REPRO_ENGINE_BACKEND``).
    diff_log:
        Optional :class:`~repro.stream.diff.DiffLog` receiving one
        JSONL event per fitted window.
    on_window:
        Optional callback invoked with each :class:`WindowFit`.
    """

    def __init__(
        self,
        config: StreamConfig,
        p: int,
        *,
        executor: "Executor | None" = None,
        diff_log: DiffLog | None = None,
        on_window: Callable[[WindowFit], None] | None = None,
    ) -> None:
        self.config = config
        self.p = p
        self.executor = executor
        self.diff_log = diff_log
        self.on_window = on_window
        self.window = SlidingLagWindow(
            p,
            config.var.order,
            config.window,
            add_intercept=config.var.fit_intercept,
        )
        self.windows: list[WindowFit] = []
        self.ticks = 0
        self._since_fit = 0
        self._primed = False
        self._min_samples = (
            config.window if config.min_samples is None else config.min_samples
        )
        # Previous window's harvested selection λ-paths + coefficients.
        self._prev_paths: dict[int, np.ndarray] | None = None
        self._prev_coef: np.ndarray | None = None

    # ----------------------------------------------------------- ingest
    def offer(self, row: np.ndarray) -> WindowFit | None:
        """Consume one tick; returns a :class:`WindowFit` on fit ticks."""
        self.window.append(row)
        self.ticks += 1
        _tcount("stream.ticks")
        if not self._primed:
            if self.window.n_samples < self._min_samples:
                return None
            self._primed = True
        else:
            self._since_fit += 1
            if self._since_fit < self.config.cadence:
                return None
        self._since_fit = 0
        return self._refit()

    def drain(self, source: Iterable[np.ndarray]) -> list[WindowFit]:
        """Consume ticks until the source ends or ``max_windows`` fit."""
        limit = self.config.max_windows
        fits: list[WindowFit] = []
        for row in source:
            fit = self.offer(row)
            if fit is not None:
                fits.append(fit)
                if limit is not None and len(self.windows) >= limit:
                    break
        return fits

    # ------------------------------------------------------------ refit
    def _build_plan(self, series: np.ndarray, *, warm: bool) -> VarPlan:
        return VarPlan(
            self.config.var,
            series,
            warm_start=self._prev_paths if warm else None,
            keep_paths=self.config.warm,
            chain_seeding=self.config.chain_seeding,
        )

    def _refit(self) -> WindowFit:
        index = len(self.windows)
        series = self.window.series()
        warm = self.config.warm and self._prev_paths is not None
        executor = self.executor if self.executor is not None else default_executor()
        retries = 0
        start = time.perf_counter()
        with _tspan(
            f"stream.window/{index}",
            "computation",
            window=index,
            t_end=self.ticks,
            warm=warm,
            m=len(self.window),
        ):
            while True:
                # A fresh plan per attempt: plans are single-use (they
                # accumulate reduced state), and rebuilding is what
                # makes a retried window bitwise equal to a clean one.
                plan = self._build_plan(series, warm=warm)
                # Probe the solver's nonconvergence counter across this
                # attempt.  Piggybacks on the caller's recorder when one
                # is installed; otherwise a private recorder keeps the
                # check always-on for in-process backends.
                probe = current_recorder()
                owns_probe = probe is None
                if owns_probe:
                    probe = Recorder()
                before = probe.counter_values().get("cd.nonconverged", 0.0)
                try:
                    if owns_probe:
                        with use_recorder(probe):
                            outputs = run_plan(plan, executor)
                    else:
                        outputs = run_plan(plan, executor)
                    break
                except Exception:
                    retries += 1
                    _tcount("stream.recoveries")
                    if retries > self.config.max_retries:
                        raise
        seconds = time.perf_counter() - start
        _tcount("stream.refits")
        nonconverged = int(
            probe.counter_values().get("cd.nonconverged", 0.0) - before
        )
        if nonconverged:
            _tcount("stream.nonconverged_solves", nonconverged)

        if self.config.verify:
            self._verify_against_cold(series, outputs, nonconverged)

        diff: NetworkDiff | None = None
        if self._prev_coef is not None:
            diff = diff_networks(
                self._prev_coef,
                outputs.coef,
                self.p,
                self.config.var.order,
                has_intercept=self.config.var.fit_intercept,
                tol=self.config.edge_tol,
            )
            record_diff(diff)
        if self.diff_log is not None:
            self.diff_log.emit(
                index,
                diff,
                edges=edge_set(
                    outputs.coef,
                    self.p,
                    self.config.var.order,
                    has_intercept=self.config.var.fit_intercept,
                    tol=self.config.edge_tol,
                ),
                t_end=self.ticks,
                seconds=seconds,
                warm=warm,
                retries=retries,
                nonconverged=nonconverged,
            )

        if self.config.warm:
            self._prev_paths = plan.selection_paths or None
        self._prev_coef = np.array(outputs.coef, copy=True)

        fit = WindowFit(
            index=index,
            t_end=self.ticks,
            outputs=outputs,
            seconds=seconds,
            warm=warm,
            retries=retries,
            nonconverged=nonconverged,
            diff=diff,
        )
        self.windows.append(fit)
        if self.on_window is not None:
            self.on_window(fit)
        return fit

    def _verify_against_cold(
        self, series: np.ndarray, outputs: PlanOutputs, nonconverged: int
    ) -> None:
        """Assert the streaming fit == an independent cold serial fit."""
        from repro.engine import SerialExecutor

        cold = run_plan(VarPlan(self.config.var, series), SerialExecutor())
        hint = (
            f" ({nonconverged} solve(s) exhausted lasso.max_iter before"
            " reaching tolerance — warm/cold identity requires converged"
            " solves; raise the sweep budget)"
            if nonconverged
            else ""
        )
        if not np.array_equal(outputs.supports, cold.supports):
            raise AssertionError(
                "warm-started window supports diverged from cold batch fit"
                + hint
            )
        if not np.array_equal(outputs.coef, cold.coef):
            raise AssertionError(
                "warm-started window coefficients diverged from cold batch fit"
                + hint
            )

    def finalize(self) -> StreamOutputs:
        """Bundle all fitted windows (raises if none were fit)."""
        return StreamOutputs(self.windows, self.p, self.config.var.order)


def run_rolling(
    source: Iterable[np.ndarray],
    config: StreamConfig,
    *,
    p: int | None = None,
    executor: "Executor | None" = None,
    diff_log: DiffLog | None = None,
    on_window: Callable[[WindowFit], None] | None = None,
) -> StreamOutputs:
    """Drive a rolling fit over ``source`` and return its windows.

    ``source`` is any iterable of ``(p,)`` samples — a dataset
    ``iter_ticks`` generator, an :class:`~repro.stream.ingest.Ingestor`
    drain, or a plain array's rows.  ``p`` is inferred from the first
    tick when omitted.  Stops at ``config.max_windows`` fitted windows
    or when the source ends, whichever is first.
    """
    it = iter(source)
    if p is None:
        try:
            first = np.asarray(next(it), dtype=float)
        except StopIteration:
            raise ValueError("empty stream source") from None
        p = int(first.shape[0])

        def _chain() -> Iterable[np.ndarray]:
            yield first
            yield from it

        rows: Iterable[np.ndarray] = _chain()
    else:
        rows = it
    refitter = RollingRefitter(
        config, p, executor=executor, diff_log=diff_log, on_window=on_window
    )
    refitter.drain(rows)
    return refitter.finalize()
