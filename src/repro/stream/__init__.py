"""repro.stream — online Granger networks over live data.

The batch pipeline assumes the whole series is on disk before the lag
rearrangement (eqs. 7-8) begins.  This package turns the platform into
a rolling-Granger-graph server: ticks arrive (:mod:`.ingest`), a
sliding window maintains the lag matrices incrementally
(:mod:`.window`), a cadence-driven loop re-fits UoI_VAR per window
with warm starts seeded from the previous window (:mod:`.refit`), and
consecutive networks are diffed into change events (:mod:`.diff`).
Warm starts change cost, never results: every window's supports and
coefficients are bitwise what an independent cold batch fit of the
same window produces.  See ``docs/streaming.md``.
"""

from repro.stream.window import SlidingLagWindow
from repro.stream.diff import NetworkDiff, DiffLog, diff_networks, edge_set
from repro.stream.ingest import (
    DoubleBuffer,
    Ingestor,
    SpikeRateSource,
    FinanceReplaySource,
    SocketSource,
    serve_ticks,
)
from repro.stream.refit import (
    StreamConfig,
    WindowFit,
    StreamOutputs,
    RollingRefitter,
    expected_windows,
    run_rolling,
)

__all__ = [
    "SlidingLagWindow",
    "NetworkDiff",
    "DiffLog",
    "diff_networks",
    "edge_set",
    "DoubleBuffer",
    "Ingestor",
    "SpikeRateSource",
    "FinanceReplaySource",
    "SocketSource",
    "serve_ticks",
    "StreamConfig",
    "WindowFit",
    "StreamOutputs",
    "RollingRefitter",
    "expected_windows",
    "run_rolling",
]
