"""Tick sources and the bounded exchange between them and the solver.

Ingestion and solving run at wildly different rates: a tick is
microseconds, a UoI_VAR re-fit is seconds.  :class:`DoubleBuffer`
decouples them with a classic double-buffered exchange — the producer
appends to a *back* buffer while the consumer owns the *front*;
:meth:`DoubleBuffer.swap` exchanges the two in O(1) under the lock, so
the consumer takes a whole batch of pending ticks without ever holding
the producer's lock for more than a pointer swap.  The back buffer is
bounded: when it fills, the ``"block"`` policy exerts backpressure on
the producer (losslessness for replay sources) and the ``"drop"``
policy sheds the oldest pending tick (boundedness for live sources);
either way ingestion never blocks *solving*.

Three tick sources cover the paper's two data regimes plus a network
path:

* :class:`SpikeRateSource` — the neuro regime: a latent sparse stable
  VAR (:func:`repro.datasets.var_synthetic.iter_ticks`) driving
  per-electrode firing rates through the same log-link
  :mod:`repro.datasets.neuro` uses.
* :class:`FinanceReplaySource` — replays weekly first-differences of a
  synthetic S&P-style closing-price panel
  (:func:`repro.datasets.finance.iter_ticks`).
* :class:`SocketSource` — line-JSON ticks over a socket speaking the
  :mod:`repro.wire` codec (``{"tick": <encoded array>}`` frames,
  ``{"end": true}`` terminator); :func:`serve_ticks` is the matching
  one-shot server.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterable, Iterator

import numpy as np

from repro.analysis.dynamic import instrumented_lock
from repro.datasets import finance, var_synthetic
from repro.telemetry.recorder import count as _tcount
from repro.wire import LineChannel, decode_array, encode_array

__all__ = [
    "DoubleBuffer",
    "Ingestor",
    "SpikeRateSource",
    "FinanceReplaySource",
    "SocketSource",
    "serve_ticks",
]


class DoubleBuffer:
    """Bounded double-buffered tick exchange (one producer, one consumer).

    Parameters
    ----------
    capacity:
        Maximum ticks pending in the back buffer.
    policy:
        ``"block"`` — a full back buffer blocks :meth:`put` until the
        consumer swaps (lossless backpressure); ``"drop"`` — a full
        back buffer sheds its *oldest* pending tick to admit the new
        one (bounded loss for live sources; counted in ``dropped`` and
        the ``stream.dropped_ticks`` telemetry counter).
    """

    def __init__(self, capacity: int = 1024, *, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in ("block", "drop"):
            raise ValueError(f"policy must be 'block' or 'drop', got {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self._back: list[np.ndarray] = []
        self._lock = instrumented_lock("stream.ingest.buffer")
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.produced = 0
        self.dropped = 0

    # --------------------------------------------------------- producer
    def put(self, row: np.ndarray) -> None:
        """Add one tick (blocks or sheds per the policy when full)."""
        with self._not_full:
            if self._closed:
                raise ValueError("buffer is closed")
            if self.policy == "block":
                while len(self._back) >= self.capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    raise ValueError("buffer is closed")
            elif len(self._back) >= self.capacity:
                self._back.pop(0)
                self.dropped += 1
                _tcount("stream.dropped_ticks")
            self._back.append(row)
            self.produced += 1

    def close(self) -> None:
        """Mark the stream ended; wakes any blocked producer."""
        with self._not_full:
            self._closed = True
            self._not_full.notify_all()

    # --------------------------------------------------------- consumer
    def swap(self) -> list[np.ndarray]:
        """Take every pending tick in O(1); the producer never waits on
        the consumer *processing* them, only on the next swap."""
        with self._not_full:
            front, self._back = self._back, []
            if front:
                self._not_full.notify_all()
            return front

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending(self) -> int:
        with self._lock:
            return len(self._back)

    def drain(self, poll_interval: float = 0.002) -> Iterator[np.ndarray]:
        """Yield ticks in order until the buffer is closed and empty."""
        while True:
            batch = self.swap()
            if batch:
                yield from batch
                continue
            if self.closed:
                # One final swap closes the close/put race: a tick
                # admitted just before close() must still come out.
                yield from self.swap()
                return
            ended = threading.Event()
            ended.wait(poll_interval)


class Ingestor(threading.Thread):
    """Daemon thread pumping a tick source into a :class:`DoubleBuffer`.

    Ends (and closes the buffer) when the source is exhausted; a
    source exception is captured in ``error`` and re-raised by
    :meth:`check`.
    """

    def __init__(
        self, source: Iterable[np.ndarray], buffer: DoubleBuffer
    ) -> None:
        super().__init__(daemon=True, name="repro-stream-ingest")
        self.source = source
        self.buffer = buffer
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            for row in self.source:
                self.buffer.put(np.asarray(row, dtype=float))
        except BaseException as exc:  # noqa: BLE001 - reported via check()
            self.error = exc
        finally:
            self.buffer.close()

    def check(self) -> None:
        """Re-raise the ingest thread's exception, if it died on one."""
        if self.error is not None:
            raise RuntimeError("stream ingestion failed") from self.error


# ---------------------------------------------------------------------------
# tick sources
# ---------------------------------------------------------------------------
class SpikeRateSource:
    """Synthetic neuro regime: latent sparse VAR -> firing rates.

    Yields ``(p,)`` per-electrode firing-rate vectors,
    ``base_rate * exp(clip(latent, -3, 3))`` — the log-link of
    :func:`repro.datasets.neuro.make_spike_counts` over the bitwise-
    reproducible latent stream of
    :func:`repro.datasets.var_synthetic.iter_ticks`.  Infinite; bound
    it with ``max_ticks`` or stop consuming.
    """

    def __init__(
        self,
        p: int,
        *,
        order: int = 1,
        density: float = 0.1,
        coupling_radius: float = 0.6,
        base_rate: float = 2.0,
        noise_std: float = 0.2,
        seed: int = 0,
        max_ticks: int | None = None,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        self.p = p
        self.order = order
        self.density = density
        self.coupling_radius = coupling_radius
        self.base_rate = base_rate
        self.noise_std = noise_std
        self.seed = seed
        self.max_ticks = max_ticks

    def __iter__(self) -> Iterator[np.ndarray]:
        latents = var_synthetic.iter_ticks(
            self.p,
            order=self.order,
            density=self.density,
            target_radius=self.coupling_radius,
            noise_std=self.noise_std,
            seed=self.seed,
        )
        for i, latent in enumerate(latents):
            if self.max_ticks is not None and i >= self.max_ticks:
                return
            yield self.base_rate * np.exp(np.clip(latent, -3.0, 3.0))


class FinanceReplaySource:
    """Finance regime: replay weekly first-differenced closes.

    Finite — yields exactly the rows of
    :func:`repro.datasets.finance.iter_ticks` (one per completed week
    after the first), in panel order, bitwise equal to the batch
    pipeline's design matrix rows.
    """

    def __init__(
        self,
        n_companies: int = 50,
        *,
        n_days: int = 504,
        seed: int = 0,
        **panel_kwargs: float,
    ) -> None:
        self.p = n_companies
        self.n_companies = n_companies
        self.n_days = n_days
        self.seed = seed
        self.panel_kwargs = panel_kwargs

    def __iter__(self) -> Iterator[np.ndarray]:
        return finance.iter_ticks(
            self.n_companies,
            n_days=self.n_days,
            seed=self.seed,
            **self.panel_kwargs,
        )


class SocketSource:
    """Ticks from a line-JSON socket peer speaking :mod:`repro.wire`.

    Protocol: the server sends ``{"tick": <encode_array(row)>}`` frames
    and finishes with ``{"end": true}``; EOF without the terminator is
    treated as a clean end too (a live feed going away is a stream
    ending, not an error).  Iterating consumes the channel once.
    """

    def __init__(self, channel: LineChannel, *, p: int | None = None) -> None:
        self.channel = channel
        self.p = p
        self.received = 0

    @classmethod
    def connect(cls, host: str, port: int, *, p: int | None = None) -> "SocketSource":
        return cls(LineChannel(socket.create_connection((host, port))), p=p)

    def __iter__(self) -> Iterator[np.ndarray]:
        try:
            while True:
                frame = self.channel.recv()
                if frame is None or frame.get("end"):
                    return
                if "tick" not in frame:
                    raise ValueError(f"unexpected stream frame: {sorted(frame)}")
                row = decode_array(frame["tick"]).astype(float, copy=False)
                if self.p is None:
                    self.p = int(row.shape[0])
                elif row.shape != (self.p,):
                    raise ValueError(
                        f"tick shape {row.shape} != ({self.p},)"
                    )
                self.received += 1
                yield row
        finally:
            self.channel.close()


def serve_ticks(
    source: Iterable[np.ndarray],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[tuple[str, int], threading.Thread]:
    """Serve ``source`` to one :class:`SocketSource` client.

    Binds, returns ``((host, port), server_thread)`` immediately; the
    daemon thread accepts a single client, streams every tick as a
    ``{"tick": ...}`` frame, sends the ``{"end": true}`` terminator and
    closes.  Enough server for demos and tests; a production feed
    would sit behind the same frame protocol.
    """
    listener = socket.create_server((host, port))
    addr = listener.getsockname()[:2]

    def _serve() -> None:
        try:
            conn, _ = listener.accept()
            channel = LineChannel(conn)
            try:
                for row in source:
                    channel.send({"tick": encode_array(np.asarray(row, dtype=float))})
                channel.send({"end": True})
            except BrokenPipeError:
                pass  # client went away; nothing to tell it
            finally:
                channel.close()
        finally:
            listener.close()

    thread = threading.Thread(target=_serve, daemon=True, name="repro-stream-serve")
    thread.start()
    return (addr[0], int(addr[1])), thread
