"""Network-change diagnostics between consecutive rolling windows.

A rolling UoI_VAR stream produces one Granger network per window.  The
interesting signal is usually not any single network but how the
network *moves*: which directed edges appeared or vanished, how much
the surviving coefficients drifted, and how stable the support is
window-over-window (Ruiz et al., arXiv:1908.11464, measure exactly
this stability for UoI_VAR supports).  :func:`diff_networks` computes
those diagnostics from two fitted coefficient vectors;
:class:`DiffLog` serializes them as JSONL events a ``repro stream
replay``/``diff`` invocation can re-render; :func:`record_diff` mirrors
the headline numbers onto telemetry counters/gauges so streaming runs
show up in the same manifests as batch runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.telemetry.recorder import count as _tcount, gauge as _tgauge
from repro.var.lag import partition_coefficients

__all__ = [
    "Edge",
    "NetworkDiff",
    "edge_set",
    "diff_networks",
    "record_diff",
    "DiffLog",
    "read_events",
]

#: A directed Granger edge: ``(lag, target, source)`` — source's value
#: ``lag`` steps back predicts target now (entry ``A_lag[target, source]``).
Edge = tuple[int, int, int]


def edge_set(
    vec_coef: np.ndarray,
    p: int,
    order: int,
    *,
    has_intercept: bool = False,
    tol: float = 0.0,
) -> frozenset[Edge]:
    """Directed edges of a fitted ``vec B`` with ``|weight| > tol``."""
    coefs, _ = partition_coefficients(
        vec_coef, p, order, has_intercept=has_intercept
    )
    edges: set[Edge] = set()
    for lag, A in enumerate(coefs, start=1):
        for i, j in zip(*np.nonzero(np.abs(A) > tol)):
            edges.add((lag, int(i), int(j)))
    return frozenset(edges)


@dataclass(frozen=True)
class NetworkDiff:
    """How the Granger network changed from one window to the next.

    Attributes
    ----------
    gained, lost:
        Sorted directed edges present only in the current (gained) or
        only in the previous (lost) network.
    drift:
        L2 norm of the coefficient change over all entries (the
        magnitude of network movement, including surviving edges).
    stability:
        Jaccard similarity of the two edge sets (1.0 = identical
        networks; defined as 1.0 when both are empty).
    n_edges_prev, n_edges_cur:
        Edge counts before and after.
    """

    gained: list[Edge] = field(default_factory=list)
    lost: list[Edge] = field(default_factory=list)
    drift: float = 0.0
    stability: float = 1.0
    n_edges_prev: int = 0
    n_edges_cur: int = 0


def diff_networks(
    prev_vec: np.ndarray,
    cur_vec: np.ndarray,
    p: int,
    order: int,
    *,
    has_intercept: bool = False,
    tol: float = 0.0,
) -> NetworkDiff:
    """Diff two consecutive windows' fitted ``vec B`` vectors."""
    prev_vec = np.asarray(prev_vec, dtype=float)
    cur_vec = np.asarray(cur_vec, dtype=float)
    if prev_vec.shape != cur_vec.shape:
        raise ValueError(
            f"coefficient shapes differ: {prev_vec.shape} vs {cur_vec.shape}"
        )
    prev = edge_set(prev_vec, p, order, has_intercept=has_intercept, tol=tol)
    cur = edge_set(cur_vec, p, order, has_intercept=has_intercept, tol=tol)
    union = prev | cur
    stability = 1.0 if not union else len(prev & cur) / len(union)
    return NetworkDiff(
        gained=sorted(cur - prev),
        lost=sorted(prev - cur),
        drift=float(np.linalg.norm(cur_vec - prev_vec)),
        stability=float(stability),
        n_edges_prev=len(prev),
        n_edges_cur=len(cur),
    )


def record_diff(diff: NetworkDiff) -> None:
    """Mirror a diff's headline numbers onto the current telemetry recorder."""
    _tcount("stream.edges_gained", len(diff.gained))
    _tcount("stream.edges_lost", len(diff.lost))
    _tgauge("stream.stability", diff.stability)
    _tgauge("stream.drift", diff.drift)
    _tgauge("stream.edges", diff.n_edges_cur)


class DiffLog:
    """Append-only JSONL event log of per-window stream diagnostics.

    One JSON object per line; each event carries the window index, the
    full current edge list (so any two recorded windows can be diffed
    offline, not just consecutive ones) and the :class:`NetworkDiff`
    fields.  ``repro stream replay`` and ``repro stream diff`` consume
    these files.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")

    def emit(
        self,
        window_index: int,
        diff: NetworkDiff | None,
        *,
        edges: frozenset[Edge] | None = None,
        **extra: object,
    ) -> dict:
        """Append one window event; returns the event dict."""
        event: dict = {"window": int(window_index)}
        if edges is not None:
            event["edges"] = sorted(list(e) for e in edges)
        if diff is not None:
            d = asdict(diff)
            d["gained"] = [list(e) for e in diff.gained]
            d["lost"] = [list(e) for e in diff.lost]
            event.update(d)
        event.update(extra)
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()
        return event

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DiffLog":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


def read_events(path: str | Path) -> list[dict]:
    """Load a :class:`DiffLog` JSONL file back into event dicts."""
    events = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                events.append(json.loads(line))
    return events
