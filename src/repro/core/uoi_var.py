"""Serial UoI_VAR estimator (paper Algorithm 2).

UoI_LASSO adapted to VAR(d) inference:

* the series is rearranged into the lag matrices ``(Y, X)`` of
  eqs. 7-8 and, conceptually, lifted to ``vec Y = (I ⊗ X) vec B``
  (eq. 9);
* bootstraps are *circular block bootstraps* over lag-matrix rows, so
  temporal dependence survives resampling;
* selection intersects supports of the lifted coefficient vector
  across bootstraps per λ (one shared λ across all output columns, as
  in the lifted formulation);
* estimation fits OLS per candidate support, scores total held-out
  prediction loss, picks one winner per bootstrap and averages;
* the averaged ``vec B`` is partitioned back into
  ``(A_1, ..., A_d)`` and ``mu`` (Algorithm 2 line 31).

Because the lifted design is block diagonal, the λ-path solves
decompose exactly into one LASSO per output column
(:func:`repro.linalg.kron.kron_lasso_columnwise`); this serial
implementation exploits that, while the distributed driver can also
run the materialized lifted problem through the distributed Kronecker
path — tests pin the two to the same answer.
"""

from __future__ import annotations

import numpy as np

from repro.core.bootstrap import block_train_eval, circular_block_bootstrap
from repro.core.config import UoIVarConfig
from repro.core.estimation import best_support_per_bootstrap, union_average
from repro.core.selection import intersect_supports
from repro.linalg.admm import LassoADMM
from repro.linalg.cd import lasso_cd, precompute_gram
from repro.linalg.ols import ols_on_support
from repro.resilience.checkpoint import CheckpointPlan, CheckpointSession
from repro.var.diagnostics import diagnose
from repro.var.forecast import forecast, forecast_intervals
from repro.var.granger import granger_digraph, network_summary
from repro.var.lag import build_lag_matrices, partition_coefficients

__all__ = ["UoIVar"]


class UoIVar:
    """Union-of-Intersections VAR(d) inference.

    Parameters
    ----------
    config:
        Full hyperparameter bundle; ``None`` uses defaults.
    **overrides:
        Keyword overrides applied to ``config`` (e.g.
        ``UoIVar(order=2)``).  Keys not on :class:`UoIVarConfig` are
        forwarded to the inner :class:`UoILassoConfig` (e.g.
        ``UoIVar(n_selection_bootstraps=40)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    coefs_:
        Fitted ``[A_1, ..., A_d]``.
    intercept_:
        Fitted ``mu`` (zeros unless ``fit_intercept``).
    vec_coef_:
        The averaged lifted coefficient vector ``vec B``.
    lambdas_, supports_, losses_, winners_:
        As in :class:`repro.core.uoi_lasso.UoILasso`, but over lifted
        coefficients (masks have length ``k * p``).
    """

    def __init__(self, config: UoIVarConfig | None = None, **overrides) -> None:
        config = config or UoIVarConfig()
        if overrides:
            outer = {
                k: v for k, v in overrides.items() if k in UoIVarConfig.__dataclass_fields__
            }
            inner = {k: v for k, v in overrides.items() if k not in outer}
            if inner:
                outer["lasso"] = config.lasso.with_(**inner)
            config = config.with_(**outer)
        self.config = config
        self.coefs_: list[np.ndarray] | None = None
        self.intercept_: np.ndarray | None = None
        self.vec_coef_: np.ndarray | None = None
        self.lambdas_: np.ndarray | None = None
        self.supports_: np.ndarray | None = None
        self.losses_: np.ndarray | None = None
        self.winners_: np.ndarray | None = None
        self.recovered_subproblems_: int = 0
        self.completed_subproblems_: int = 0
        self._p: int | None = None
        self._kdim: int | None = None

    # ------------------------------------------------------------------
    def _lambda_grid(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """λ grid anchored at the lifted problem's ``λ_max``.

        ``λ_max = 2 max |(I ⊗ X)' vec Y| = 2 max_c max_j |x_j' Y[:, c]|``.
        """
        cfg = self.config.lasso
        lmax = 2.0 * float(np.max(np.abs(X.T @ Y)))
        if lmax <= 0:
            lmax = 1.0
        return lmax * np.logspace(
            0.0, np.log10(cfg.lambda_min_ratio), num=cfg.n_lambdas
        )

    def _solve_path_columns(
        self, X: np.ndarray, Y: np.ndarray, lambdas: np.ndarray
    ) -> np.ndarray:
        """Lifted λ-path via exact column decomposition: ``(q, kdim * p)``.

        Column ``c``'s coefficients occupy the slice
        ``[c * kdim, (c+1) * kdim)`` of ``vec B``.
        """
        cfg = self.config.lasso
        q = len(lambdas)
        kdim, p = X.shape[1], Y.shape[1]
        out = np.empty((q, kdim * p))
        solver = None
        gram_cache = None
        if cfg.solver == "cd":
            # Covariance-update CD: one X'X per bootstrap serves every
            # column and penalty (the cd analogue of the shared ADMM
            # factorization).
            gram, _, col_sq = precompute_gram(X)
            gram_cache = (gram, col_sq)
        if cfg.solver == "admm":
            # One factorization serves every output column: the Gram
            # depends on X alone (see LassoADMM.set_response).
            solver = LassoADMM(
                X,
                Y[:, 0],
                rho=cfg.rho,
                max_iter=cfg.max_iter,
                abstol=cfg.abstol,
                reltol=cfg.reltol,
                adapt_rho=cfg.adapt_rho,
            )
        for c in range(p):
            yc = Y[:, c]
            beta = None
            if cfg.solver == "admm":
                solver.set_response(yc)
                for j, lam in enumerate(lambdas):
                    res = solver.solve(float(lam), beta0=beta)
                    beta = res.beta
                    out[j, c * kdim : (c + 1) * kdim] = beta
            else:
                triple = (gram_cache[0], X.T @ yc, gram_cache[1])
                for j, lam in enumerate(lambdas):
                    beta = lasso_cd(
                        X, yc, float(lam), beta0=beta,
                        max_iter=cfg.max_iter, tol=cfg.cd_tol,
                        precomputed=triple,
                    )
                    out[j, c * kdim : (c + 1) * kdim] = beta
        return out

    def _ols_family_columns(
        self, X: np.ndarray, Y: np.ndarray, family: np.ndarray
    ) -> np.ndarray:
        """Per-support OLS on the lifted problem, column-decomposed."""
        q = family.shape[0]
        kdim, p = X.shape[1], Y.shape[1]
        out = np.zeros((q, kdim * p))
        cache: dict[bytes, np.ndarray] = {}
        for j in range(q):
            for c in range(p):
                mask = family[j, c * kdim : (c + 1) * kdim]
                key = bytes([c]) + np.packbits(mask).tobytes()
                if key not in cache:
                    cache[key] = ols_on_support(X, Y[:, c], mask)
                out[j, c * kdim : (c + 1) * kdim] = cache[key]
        return out

    @staticmethod
    def _lifted_loss(X: np.ndarray, Y: np.ndarray, vec_beta: np.ndarray) -> float:
        """Mean squared error of ``vec B`` over all output columns."""
        kdim, p = X.shape[1], Y.shape[1]
        B = vec_beta.reshape((kdim, p), order="F")
        resid = Y - X @ B
        return float((resid**2).sum() / max(resid.size, 1))

    # ------------------------------------------------------------------
    def fit(
        self,
        series: np.ndarray,
        *,
        checkpoint: CheckpointPlan | None = None,
    ) -> "UoIVar":
        """Infer the VAR(d) model from an ``(N, p)`` series; returns ``self``.

        ``checkpoint=`` persists completed bootstraps (support masks in
        selection, estimates + loss rows in estimation) for
        bitwise-identical resume; block-bootstrap draws are always
        replayed so the RNG stream matches an uninterrupted run.
        """
        cfg = self.config
        lcfg = cfg.lasso
        Y, X = build_lag_matrices(
            series, cfg.order, add_intercept=cfg.fit_intercept
        )
        m, p = Y.shape
        kdim = X.shape[1]
        self._p, self._kdim = p, kdim
        lambdas = self._lambda_grid(X, Y)
        rng = np.random.default_rng(lcfg.random_state)
        L = cfg.block_length

        ckpt = CheckpointSession(checkpoint)
        ckpt.ensure_meta({
            "kind": "serial_uoi_var",
            "m": m,
            "p": p,
            "kdim": kdim,
            "order": cfg.order,
            "block_length": cfg.block_length,
            "q": lcfg.n_lambdas,
            "B1": lcfg.n_selection_bootstraps,
            "B2": lcfg.n_estimation_bootstraps,
            "random_state": lcfg.random_state,
            "intersection_frac": lcfg.intersection_frac,
        })

        # -------------------- model selection --------------------
        B1, q = lcfg.n_selection_bootstraps, lcfg.n_lambdas
        masks = np.empty((B1, q, kdim * p), dtype=bool)
        for k in range(B1):
            idx = circular_block_bootstrap(m, rng, block_length=L)
            rec = ckpt.lookup(f"serial-var-sel/k{k}")
            if rec is not None:
                masks[k] = rec["masks"]
            else:
                betas = self._solve_path_columns(X[idx], Y[idx], lambdas)
                masks[k] = betas != 0.0
                ckpt.record(f"serial-var-sel/k{k}", {"masks": masks[k]})
        ckpt.flush()
        family = intersect_supports(masks, frac=lcfg.intersection_frac)

        # -------------------- model estimation --------------------
        B2 = lcfg.n_estimation_bootstraps
        losses = np.empty((B2, q))
        estimates = np.empty((B2, q, kdim * p))
        for k in range(B2):
            train_idx, eval_idx = block_train_eval(
                m, rng, block_length=L, train_frac=lcfg.train_frac
            )
            rec = ckpt.lookup(f"serial-var-est/k{k}")
            if rec is not None:
                estimates[k] = rec["estimates"]
                losses[k] = rec["losses"]
                continue
            est = self._ols_family_columns(X[train_idx], Y[train_idx], family)
            estimates[k] = est
            for j in range(q):
                losses[k, j] = self._lifted_loss(X[eval_idx], Y[eval_idx], est[j])
            ckpt.record(
                f"serial-var-est/k{k}", {"estimates": est, "losses": losses[k]}
            )
        ckpt.flush()
        winners = best_support_per_bootstrap(losses, rule=lcfg.selection_rule)
        vec_coef = union_average(estimates[np.arange(B2), winners])

        coefs, mu = partition_coefficients(
            vec_coef, p, cfg.order, has_intercept=cfg.fit_intercept
        )
        self.coefs_ = coefs
        self.intercept_ = mu
        self.vec_coef_ = vec_coef
        self.lambdas_ = lambdas
        self.supports_ = family
        self.losses_ = losses
        self.winners_ = winners
        self.recovered_subproblems_ = ckpt.recovered
        self.completed_subproblems_ = ckpt.completed
        return self

    # ------------------------------------------------------------------
    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """One-step-ahead forecast from the last ``d`` rows of ``history``."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before predict_next()")
        history = np.asarray(history, dtype=float)
        d = self.config.order
        if history.ndim != 2 or history.shape[0] < d:
            raise ValueError(f"history must have >= {d} rows")
        x = self.intercept_.copy()
        for j, A in enumerate(self.coefs_, start=1):
            x = x + A @ history[-j]
        return x

    def forecast(self, history: np.ndarray, steps: int) -> np.ndarray:
        """h-step-ahead point forecast from the fitted coefficients."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before forecast()")
        return forecast(self.coefs_, history, steps, intercept=self.intercept_)

    def forecast_intervals(
        self,
        history: np.ndarray,
        steps: int,
        *,
        level: float = 0.9,
        n_paths: int = 500,
        rng: np.random.Generator | None = None,
    ):
        """Simulation-based predictive intervals (see
        :func:`repro.var.forecast.forecast_intervals`)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before forecast_intervals()")
        return forecast_intervals(
            self.coefs_, history, steps,
            intercept=self.intercept_, level=level, n_paths=n_paths, rng=rng,
        )

    def diagnose(self, series: np.ndarray, *, lags: int = 10):
        """Residual-adequacy checks of this fit on a series (see
        :func:`repro.var.diagnostics.diagnose`)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before diagnose()")
        return diagnose(
            series, self.coefs_,
            intercept=self.intercept_ if self.config.fit_intercept else None,
            lags=lags,
        )

    def granger_graph(self, *, labels: list[str] | None = None, tol: float = 0.0):
        """Inferred Granger network as a ``networkx.DiGraph`` (Fig. 11)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before granger_graph()")
        return granger_digraph(self.coefs_, labels=labels, tol=tol)

    def network_summary(self, *, tol: float = 0.0) -> dict:
        """Headline network statistics (edge counts, density, degrees)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before network_summary()")
        return network_summary(self.coefs_, tol=tol)
