"""Serial UoI_VAR estimator (paper Algorithm 2).

UoI_LASSO adapted to VAR(d) inference:

* the series is rearranged into the lag matrices ``(Y, X)`` of
  eqs. 7-8 and, conceptually, lifted to ``vec Y = (I ⊗ X) vec B``
  (eq. 9);
* bootstraps are *circular block bootstraps* over lag-matrix rows, so
  temporal dependence survives resampling;
* selection intersects supports of the lifted coefficient vector
  across bootstraps per λ (one shared λ across all output columns, as
  in the lifted formulation);
* estimation fits OLS per candidate support, scores total held-out
  prediction loss, picks one winner per bootstrap and averages;
* the averaged ``vec B`` is partitioned back into
  ``(A_1, ..., A_d)`` and ``mu`` (Algorithm 2 line 31).

Because the lifted design is block diagonal, the λ-path solves
decompose exactly into one LASSO per output column
(:func:`repro.linalg.kron.kron_lasso_columnwise`); the local plan
(:class:`repro.engine.plans.VarPlan`, which this estimator adapts)
exploits that, while the distributed driver can also run the
materialized lifted problem through the distributed Kronecker path —
tests pin the two to the same answer.  Like :class:`UoILasso`, the
fit runs on a pluggable engine backend (``fit(executor=...)``) with
bitwise-identical results on every backend.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import UoIVarConfig
from repro.resilience.checkpoint import CheckpointHook, CheckpointPlan
from repro.var.diagnostics import diagnose
from repro.var.forecast import forecast, forecast_intervals
from repro.var.granger import granger_digraph, network_summary
from repro.var.lag import partition_coefficients

__all__ = ["UoIVar"]


class UoIVar:
    """Union-of-Intersections VAR(d) inference.

    Parameters
    ----------
    config:
        Full hyperparameter bundle; ``None`` uses defaults.
    **overrides:
        Keyword overrides applied to ``config`` (e.g.
        ``UoIVar(order=2)``).  Keys not on :class:`UoIVarConfig` are
        forwarded to the inner :class:`UoILassoConfig` (e.g.
        ``UoIVar(n_selection_bootstraps=40)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    coefs_:
        Fitted ``[A_1, ..., A_d]``.
    intercept_:
        Fitted ``mu`` (zeros unless ``fit_intercept``).
    vec_coef_:
        The averaged lifted coefficient vector ``vec B``.
    lambdas_, supports_, losses_, winners_:
        As in :class:`repro.core.uoi_lasso.UoILasso`, but over lifted
        coefficients (masks have length ``k * p``).
    """

    def __init__(self, config: UoIVarConfig | None = None, **overrides) -> None:
        config = config or UoIVarConfig()
        if overrides:
            outer = {
                k: v for k, v in overrides.items() if k in UoIVarConfig.__dataclass_fields__
            }
            inner = {k: v for k, v in overrides.items() if k not in outer}
            if inner:
                outer["lasso"] = config.lasso.with_(**inner)
            config = config.with_(**outer)
        self.config = config
        self.coefs_: list[np.ndarray] | None = None
        self.intercept_: np.ndarray | None = None
        self.vec_coef_: np.ndarray | None = None
        self.lambdas_: np.ndarray | None = None
        self.supports_: np.ndarray | None = None
        self.losses_: np.ndarray | None = None
        self.winners_: np.ndarray | None = None
        self.recovered_subproblems_: int = 0
        self.completed_subproblems_: int = 0
        #: TelemetryHook from the last fit, or None (telemetry off).
        self.telemetry_ = None
        self._p: int | None = None
        self._kdim: int | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        series: np.ndarray,
        *,
        checkpoint: CheckpointPlan | None = None,
        executor=None,
        telemetry=None,
    ) -> "UoIVar":
        """Infer the VAR(d) model from an ``(N, p)`` series; returns ``self``.

        ``checkpoint=`` attaches a
        :class:`~repro.resilience.checkpoint.CheckpointHook` that
        persists completed bootstraps (support masks in selection,
        estimates + loss rows in estimation) for bitwise-identical
        resume; all block-bootstrap draws are made up front from the
        shared ``random_state`` so recovered and solved runs share one
        RNG stream.

        ``executor=`` selects the engine backend as in
        :meth:`repro.core.uoi_lasso.UoILasso.fit`; every backend
        produces bitwise the same coefficients.

        ``telemetry=`` attaches a
        :class:`~repro.telemetry.hook.TelemetryHook` as in
        :meth:`repro.core.uoi_lasso.UoILasso.fit`; the hook lands on
        ``telemetry_`` and never changes the numerics.
        """
        # Imported here, not at module top: the engine's plans import
        # repro.core's stage kernels, so a module-level import would
        # close a package cycle.
        from repro.engine import VarPlan, default_executor, run_plan
        from repro.telemetry import resolve_telemetry

        cfg = self.config
        plan = VarPlan(cfg, series)
        self._p, self._kdim = plan.p, plan.kdim
        hook = CheckpointHook(checkpoint)
        hooks = [hook]
        self.telemetry_ = resolve_telemetry(telemetry, label="uoi_var.fit")
        if self.telemetry_ is not None:
            hooks.append(self.telemetry_)
        out = run_plan(
            plan, executor if executor is not None else default_executor(), hooks
        )

        vec_coef = out.coef
        coefs, mu = partition_coefficients(
            vec_coef, plan.p, cfg.order, has_intercept=cfg.fit_intercept
        )
        self.coefs_ = coefs
        self.intercept_ = mu
        self.vec_coef_ = vec_coef
        self.lambdas_ = out.lambdas
        self.supports_ = out.supports
        self.losses_ = out.losses
        self.winners_ = out.winners
        self.recovered_subproblems_ = hook.recovered
        self.completed_subproblems_ = hook.completed
        return self

    # ------------------------------------------------------------------
    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """One-step-ahead forecast from the last ``d`` rows of ``history``."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before predict_next()")
        history = np.asarray(history, dtype=float)
        d = self.config.order
        if history.ndim != 2 or history.shape[0] < d:
            raise ValueError(f"history must have >= {d} rows")
        x = self.intercept_.copy()
        for j, A in enumerate(self.coefs_, start=1):
            x = x + A @ history[-j]
        return x

    def forecast(self, history: np.ndarray, steps: int) -> np.ndarray:
        """h-step-ahead point forecast from the fitted coefficients."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before forecast()")
        return forecast(self.coefs_, history, steps, intercept=self.intercept_)

    def forecast_intervals(
        self,
        history: np.ndarray,
        steps: int,
        *,
        level: float = 0.9,
        n_paths: int = 500,
        rng: np.random.Generator | None = None,
    ):
        """Simulation-based predictive intervals (see
        :func:`repro.var.forecast.forecast_intervals`)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before forecast_intervals()")
        return forecast_intervals(
            self.coefs_, history, steps,
            intercept=self.intercept_, level=level, n_paths=n_paths, rng=rng,
        )

    def diagnose(self, series: np.ndarray, *, lags: int = 10):
        """Residual-adequacy checks of this fit on a series (see
        :func:`repro.var.diagnostics.diagnose`)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before diagnose()")
        return diagnose(
            series, self.coefs_,
            intercept=self.intercept_ if self.config.fit_intercept else None,
            lags=lags,
        )

    def granger_graph(self, *, labels: list[str] | None = None, tol: float = 0.0):
        """Inferred Granger network as a ``networkx.DiGraph`` (Fig. 11)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before granger_graph()")
        return granger_digraph(self.coefs_, labels=labels, tol=tol)

    def network_summary(self, *, tol: float = 0.0) -> dict:
        """Headline network statistics (edge counts, density, degrees)."""
        if self.coefs_ is None:
            raise RuntimeError("call fit() before network_summary()")
        return network_summary(self.coefs_, tol=tol)
