"""The Union of Intersections framework (the paper's algorithms).

* :mod:`repro.core.config` — hyperparameter dataclasses
  (``B1``/``B2`` bootstraps, λ grid, solver knobs).
* :mod:`repro.core.bootstrap` — iid bootstraps with train/eval splits
  (UoI_LASSO) and circular block bootstraps (UoI_VAR's
  temporal-dependence-preserving resampling).
* :mod:`repro.core.selection` — the *intersection* step (eq. 3):
  supports intersected across bootstraps per λ.
* :mod:`repro.core.estimation` — the *union* step (eq. 4): per-support
  OLS across estimation bootstraps, best-support-per-bootstrap by
  held-out loss, bagged average.
* :mod:`repro.core.uoi_lasso` — serial :class:`UoILasso`
  (Algorithm 1).
* :mod:`repro.core.uoi_var` — serial :class:`UoIVar` (Algorithm 2).
* :mod:`repro.core.parallel` — the distributed drivers over
  :mod:`repro.simmpi`: P_B x P_lambda x ADMM process grids,
  randomized data distribution, consensus-ADMM solves, and
  collective intersection/union reductions.
"""

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.core.bootstrap import (
    iid_bootstrap,
    bootstrap_train_eval,
    circular_block_bootstrap,
    block_train_eval,
)
from repro.core.selection import intersect_supports, support_family, unique_supports
from repro.core.estimation import fit_support_ols, best_support_per_bootstrap, union_average
from repro.core.uoi_lasso import UoILasso
from repro.core.uoi_var import UoIVar

__all__ = [
    "UoILassoConfig",
    "UoIVarConfig",
    "iid_bootstrap",
    "bootstrap_train_eval",
    "circular_block_bootstrap",
    "block_train_eval",
    "intersect_supports",
    "support_family",
    "unique_supports",
    "fit_support_ols",
    "best_support_per_bootstrap",
    "union_average",
    "UoILasso",
    "UoIVar",
]
