"""Hyperparameter configuration for the UoI estimators.

The defaults mirror the values the paper uses most often; individual
experiments override them (e.g. ``B1 = B2 = 5, q = 8`` for the
single-node runs, ``B1 = 40, B2 = 5`` for the sparse S&P fit).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["UoILassoConfig", "UoIVarConfig"]


@dataclass(frozen=True)
class UoILassoConfig:
    """Configuration of :class:`repro.core.uoi_lasso.UoILasso`.

    Attributes
    ----------
    n_lambdas:
        Size ``q`` of the regularization grid.
    lambda_min_ratio:
        Ratio of the smallest to the largest grid penalty.
    n_selection_bootstraps:
        ``B1`` — bootstraps intersected in model selection.
    n_estimation_bootstraps:
        ``B2`` — bootstraps unioned in model estimation.
    train_frac:
        Fraction of rows used for the estimation-stage training
        bootstrap; the remainder forms the held-out evaluation set.
    fit_intercept:
        Center the data and recover an intercept after the fit.
    solver:
        ``"admm"`` (the paper's solver) or ``"cd"`` (coordinate
        descent; useful as a cross-check).
    rho:
        ADMM penalty parameter.
    max_iter:
        Per-solve iteration cap.
    abstol, reltol:
        ADMM stopping tolerances.
    cd_tol:
        Coordinate-descent sweep tolerance (``solver="cd"`` only).
    adapt_rho:
        Enable ADMM residual balancing (Boyd §3.4.1) in both the
        serial and consensus solvers; converges in far fewer
        iterations at the price of occasional refactorizations (see
        ``benchmarks/bench_ablation_rho.py``).
    selection_rule:
        How estimation picks each bootstrap's winning support:
        ``"min"`` (Algorithm 1's argmin) or ``"1se"`` (one-standard-
        error parsimony rule; see
        :func:`repro.core.estimation.best_support_per_bootstrap`).
    intersection_frac:
        Soft-intersection threshold for model selection: a feature
        survives at a given λ when it appears in at least this
        fraction of the B1 bootstraps.  1.0 (default) is the paper's
        strict intersection (eq. 3).
    random_state:
        Seed anchoring every bootstrap draw (identical seeds make the
        serial and distributed implementations bit-compatible in their
        resampling).
    """

    n_lambdas: int = 48
    lambda_min_ratio: float = 1e-3
    n_selection_bootstraps: int = 48
    n_estimation_bootstraps: int = 48
    train_frac: float = 0.8
    fit_intercept: bool = False
    solver: str = "admm"
    rho: float = 1.0
    max_iter: int = 500
    abstol: float = 1e-5
    reltol: float = 1e-4
    cd_tol: float = 1e-7
    adapt_rho: bool = False
    selection_rule: str = "min"
    intersection_frac: float = 1.0
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_lambdas < 1:
            raise ValueError("n_lambdas must be >= 1")
        if not (0 < self.lambda_min_ratio < 1):
            raise ValueError("lambda_min_ratio must lie in (0, 1)")
        if self.n_selection_bootstraps < 1 or self.n_estimation_bootstraps < 1:
            raise ValueError("bootstrap counts must be >= 1")
        if not (0 < self.train_frac < 1):
            raise ValueError("train_frac must lie in (0, 1)")
        if self.solver not in ("admm", "cd"):
            raise ValueError(f"solver must be 'admm' or 'cd', got {self.solver!r}")
        if self.rho <= 0:
            raise ValueError("rho must be > 0")
        if self.selection_rule not in ("min", "1se"):
            raise ValueError(
                f"selection_rule must be 'min' or '1se', got {self.selection_rule!r}"
            )
        if not (0.0 < self.intersection_frac <= 1.0):
            raise ValueError("intersection_frac must lie in (0, 1]")

    def with_(self, **overrides) -> "UoILassoConfig":
        """Copy with some fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class UoIVarConfig:
    """Configuration of :class:`repro.core.uoi_var.UoIVar`.

    Attributes
    ----------
    order:
        VAR order ``d``.
    block_length:
        Block length of the circular block bootstrap (``None`` picks
        ``ceil(m ** (1/3))`` of the ``m`` lag-matrix rows, the standard
        rate-optimal choice).
    fit_intercept:
        Estimate the drift ``mu`` alongside the ``A_j``.
    lasso:
        The inner UoI_LASSO hyperparameters (grid, bootstrap counts,
        solver knobs).  Its ``random_state`` seeds the block
        bootstraps too.
    """

    order: int = 1
    block_length: int | None = None
    fit_intercept: bool = False
    lasso: UoILassoConfig = field(default_factory=UoILassoConfig)

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.block_length is not None and self.block_length < 1:
            raise ValueError("block_length must be >= 1")

    def with_(self, **overrides) -> "UoIVarConfig":
        """Copy with some fields replaced."""
        return replace(self, **overrides)
