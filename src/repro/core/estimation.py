"""Model estimation: the *union* step (paper eq. 4).

For each estimation bootstrap ``k`` and each candidate support ``S_j``
from selection, the unbiased OLS estimate is fit on the training
resample and scored on the held-out evaluation rows (Algorithm 1
lines 18-19).  Per bootstrap, the best support wins (line 22); the
final model is the average of the ``B2`` winners (line 24) — a union
because supports of different winners merge, with the averaging
providing the variance reduction of bagging.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.ols import ols_on_support

__all__ = [
    "prediction_loss",
    "fit_support_ols",
    "merge_loss_tables",
    "best_support_per_bootstrap",
    "union_average",
]


def prediction_loss(X: np.ndarray, y: np.ndarray, beta: np.ndarray) -> float:
    """Mean squared prediction error of ``beta`` on ``(X, y)``."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    resid = y - X @ beta
    return float(resid @ resid / max(len(y), 1))


def fit_support_ols(
    X_train: np.ndarray,
    y_train: np.ndarray,
    family: np.ndarray,
) -> np.ndarray:
    """OLS estimates for every support in a ``(q, p)`` family.

    Returns a ``(q, p)`` array whose row ``j`` is dense on ``S_j`` and
    exactly zero elsewhere.
    """
    family = np.asarray(family, dtype=bool)
    if family.ndim != 2:
        raise ValueError(f"family must be (q, p), got {family.shape}")
    q, p = family.shape
    out = np.zeros((q, p))
    for j in range(q):
        out[j] = ols_on_support(X_train, y_train, family[j])
    return out


def merge_loss_tables(*tables: np.ndarray) -> np.ndarray:
    """Element-wise MIN merge of partial ``(B2, q)`` loss tables.

    Each table holds a rank's (or a recovered checkpoint's) held-out
    losses with ``inf`` in the cells it did not evaluate — ``inf`` is
    the neutral element, so merging is exactly the MIN-Allreduce the
    distributed estimation step performs, usable host-side when
    assembling a table from checkpoints
    (:func:`repro.resilience.recovery.recovered_loss_table`).
    """
    if not tables:
        raise ValueError("need at least one loss table")
    arrays = [np.asarray(t, dtype=float) for t in tables]
    shape = arrays[0].shape
    for t in arrays[1:]:
        if t.shape != shape:
            raise ValueError(f"shape mismatch: {t.shape} vs {shape}")
    return np.minimum.reduce(arrays)


def best_support_per_bootstrap(losses: np.ndarray, *, rule: str = "min") -> np.ndarray:
    """Winning support index per bootstrap from a ``(B2, q)`` loss table.

    Parameters
    ----------
    losses:
        Held-out loss of support ``j`` on estimation bootstrap ``k``.
    rule:
        ``"min"`` — plain argmin (Algorithm 1 line 22; ties break
        toward the smaller index, which on a descending λ grid is the
        sparser candidate).  ``"1se"`` — the one-standard-error rule:
        pick the *sparsest* support whose loss is within one standard
        error (of that support's loss across bootstraps) of the
        bootstrap's minimum.  Held-out losses of near-optimal supports
        differ by less than their noise, so argmin readmits spurious
        features by chance; the 1se variant (standard practice since
        CART/glmnet, and an option in the reference PyUoI package)
        trades a sliver of prediction for markedly fewer false
        positives.  Requires ``B2 >= 2``; degenerates to ``"min"``
        otherwise.
    """
    losses = np.asarray(losses, dtype=float)
    if losses.ndim != 2:
        raise ValueError(f"losses must be (B2, q), got {losses.shape}")
    if rule not in ("min", "1se"):
        raise ValueError(f"rule must be 'min' or '1se', got {rule!r}")
    argmin = np.argmin(losses, axis=1)
    if rule == "min" or losses.shape[0] < 2:
        return argmin
    se = losses.std(axis=0, ddof=1) / np.sqrt(losses.shape[0])
    winners = np.empty_like(argmin)
    for k in range(losses.shape[0]):
        jmin = argmin[k]
        threshold = losses[k, jmin] + se[jmin]
        winners[k] = int(np.argmax(losses[k] <= threshold))
    return winners


def union_average(winner_betas: np.ndarray) -> np.ndarray:
    """Bagged model: mean over the ``(B2, p)`` per-bootstrap winners.

    This is eq. 4's union: a feature selected by *any* winner survives
    in the average (scaled by how often it won), which re-expands the
    conservative intersection supports toward predictive accuracy.
    """
    winner_betas = np.asarray(winner_betas, dtype=float)
    if winner_betas.ndim != 2:
        raise ValueError(f"winner_betas must be (B2, p), got {winner_betas.shape}")
    if winner_betas.shape[0] < 1:
        raise ValueError("need at least one bootstrap winner")
    return winner_betas.mean(axis=0)
