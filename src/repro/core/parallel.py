"""Distributed UoI drivers (the paper's multi-node implementation).

Ranks are organized into the paper's three-level hierarchy:

    world  =  P_B bootstrap groups  x  P_lambda penalty groups
              x  ADMM_cores consensus cores per cell

(:class:`ProcessGrid`).  Each *cell* solves whole (bootstrap, λ)
subproblems with consensus ADMM over its own sub-communicator; the
Reduce steps are world-wide collectives:

* selection's intersection (eq. 3) is one logical-AND ``Allreduce`` of
  per-cell support masks (a mask defaults to all-True for (k, j) pairs
  a cell did not own, the neutral element of intersection);
* estimation's winner search is a MIN ``Allreduce`` of the
  ``(B2, q)`` held-out-loss table, after which the owning cells
  contribute their winners to a SUM ``Allreduce`` that forms the
  union average (eq. 4).

Bootstrap indices on every rank are replayed from the shared
``random_state``, exactly as the paper's randomized data distribution
assumes, so all data movement is one-sided Tier-2 traffic against the
Tier-1 blocks loaded once at startup.

:func:`distributed_uoi_lasso` expects the paper's ``InputData``
layout: one ``(n, 1 + p)`` dataset whose column 0 is the response.
:func:`distributed_uoi_var` runs Algorithm 2 with the
distributed-Kronecker construction and a sparse consensus solver.

Both drivers are thin adapters over the execution engine
(:mod:`repro.engine`): after the data-distribution preamble they build
a grid-aware :class:`~repro.engine.UoIPlan` (``_DistLassoPlan`` /
``_DistVarPlan``) whose per-``(k, j)`` subproblems carry the legacy
checkpoint keys (``sel/k{k}/j{j}``, ``var-est/k{k}/j{j}``, ...), and
hand it to a :class:`~repro.engine.SimMpiExecutor` bound to the
:class:`ProcessGrid` — each rank runs only the chains its cell owns,
checkpointing attaches as a :class:`~repro.resilience.CheckpointHook`,
and the plan's ``reduce`` performs the world-wide collectives above in
a fixed order so results stay bitwise identical to the pre-engine
drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bootstrap import (
    block_train_eval,
    bootstrap_train_eval,
    circular_block_bootstrap,
    iid_bootstrap,
)
from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.core.estimation import best_support_per_bootstrap
from repro.core.selection import family_from_counts
from repro.distribution.kron_dist import DistributedKron
from repro.distribution.randomized import RandomizedDistributor
from repro.engine import (
    SELECTION,
    SimMpiExecutor,
    Subproblem,
    UoIPlan,
    run_plan,
)
from repro.linalg.consensus import consensus_lasso_admm
from repro.linalg.lambda_grid import lambda_grid_from_max
from repro.pfs.hdf5 import SimH5File
from repro.resilience.checkpoint import (
    CheckpointHook,
    CheckpointPlan,
    CheckpointSession,
)
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm
from repro.simmpi.reduce_ops import MIN, SUM
from repro.telemetry import resolve_telemetry
from repro.telemetry.hook import TelemetryHook
from repro.var.lag import build_lag_matrices, partition_coefficients

__all__ = [
    "ProcessGrid",
    "DistributedUoIResult",
    "distributed_uoi_lasso",
    "distributed_uoi_var",
    "distributed_cv_lasso",
]


@dataclass
class ProcessGrid:
    """This rank's position in the P_B x P_lambda x ADMM hierarchy.

    Attributes
    ----------
    world:
        The full communicator.
    cell:
        Sub-communicator of this rank's (bootstrap-group, λ-group)
        cell — the ADMM cores that jointly solve one subproblem.
    pb, plam:
        Grid extents.
    b, l:
        This rank's bootstrap-group and λ-group coordinates.
    """

    world: SimComm
    cell: SimComm
    pb: int
    plam: int
    b: int
    l: int

    @classmethod
    def build(cls, comm: SimComm, pb: int = 1, plam: int = 1) -> "ProcessGrid":
        """Split ``comm`` into a balanced P_B x P_lambda grid of cells.

        ``comm.size`` must be divisible by ``pb * plam`` so every cell
        gets the same number of ADMM cores (the paper's configurations
        always are).
        """
        if pb < 1 or plam < 1:
            raise ValueError(f"pb and plam must be >= 1, got {pb}, {plam}")
        cells = pb * plam
        if comm.size % cells != 0:
            raise ValueError(
                f"world size {comm.size} not divisible by pb*plam = {cells}"
            )
        per_cell = comm.size // cells
        cell_id = comm.rank // per_cell
        b, l = divmod(cell_id, plam)
        cell = comm.split(cell_id)
        return cls(world=comm, cell=cell, pb=pb, plam=plam, b=b, l=l)

    @property
    def admm_cores(self) -> int:
        """Consensus cores per cell."""
        return self.cell.size

    def owns_bootstrap(self, k: int) -> bool:
        """Round-robin bootstrap ownership: cell group ``b`` takes ``k ≡ b``."""
        return k % self.pb == self.b

    def owns_lambda(self, j: int) -> bool:
        """Round-robin λ ownership: λ group ``l`` takes ``j ≡ l``."""
        return j % self.plam == self.l


@dataclass
class DistributedUoIResult:
    """Fit results, identical on every rank.

    Attributes
    ----------
    coef:
        Final averaged coefficients (``(p,)`` for UoI_LASSO; the
        lifted ``vec B`` for UoI_VAR).
    supports:
        ``(q, p)`` intersected support family.
    losses:
        ``(B2, q)`` held-out loss table.
    winners:
        Winning support index per estimation bootstrap.
    lambdas:
        The λ grid.
    recovered_subproblems / completed_subproblems:
        World totals of (bootstrap, λ) subproblems served from a
        checkpoint store versus computed by this run (both 0 when the
        driver ran without ``checkpoint=``).
    telemetry:
        This rank's :class:`~repro.telemetry.hook.TelemetryHook`, or
        ``None`` when the driver ran without ``telemetry=``.
    """

    coef: np.ndarray
    supports: np.ndarray
    losses: np.ndarray
    winners: np.ndarray
    lambdas: np.ndarray
    recovered_subproblems: int = 0
    completed_subproblems: int = 0
    telemetry: object | None = None


def _reduce_progress(
    comm: SimComm, grid: ProcessGrid, ckpt: CheckpointSession
) -> tuple[int, int]:
    """World totals of (recovered, computed) subproblems.

    Only each cell's rank 0 contributes (every cell rank tracks the
    same subproblems), and the collectives are posted only when
    checkpointing is active, so runs without ``checkpoint=`` keep
    their exact modeled-time profile.
    """
    if not ckpt.active:
        return 0, 0
    rec = ckpt.recovered if grid.cell.rank == 0 else 0
    comp = ckpt.completed if grid.cell.rank == 0 else 0
    recovered = int(comm.allreduce(rec, SUM))
    completed = int(comm.allreduce(comp, SUM))
    return recovered, completed


def _rank_telemetry(telemetry, comm: SimComm, label: str):
    """Per-rank telemetry hook for a distributed driver, or ``None``.

    Simulated ranks are threads, and the context-var current recorder
    is per-thread, so each rank resolves its own hook (``tid`` = world
    rank) inside its program — the solver/I-O one-liners on that rank
    then feed that rank's recorder.  File export stays enabled only on
    world rank 0 to avoid every rank writing the same paths; pass an
    explicit :class:`TelemetryHook` to opt out of that convention.
    """
    tel = resolve_telemetry(telemetry, tid=comm.rank, label=label)
    if (
        tel is not None
        and comm.rank != 0
        and not isinstance(telemetry, TelemetryHook)
    ):
        tel.export_dir = None
    return tel


def _draw_lasso_bootstraps(
    n: int, config: UoILassoConfig
) -> tuple[list[np.ndarray], list[tuple[np.ndarray, np.ndarray]]]:
    """Replay the exact bootstrap sequence of the serial UoILasso."""
    rng = np.random.default_rng(config.random_state)
    selection = [
        iid_bootstrap(n, rng) for _ in range(config.n_selection_bootstraps)
    ]
    estimation = [
        bootstrap_train_eval(n, rng, train_frac=config.train_frac)
        for _ in range(config.n_estimation_bootstraps)
    ]
    return selection, estimation


class _DistUoIPlan(UoIPlan):
    """Shared engine-plan skeleton of the two distributed drivers.

    One chain per bootstrap, one task per (bootstrap, λ) pair — the
    legacy checkpoint granularity, with the legacy record keys.  A
    :class:`~repro.engine.executors.SimMpiExecutor` *bound* to the
    caller's :class:`ProcessGrid` filters the chains down to this
    rank's owned work, so ``run_chain``/``reduce`` below run
    identically on every rank of a cell and may freely use the cell /
    world collectives — exactly the SPMD structure the legacy loops
    had, with the orchestration (ownership, lookup, hook dispatch)
    lifted into the engine.

    Reductions deliberately keep the legacy float-summation grouping
    (per-rank partial sums combined by ``Allreduce``): regrouping
    would change the bits of the final coefficients.
    """

    #: (selection key prefix, estimation key prefix)
    prefixes = ("sel", "est")

    def __init__(self, comm: SimComm, grid: ProcessGrid) -> None:
        self.comm = comm
        self.grid = grid
        self.family: np.ndarray | None = None
        self.result: DistributedUoIResult | None = None

    def chains(self, stage):
        sel_prefix, est_prefix = self.prefixes
        if stage == SELECTION:
            nboot, prefix = self.B1, sel_prefix
        else:
            nboot, prefix = self.B2, est_prefix
        return [
            [
                Subproblem(stage, k, j, f"{prefix}/k{k}/j{j}", k, j)
                for j in range(self.q)
            ]
            for k in range(nboot)
        ]

    def finalize(self) -> DistributedUoIResult:
        if self.result is None:
            raise RuntimeError("plan has not been reduced yet")
        return self.result

    # ------------------------------------------------------- reductions
    def _lasso_config(self) -> UoILassoConfig:
        raise NotImplementedError

    def reduce(self, stage, results):
        cfg = self._lasso_config()
        comm, grid = self.comm, self.grid
        sel_prefix, est_prefix = self.prefixes
        ncoef = self.ncoef
        if stage == SELECTION:
            # Per-λ selection *counts* (how many bootstraps kept each
            # feature): SUM-reduced across the grid, then thresholded —
            # which implements both the paper's strict intersection
            # (frac = 1) and the soft variant.  Only a cell's rank 0
            # contributes, so the C consensus copies inside a cell are
            # not double counted.
            counts = np.zeros((self.q, ncoef), dtype=np.int64)
            if grid.cell.rank == 0:
                for k in range(self.B1):
                    if not grid.owns_bootstrap(k):
                        continue
                    for j in range(self.q):
                        if not grid.owns_lambda(j):
                            continue
                        rec = results[f"{sel_prefix}/k{k}/j{j}"]
                        counts[j] += rec["beta"] != 0.0
            counts = comm.allreduce(counts, SUM)
            self.family = family_from_counts(
                counts, self.B1, frac=cfg.intersection_frac
            )
            return

        losses = np.full((self.B2, self.q), np.inf)
        kept: dict[tuple[int, int], np.ndarray] = {}
        for k in range(self.B2):
            if not grid.owns_bootstrap(k):
                continue
            for j in range(self.q):
                if not grid.owns_lambda(j):
                    continue
                rec = results[f"{est_prefix}/k{k}/j{j}"]
                losses[k, j] = float(rec["loss"])
                kept[(k, j)] = rec["beta"]
        losses = comm.allreduce(losses, MIN)
        winners = best_support_per_bootstrap(losses, rule=cfg.selection_rule)

        # Union average: the owning cell's rank-0 contributes each winner.
        contrib = np.zeros(ncoef)
        for k in range(self.B2):
            j = int(winners[k])
            if (k, j) in kept and grid.cell.rank == 0:
                contrib += kept[(k, j)]
        coef = comm.allreduce(contrib, SUM) / self.B2
        self.result = DistributedUoIResult(
            coef=coef, supports=self.family, losses=losses, winners=winners,
            lambdas=self.lambdas,
        )


class _DistLassoPlan(_DistUoIPlan):
    """Distributed UoI_LASSO over a randomized (Tier-1/Tier-2) dataset."""

    kind = "uoi_lasso"
    prefixes = ("sel", "est")

    def __init__(
        self,
        comm: SimComm,
        grid: ProcessGrid,
        dist: RandomizedDistributor,
        config: UoILassoConfig,
        dataset: str,
        lambdas: np.ndarray,
        selection_idx,
        estimation_idx,
    ) -> None:
        super().__init__(comm, grid)
        self.dist = dist
        self.config = config
        self.dataset = dataset
        self.lambdas = lambdas
        self.selection_idx = selection_idx
        self.estimation_idx = estimation_idx
        self.n = dist.n_rows
        self.p = dist.n_cols - 1
        self.ncoef = self.p
        self.q = config.n_lambdas
        self.B1 = config.n_selection_bootstraps
        self.B2 = config.n_estimation_bootstraps

    def _lasso_config(self) -> UoILassoConfig:
        return self.config

    def meta(self) -> dict:
        cfg = self.config
        return {
            "kind": "uoi_lasso",
            "dataset": self.dataset,
            "n": self.n,
            "p": self.p,
            "q": self.q,
            "B1": self.B1,
            "B2": self.B2,
            "random_state": cfg.random_state,
            "intersection_frac": cfg.intersection_frac,
            "pb": self.grid.pb,
            "plam": self.grid.plam,
        }

    def run_chain(self, stage, tasks, recovered, emit):
        cfg = self.config
        cell = self.grid.cell
        k = tasks[0].bootstrap
        if stage == SELECTION:
            # At least one subproblem to solve: pay the Tier-2 shuffle.
            rows = self.dist.sample(self.selection_idx[k], subcomm=cell)
            Xb, yb = rows[:, 1:], rows[:, 0]
            beta = None
            for task in tasks:
                rec = recovered.get(task.key)
                if rec is not None:
                    # Recovered solve still seeds the λ-path warm start.
                    beta = rec["beta"]
                    continue
                res = consensus_lasso_admm(
                    cell,
                    Xb,
                    yb,
                    float(self.lambdas[task.lam_index]),
                    rho=cfg.rho,
                    max_iter=cfg.max_iter,
                    abstol=cfg.abstol,
                    reltol=cfg.reltol,
                    adapt_rho=cfg.adapt_rho,
                    beta0=beta,
                )
                beta = res.beta
                emit(task, {"beta": beta})
            return

        train_idx, eval_idx = self.estimation_idx[k]
        train = self.dist.sample(train_idx, subcomm=cell)
        evaldata = self.dist.sample(eval_idx, subcomm=cell)
        X_tr, y_tr = train[:, 1:], train[:, 0]
        X_ev, y_ev = evaldata[:, 1:], evaldata[:, 0]
        for task in tasks:
            if task.key in recovered:
                continue
            cols = np.flatnonzero(self.family[task.lam_index])
            beta_full = np.zeros(self.p)
            if cols.size:
                res = consensus_lasso_admm(
                    cell,
                    X_tr[:, cols],
                    y_tr,
                    0.0,
                    rho=cfg.rho,
                    max_iter=cfg.max_iter,
                    abstol=cfg.abstol,
                    reltol=cfg.reltol,
                    adapt_rho=cfg.adapt_rho,
                )
                beta_full[cols] = res.beta
            resid = y_ev - X_ev @ beta_full
            sse_total = cell.allreduce(float(resid @ resid), SUM)
            emit(
                task,
                {"beta": beta_full, "loss": sse_total / max(len(eval_idx), 1)},
            )


class _DistVarPlan(_DistUoIPlan):
    """Distributed UoI_VAR over the distributed-Kronecker lifted problem."""

    kind = "uoi_var"
    prefixes = ("var-sel", "var-est")

    def __init__(
        self,
        comm: SimComm,
        grid: ProcessGrid,
        config: UoIVarConfig,
        solver_comm: SimComm,
        lifted_local,
        dims: tuple[int, int, int],
        lambdas: np.ndarray,
        selection_idx,
        estimation_idx,
    ) -> None:
        super().__init__(comm, grid)
        self.config = config
        self.solver_comm = solver_comm
        self.lifted_local = lifted_local
        self.m, self.p, self.kdim = dims
        self.ncoef = self.kdim * self.p
        self.lambdas = lambdas
        self.selection_idx = selection_idx
        self.estimation_idx = estimation_idx
        lcfg = config.lasso
        self.q = lcfg.n_lambdas
        self.B1 = lcfg.n_selection_bootstraps
        self.B2 = lcfg.n_estimation_bootstraps

    def _lasso_config(self) -> UoILassoConfig:
        return self.config.lasso

    def meta(self) -> dict:
        cfg, lcfg = self.config, self.config.lasso
        return {
            "kind": "uoi_var",
            "m": self.m,
            "p": self.p,
            "kdim": self.kdim,
            "order": cfg.order,
            "block_length": cfg.block_length,
            "q": self.q,
            "B1": self.B1,
            "B2": self.B2,
            "random_state": lcfg.random_state,
            "intersection_frac": lcfg.intersection_frac,
            "pb": self.grid.pb,
            "plam": self.grid.plam,
        }

    def run_chain(self, stage, tasks, recovered, emit):
        lcfg = self.config.lasso
        k = tasks[0].bootstrap
        if stage == SELECTION:
            A_loc, b_loc = self.lifted_local(self.selection_idx[k])
            beta = None
            for task in tasks:
                rec = recovered.get(task.key)
                if rec is not None:
                    beta = rec["beta"]
                    continue
                res = consensus_lasso_admm(
                    self.solver_comm,
                    A_loc,
                    b_loc,
                    float(self.lambdas[task.lam_index]),
                    rho=lcfg.rho,
                    max_iter=lcfg.max_iter,
                    abstol=lcfg.abstol,
                    reltol=lcfg.reltol,
                    adapt_rho=lcfg.adapt_rho,
                    beta0=beta,
                )
                beta = res.beta
                emit(task, {"beta": beta})
            return

        train_idx, eval_idx = self.estimation_idx[k]
        A_tr, b_tr = self.lifted_local(train_idx)
        A_ev, b_ev = self.lifted_local(eval_idx)
        n_eval_total = len(eval_idx) * self.p
        for task in tasks:
            if task.key in recovered:
                continue
            cols = np.flatnonzero(self.family[task.lam_index])
            beta_full = np.zeros(self.ncoef)
            if cols.size:
                res = consensus_lasso_admm(
                    self.solver_comm,
                    A_tr[:, cols],
                    b_tr,
                    0.0,
                    rho=lcfg.rho,
                    max_iter=lcfg.max_iter,
                    abstol=lcfg.abstol,
                    reltol=lcfg.reltol,
                    adapt_rho=lcfg.adapt_rho,
                )
                beta_full[cols] = res.beta
            resid = b_ev - A_ev @ beta_full
            sse = self.solver_comm.allreduce(float(resid @ resid), SUM)
            emit(
                task,
                {"beta": beta_full, "loss": sse / max(n_eval_total, 1)},
            )


def distributed_uoi_lasso(
    comm: SimComm,
    file: SimH5File,
    dataset: str,
    config: UoILassoConfig,
    *,
    pb: int = 1,
    plam: int = 1,
    checkpoint: CheckpointPlan | None = None,
    telemetry=None,
) -> DistributedUoIResult:
    """Run distributed UoI_LASSO on an ``(n, 1 + p)`` dataset.

    Column 0 of the dataset is the response ``y`` and the rest is the
    design ``X`` (the paper's ``InputData ∈ R^{n x (p+1)}``).  The
    call is collective over ``comm``; all ranks return the same
    result.  ``fit_intercept`` is not supported here — center the data
    when writing the file (the paper's synthetic data are centered).

    With ``checkpoint=`` a :class:`~repro.resilience.checkpoint.\
CheckpointPlan`, each cell's rank 0 persists its completed
    (bootstrap, λ) subproblems — the solved coefficient vector in
    selection (the support *and* the λ-path warm start derive from
    it), the refit and its held-out loss in estimation — and a
    restarted run against the same store skips recovered subproblems,
    producing bitwise the result of an uninterrupted run.  Resuming
    requires the same config and grid shape (enforced via the store's
    pinned metadata).

    ``telemetry=`` attaches one per-rank
    :class:`~repro.telemetry.hook.TelemetryHook` (``tid`` = world
    rank); with a directory value only world rank 0 exports files.
    The rank-0 hook is returned on ``result.telemetry``.
    """
    if config.fit_intercept:
        raise ValueError(
            "distributed_uoi_lasso does not support fit_intercept; "
            "center the data at generation time"
        )
    grid = ProcessGrid.build(comm, pb, plam)
    dist = RandomizedDistributor(comm, file, dataset)
    n = dist.n_rows
    p = dist.n_cols - 1
    q = config.n_lambdas

    # λ grid from the full data: local X'y contributions summed.
    y_loc = dist.tier1[:, 0]
    X_loc = dist.tier1[:, 1:]
    corr = comm.allreduce(X_loc.T @ y_loc, SUM)
    lambdas = lambda_grid_from_max(
        2.0 * float(np.max(np.abs(corr))), num=q, eps=config.lambda_min_ratio
    )

    selection_idx, estimation_idx = _draw_lasso_bootstraps(n, config)

    plan = _DistLassoPlan(
        comm, grid, dist, config, dataset, lambdas,
        selection_idx, estimation_idx,
    )
    hook = CheckpointHook(
        checkpoint,
        clock=comm.clock,
        machine=comm.machine,
        writer=grid.cell.rank == 0,
    )
    tel = _rank_telemetry(telemetry, comm, "distributed_uoi_lasso")
    hooks = [hook] if tel is None else [hook, tel]
    result = run_plan(plan, SimMpiExecutor.bound(grid), hooks)

    recovered, completed = _reduce_progress(comm, grid, hook.session)

    dist.close()
    result.recovered_subproblems = recovered
    result.completed_subproblems = completed
    result.telemetry = tel
    return result


def distributed_uoi_var(
    comm: SimComm,
    series: np.ndarray | None,
    config: UoIVarConfig,
    *,
    n_readers: int = 1,
    pb: int = 1,
    plam: int = 1,
    checkpoint: CheckpointPlan | None = None,
    telemetry=None,
) -> DistributedUoIResult:
    """Run distributed UoI_VAR (Algorithm 2) over ``comm``.

    ``series`` (the raw ``(N, p)`` time series) must be supplied on the
    ``n_readers`` leading ranks; other ranks may pass ``None``.  Every
    bootstrap builds its lifted problem through the distributed
    Kronecker path (readers expose the bootstrap lag matrices in RMA
    windows, compute cores assemble sparse slices) and solves it with
    sparse consensus ADMM.  All ranks return the same result; the
    lifted coefficient vector can be rearranged with
    :func:`repro.var.lag.partition_coefficients`.

    With ``pb``/``plam`` > 1 (Fig. 8's algorithmic parallelism) the
    communicator splits into a P_B x P_lambda grid of cells; the small
    lag matrices are broadcast once so each cell's leading ranks can
    act as its Kronecker readers, and the intersection/winner/union
    reductions run world-wide exactly as in
    :func:`distributed_uoi_lasso`.

    ``checkpoint=`` persists completed lifted (bootstrap, λ)
    subproblems under ``var-sel/`` / ``var-est/`` keys with the same
    skip-on-resume semantics as :func:`distributed_uoi_lasso` —
    including skipping the distributed-Kronecker assembly of a
    bootstrap whose owned subproblems are all recovered.

    ``telemetry=`` attaches per-rank telemetry exactly as in
    :func:`distributed_uoi_lasso`.
    """
    lcfg = config.lasso
    grid = ProcessGrid.build(comm, pb, plam)
    gridded = pb * plam > 1
    is_world_reader = comm.rank < n_readers
    if is_world_reader:
        if series is None:
            raise ValueError("reader ranks must provide the series")
        Y, X = build_lag_matrices(
            series, config.order, add_intercept=config.fit_intercept
        )
        m, p = Y.shape
        kdim = X.shape[1]
        lmax_corr = float(np.max(np.abs(X.T @ Y)))
        meta = (m, p, kdim, lmax_corr)
    else:
        meta, X, Y = None, None, None
    m, p, kdim, lmax_corr = comm.bcast(meta, root=0)
    if gridded:
        # One broadcast of the (small) source matrices, so every cell's
        # leading ranks can serve as that cell's readers.
        X, Y = comm.bcast(
            (X, Y) if comm.rank == 0 else None, root=0,
            category=TimeCategory.DISTRIBUTION,
        )
    cell_readers = min(n_readers, grid.cell.size, m)
    is_reader = (grid.cell.rank < cell_readers) if gridded else is_world_reader
    q = lcfg.n_lambdas
    B1, B2 = lcfg.n_selection_bootstraps, lcfg.n_estimation_bootstraps
    lambdas = lambda_grid_from_max(
        2.0 * lmax_corr, num=q, eps=lcfg.lambda_min_ratio
    )

    rng = np.random.default_rng(lcfg.random_state)
    selection_idx = [
        circular_block_bootstrap(m, rng, block_length=config.block_length)
        for _ in range(B1)
    ]
    estimation_idx = [
        block_train_eval(
            m, rng, block_length=config.block_length, train_frac=lcfg.train_frac
        )
        for _ in range(B2)
    ]

    solver_comm = grid.cell if gridded else comm
    kron_readers = cell_readers if gridded else n_readers

    def lifted_local(idx: np.ndarray):
        """Distributed-Kronecker assembly of the lifted slice for rows idx."""
        if is_reader:
            dk = DistributedKron(
                solver_comm, X[idx], Y[idx], n_readers=kron_readers
            )
        else:
            dk = DistributedKron(solver_comm, None, None, n_readers=kron_readers)
        A_loc, b_loc, _ = dk.build_local()
        dk.close()
        return A_loc, b_loc

    plan = _DistVarPlan(
        comm, grid, config, solver_comm, lifted_local, (m, p, kdim),
        lambdas, selection_idx, estimation_idx,
    )
    hook = CheckpointHook(
        checkpoint,
        clock=comm.clock,
        machine=comm.machine,
        writer=grid.cell.rank == 0,
    )
    tel = _rank_telemetry(telemetry, comm, "distributed_uoi_var")
    hooks = [hook] if tel is None else [hook, tel]
    result = run_plan(plan, SimMpiExecutor.bound(grid), hooks)

    recovered, completed = _reduce_progress(comm, grid, hook.session)

    result.recovered_subproblems = recovered
    result.completed_subproblems = completed
    result.telemetry = tel
    return result


def distributed_cv_lasso(
    comm: SimComm,
    file: SimH5File,
    dataset: str,
    *,
    n_lambdas: int = 16,
    lambda_min_ratio: float = 1e-3,
    k: int = 5,
    rule: str = "min",
    random_state: int = 0,
    rho: float = 1.0,
    max_iter: int = 500,
    adapt_rho: bool = True,
) -> tuple[np.ndarray, float, np.ndarray]:
    """Distributed K-fold cross-validated LASSO (the paper's Fig. 1c).

    The paper reuses the Tier-2 randomized distribution for "data
    randomization for cross validation": fold membership is derived
    from the shared seed, each fold's training rows are delivered by
    one-sided shuffling against the resident Tier-1 blocks, and every
    (fold, λ) problem is solved with consensus ADMM over the whole
    communicator.  Returns ``(beta, lam_star, cv_losses)`` — identical
    on every rank — where ``beta`` is the full-data refit at the
    chosen penalty.

    Parameters mirror :func:`repro.linalg.cv.cv_lasso`; the dataset is
    the paper's ``(n, 1 + p)`` InputData layout (response in column 0).
    """
    from repro.core.bootstrap import iid_bootstrap  # noqa: F401 (doc aid)
    from repro.linalg.cv import kfold_indices

    if rule not in ("min", "1se"):
        raise ValueError(f"rule must be 'min' or '1se', got {rule!r}")
    dist = RandomizedDistributor(comm, file, dataset)
    n, p = dist.n_rows, dist.n_cols - 1
    rng = np.random.default_rng(random_state)
    folds = kfold_indices(n, k, rng)

    y_loc = dist.tier1[:, 0]
    X_loc = dist.tier1[:, 1:]
    corr = comm.allreduce(X_loc.T @ y_loc, SUM)
    lambdas = lambda_grid_from_max(
        2.0 * float(np.max(np.abs(corr))), num=n_lambdas, eps=lambda_min_ratio
    )

    losses = np.empty((k, n_lambdas))
    for f, (train, test) in enumerate(folds):
        train_rows = dist.sample(train)
        test_rows = dist.sample(test)
        X_tr, y_tr = train_rows[:, 1:], train_rows[:, 0]
        X_te, y_te = test_rows[:, 1:], test_rows[:, 0]
        beta = None
        for j, lam in enumerate(lambdas):
            res = consensus_lasso_admm(
                comm, X_tr, y_tr, float(lam),
                rho=rho, max_iter=max_iter, adapt_rho=adapt_rho, beta0=beta,
            )
            beta = res.beta
            resid = y_te - X_te @ beta
            sse = comm.allreduce(float(resid @ resid), SUM)
            losses[f, j] = sse / max(len(test), 1)

    cv_loss = losses.mean(axis=0)
    jmin = int(np.argmin(cv_loss))
    if rule == "1se" and k >= 2:
        se = losses.std(axis=0, ddof=1) / np.sqrt(k)
        j_star = int(np.argmax(cv_loss <= cv_loss[jmin] + se[jmin]))
    else:
        j_star = jmin
    lam_star = float(lambdas[j_star])

    # Full-data refit at the chosen penalty, straight off Tier-1.
    res = consensus_lasso_admm(
        comm, X_loc, y_loc, lam_star,
        rho=rho, max_iter=max_iter, adapt_rho=adapt_rho,
    )
    dist.close()
    return res.beta, lam_star, cv_loss
