"""Serial UoI_LASSO estimator (paper Algorithm 1).

Two Map-Solve-Reduce stages:

* **Model selection** — ``B1`` iid bootstraps x ``q`` penalties solved
  with LASSO-ADMM (warm-started down the λ path); per-λ supports
  intersected across bootstraps into the family ``S``.
* **Model estimation** — ``B2`` train/eval bootstraps; OLS per
  candidate support on the training resample, scored on the held-out
  rows; the per-bootstrap winners averaged into the final model.

This estimator is a thin adapter over the execution engine: the run
is described by :class:`repro.engine.plans.LassoPlan` (which carries
the numerics) and executed by a pluggable backend — serial by
default, or multiprocess/simulated-MPI via ``fit(executor=...)`` /
``REPRO_ENGINE_BACKEND``.  Every backend is bitwise-identical to the
serial reference, which remains what the distributed driver
(:mod:`repro.core.parallel`) is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import UoILassoConfig
from repro.resilience.checkpoint import CheckpointHook, CheckpointPlan

__all__ = ["UoILasso"]


class UoILasso:
    """Union-of-Intersections sparse linear regression.

    Parameters
    ----------
    config:
        Full hyperparameter bundle; ``None`` uses defaults.
    **overrides:
        Convenience keyword overrides applied on top of ``config``
        (e.g. ``UoILasso(n_lambdas=8, random_state=3)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    coef_:
        ``(p,)`` final averaged model.
    intercept_:
        Fitted intercept (0.0 unless ``fit_intercept``).
    lambdas_:
        The λ grid used in selection.
    supports_:
        ``(q, p)`` boolean family of intersected supports.
    losses_:
        ``(B2, q)`` held-out losses from estimation.
    winners_:
        ``(B2,)`` winning support index per estimation bootstrap.
    """

    def __init__(self, config: UoILassoConfig | None = None, **overrides) -> None:
        config = config or UoILassoConfig()
        if overrides:
            config = config.with_(**overrides)
        self.config = config
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.lambdas_: np.ndarray | None = None
        self.supports_: np.ndarray | None = None
        self.losses_: np.ndarray | None = None
        self.winners_: np.ndarray | None = None
        self.recovered_subproblems_: int = 0
        self.completed_subproblems_: int = 0
        #: TelemetryHook from the last fit, or None (telemetry off).
        self.telemetry_ = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        checkpoint: CheckpointPlan | None = None,
        executor=None,
        telemetry=None,
    ) -> "UoILasso":
        """Run selection + estimation on ``(X, y)``; returns ``self``.

        ``checkpoint=`` attaches a
        :class:`~repro.resilience.checkpoint.CheckpointHook` that
        persists each completed bootstrap (the full ``(q, p)`` λ path
        in selection; the estimates and loss row in estimation) so an
        interrupted fit rerun against the same store resumes
        bitwise-identically — all bootstrap draws are made up front
        from the shared ``random_state``, so recovered and solved runs
        share one RNG stream.  Counters land on
        ``recovered_subproblems_`` / ``completed_subproblems_``.

        ``executor=`` selects the engine backend (an
        :class:`~repro.engine.executors.Executor`); ``None`` uses
        :func:`repro.engine.default_executor` — serial unless
        ``REPRO_ENGINE_BACKEND`` says otherwise.  Results are
        bitwise-identical across backends.

        ``telemetry=`` attaches a
        :class:`~repro.telemetry.hook.TelemetryHook` recording
        wall-clock spans for every subproblem: ``True`` for in-memory
        recording, a directory path to also export a JSONL manifest +
        Chrome trace, or ``None`` to consult ``REPRO_TELEMETRY`` (see
        :func:`repro.telemetry.resolve_telemetry`).  The hook lands on
        ``telemetry_`` after the fit; telemetry never changes the
        numerics.
        """
        # Imported here, not at module top: the engine's plans import
        # repro.core's stage kernels, so a module-level import would
        # close a package cycle.
        from repro.engine import LassoPlan, default_executor, run_plan
        from repro.telemetry import resolve_telemetry

        plan = LassoPlan(self.config, X, y)
        hook = CheckpointHook(checkpoint)
        hooks = [hook]
        self.telemetry_ = resolve_telemetry(telemetry, label="uoi_lasso.fit")
        if self.telemetry_ is not None:
            hooks.append(self.telemetry_)
        out = run_plan(
            plan, executor if executor is not None else default_executor(), hooks
        )

        self.coef_ = out.coef
        self.intercept_ = plan.y_mean - float(plan.x_mean @ out.coef)
        self.lambdas_ = out.lambdas
        self.supports_ = out.supports
        self.losses_ = out.losses
        self.winners_ = out.winners
        self.recovered_subproblems_ = hook.recovered
        self.completed_subproblems_ = hook.completed
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted responses for new rows."""
        if self.coef_ is None:
            raise RuntimeError("call fit() before predict()")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on ``(X, y)``."""
        y = np.asarray(y, dtype=float)
        resid = y - self.predict(X)
        denom = float(((y - y.mean()) ** 2).sum())
        if denom == 0.0:
            return 0.0
        return 1.0 - float((resid**2).sum()) / denom

    @property
    def selected_mask_(self) -> np.ndarray:
        """Boolean support of the final model."""
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        return self.coef_ != 0.0
