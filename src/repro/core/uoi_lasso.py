"""Serial UoI_LASSO estimator (paper Algorithm 1).

Two Map-Solve-Reduce stages:

* **Model selection** — ``B1`` iid bootstraps x ``q`` penalties solved
  with LASSO-ADMM (warm-started down the λ path); per-λ supports
  intersected across bootstraps into the family ``S``.
* **Model estimation** — ``B2`` train/eval bootstraps; OLS per
  candidate support on the training resample, scored on the held-out
  rows; the per-bootstrap winners averaged into the final model.

This serial implementation is the numerical reference the distributed
driver (:mod:`repro.core.parallel`) is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.core.bootstrap import bootstrap_train_eval, iid_bootstrap
from repro.core.config import UoILassoConfig
from repro.core.estimation import (
    best_support_per_bootstrap,
    prediction_loss,
    union_average,
)
from repro.core.selection import support_family
from repro.linalg.admm import LassoADMM
from repro.linalg.cd import lasso_cd
from repro.linalg.lambda_grid import lambda_grid
from repro.linalg.ols import ols_on_support
from repro.resilience.checkpoint import CheckpointPlan, CheckpointSession

__all__ = ["UoILasso"]


class UoILasso:
    """Union-of-Intersections sparse linear regression.

    Parameters
    ----------
    config:
        Full hyperparameter bundle; ``None`` uses defaults.
    **overrides:
        Convenience keyword overrides applied on top of ``config``
        (e.g. ``UoILasso(n_lambdas=8, random_state=3)``).

    Attributes (after :meth:`fit`)
    ------------------------------
    coef_:
        ``(p,)`` final averaged model.
    intercept_:
        Fitted intercept (0.0 unless ``fit_intercept``).
    lambdas_:
        The λ grid used in selection.
    supports_:
        ``(q, p)`` boolean family of intersected supports.
    losses_:
        ``(B2, q)`` held-out losses from estimation.
    winners_:
        ``(B2,)`` winning support index per estimation bootstrap.
    """

    def __init__(self, config: UoILassoConfig | None = None, **overrides) -> None:
        config = config or UoILassoConfig()
        if overrides:
            config = config.with_(**overrides)
        self.config = config
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.lambdas_: np.ndarray | None = None
        self.supports_: np.ndarray | None = None
        self.losses_: np.ndarray | None = None
        self.winners_: np.ndarray | None = None
        self.recovered_subproblems_: int = 0
        self.completed_subproblems_: int = 0

    # ------------------------------------------------------------------
    def _solve_path(
        self, X: np.ndarray, y: np.ndarray, lambdas: np.ndarray
    ) -> np.ndarray:
        """LASSO estimates for all λ on one bootstrap sample: ``(q, p)``."""
        cfg = self.config
        q, p = len(lambdas), X.shape[1]
        out = np.empty((q, p))
        if cfg.solver == "admm":
            solver = LassoADMM(
                X,
                y,
                rho=cfg.rho,
                max_iter=cfg.max_iter,
                abstol=cfg.abstol,
                reltol=cfg.reltol,
                adapt_rho=cfg.adapt_rho,
            )
            beta = None
            for j, lam in enumerate(lambdas):
                res = solver.solve(float(lam), beta0=beta)
                beta = res.beta
                out[j] = beta
        else:
            beta = None
            for j, lam in enumerate(lambdas):
                beta = lasso_cd(
                    X, y, float(lam), beta0=beta, max_iter=cfg.max_iter,
                    tol=cfg.cd_tol,
                )
                out[j] = beta
        return out

    def _estimate_family(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        family: np.ndarray,
    ) -> np.ndarray:
        """Per-support OLS with caching of duplicate supports."""
        q, p = family.shape
        out = np.zeros((q, p))
        cache: dict[bytes, np.ndarray] = {}
        for j in range(q):
            key = np.packbits(family[j]).tobytes()
            if key not in cache:
                cache[key] = ols_on_support(X_train, y_train, family[j])
            out[j] = cache[key]
        return out

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        checkpoint: CheckpointPlan | None = None,
    ) -> "UoILasso":
        """Run selection + estimation on ``(X, y)``; returns ``self``.

        ``checkpoint=`` persists each completed bootstrap (the full
        ``(q, p)`` λ path in selection; the estimates and loss row in
        estimation) so an interrupted fit rerun against the same store
        resumes bitwise-identically: the RNG stream is always advanced
        — bootstrap draws are replayed even for recovered records — so
        later draws match the uninterrupted run exactly.  Counters land
        on ``recovered_subproblems_`` / ``completed_subproblems_``.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, p = X.shape
        if y.shape != (n,):
            raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
        cfg = self.config

        x_mean = X.mean(axis=0) if cfg.fit_intercept else np.zeros(p)
        y_mean = float(y.mean()) if cfg.fit_intercept else 0.0
        Xc = X - x_mean
        yc = y - y_mean

        lambdas = lambda_grid(
            Xc, yc, num=cfg.n_lambdas, eps=cfg.lambda_min_ratio
        )
        rng = np.random.default_rng(cfg.random_state)

        ckpt = CheckpointSession(checkpoint)
        ckpt.ensure_meta({
            "kind": "serial_uoi_lasso",
            "n": n,
            "p": p,
            "q": cfg.n_lambdas,
            "B1": cfg.n_selection_bootstraps,
            "B2": cfg.n_estimation_bootstraps,
            "random_state": cfg.random_state,
            "intersection_frac": cfg.intersection_frac,
        })

        # -------------------- model selection --------------------
        B1, q = cfg.n_selection_bootstraps, cfg.n_lambdas
        betas = np.empty((B1, q, p))
        for k in range(B1):
            # Draw even when recovering, to keep the RNG stream aligned
            # with an uninterrupted run.
            idx = iid_bootstrap(n, rng)
            rec = ckpt.lookup(f"serial-sel/k{k}")
            if rec is not None:
                betas[k] = rec["betas"]
            else:
                betas[k] = self._solve_path(Xc[idx], yc[idx], lambdas)
                ckpt.record(f"serial-sel/k{k}", {"betas": betas[k]})
        ckpt.flush()
        family = support_family(betas, frac=cfg.intersection_frac)

        # -------------------- model estimation --------------------
        B2 = cfg.n_estimation_bootstraps
        losses = np.empty((B2, q))
        estimates = np.empty((B2, q, p))
        for k in range(B2):
            train_idx, eval_idx = bootstrap_train_eval(
                n, rng, train_frac=cfg.train_frac
            )
            rec = ckpt.lookup(f"serial-est/k{k}")
            if rec is not None:
                estimates[k] = rec["estimates"]
                losses[k] = rec["losses"]
                continue
            est = self._estimate_family(Xc[train_idx], yc[train_idx], family)
            estimates[k] = est
            for j in range(q):
                losses[k, j] = prediction_loss(Xc[eval_idx], yc[eval_idx], est[j])
            ckpt.record(
                f"serial-est/k{k}", {"estimates": est, "losses": losses[k]}
            )
        ckpt.flush()
        winners = best_support_per_bootstrap(losses, rule=cfg.selection_rule)
        coef = union_average(estimates[np.arange(B2), winners])

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.lambdas_ = lambdas
        self.supports_ = family
        self.losses_ = losses
        self.winners_ = winners
        self.recovered_subproblems_ = ckpt.recovered
        self.completed_subproblems_ = ckpt.completed
        return self

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted responses for new rows."""
        if self.coef_ is None:
            raise RuntimeError("call fit() before predict()")
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on ``(X, y)``."""
        y = np.asarray(y, dtype=float)
        resid = y - self.predict(X)
        denom = float(((y - y.mean()) ** 2).sum())
        if denom == 0.0:
            return 0.0
        return 1.0 - float((resid**2).sum()) / denom

    @property
    def selected_mask_(self) -> np.ndarray:
        """Boolean support of the final model."""
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        return self.coef_ != 0.0
