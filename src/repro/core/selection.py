"""Model selection: the *intersection* step (paper eq. 3).

For every regularization value λ_j, the LASSO support is computed on
each of the ``B1`` selection bootstraps, and the candidate support is
their intersection

    S_j = ∩_{k=1..B1} S_j^k

which strips the false positives individual LASSO fits admit.  The
family ``S = [S_1 ... S_q]`` then feeds model estimation.  Supports
are represented as boolean masks of length ``p`` (feature count), and
per-bootstrap collections as ``(q, p)`` mask matrices — the same
representation the distributed driver AND-reduces across ranks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "support_of",
    "intersect_supports",
    "family_from_counts",
    "support_family",
    "unique_supports",
]


def support_of(beta: np.ndarray, *, tol: float = 0.0) -> np.ndarray:
    """Boolean support mask ``{i : |beta_i| > tol}``."""
    beta = np.asarray(beta)
    if beta.ndim != 1:
        raise ValueError(f"beta must be 1-D, got shape {beta.shape}")
    return np.abs(beta) > tol


def intersect_supports(masks: np.ndarray, *, frac: float = 1.0) -> np.ndarray:
    """Intersection over the leading (bootstrap) axis.

    Parameters
    ----------
    masks:
        ``(B, p)`` or ``(B, q, p)`` boolean array of per-bootstrap
        supports.
    frac:
        *Soft-intersection* threshold in ``(0, 1]``: a feature
        survives when it appears in at least ``ceil(frac * B)``
        bootstraps.  ``frac = 1.0`` (default) is the paper's strict
        intersection (eq. 3); smaller values trade false-negative risk
        against false positives, the generalization offered by the
        reference PyUoI package's ``selection_frac``.

    Returns
    -------
    numpy.ndarray
        ``(p,)`` or ``(q, p)`` intersected mask(s).
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim not in (2, 3):
        raise ValueError(f"masks must be (B, p) or (B, q, p), got {masks.shape}")
    B = masks.shape[0]
    if B < 1:
        raise ValueError("need at least one bootstrap")
    if not (0.0 < frac <= 1.0):
        raise ValueError(f"frac must lie in (0, 1], got {frac}")
    if frac == 1.0:
        return np.logical_and.reduce(masks, axis=0)
    threshold = int(np.ceil(frac * B))
    return masks.sum(axis=0) >= threshold


def family_from_counts(counts: np.ndarray, n_bootstraps: int, *, frac: float = 1.0) -> np.ndarray:
    """Thresholded intersection from per-feature selection *counts*.

    The distributed drivers cannot AND masks directly — each cell only
    solves its owned (bootstrap, λ) pairs — so they SUM-reduce integer
    counts of how many bootstraps kept each feature and threshold here:
    a feature survives when counted in at least ``ceil(frac * B1)``
    bootstraps (``frac = 1.0`` is the paper's strict intersection,
    eq. 3).  Checkpoint recovery reuses the same reduction when folding
    recovered selection records back into a family.

    Parameters
    ----------
    counts:
        ``(q, p)`` (or any-shaped) integer selection counts.
    n_bootstraps:
        ``B1``, the number of bootstraps counted.
    frac:
        Soft-intersection threshold in ``(0, 1]``.
    """
    counts = np.asarray(counts)
    if n_bootstraps < 1:
        raise ValueError("n_bootstraps must be >= 1")
    if not (0.0 < frac <= 1.0):
        raise ValueError(f"frac must lie in (0, 1], got {frac}")
    if np.any(counts < 0) or np.any(counts > n_bootstraps):
        raise ValueError(f"counts must lie in [0, {n_bootstraps}]")
    return counts >= int(np.ceil(frac * n_bootstraps))


def support_family(
    betas: np.ndarray,
    *,
    tol: float = 0.0,
    frac: float = 1.0,
) -> np.ndarray:
    """Per-λ intersected supports from raw bootstrap estimates.

    Parameters
    ----------
    betas:
        ``(B1, q, p)`` LASSO estimates (bootstrap x λ x feature).
    tol:
        Magnitude below which a coefficient counts as zero.
    frac:
        Soft-intersection threshold (see :func:`intersect_supports`).

    Returns
    -------
    numpy.ndarray
        ``(q, p)`` boolean family ``S = [S_1 ... S_q]``.
    """
    betas = np.asarray(betas)
    if betas.ndim != 3:
        raise ValueError(f"betas must be (B1, q, p), got {betas.shape}")
    return intersect_supports(np.abs(betas) > tol, frac=frac)


def unique_supports(family: np.ndarray) -> np.ndarray:
    """Drop duplicate supports from a ``(q, p)`` family, preserving order.

    Nested λ grids frequently repeat supports; estimating each distinct
    support once is an exact optimization (the OLS fit depends only on
    the support).  The all-false support is kept if present — the null
    model is a legitimate candidate.
    """
    family = np.asarray(family, dtype=bool)
    if family.ndim != 2:
        raise ValueError(f"family must be (q, p), got {family.shape}")
    seen: set[bytes] = set()
    keep: list[int] = []
    for j, mask in enumerate(family):
        key = np.packbits(mask).tobytes()
        if key not in seen:
            seen.add(key)
            keep.append(j)
    return family[keep]
