"""Bootstrap resampling for the two UoI stages.

UoI_LASSO resamples iid rows; UoI_VAR must preserve temporal
dependence, so it uses a *circular block bootstrap*: the rows of the
lag matrices (each row already pairs a target ``X_t`` with its ``d``
lags) are resampled in blocks of consecutive rows, wrapping around the
end.  Model estimation additionally needs a held-out evaluation set
per bootstrap (Algorithm 1 lines 14-16, Algorithm 2 lines 16-18):
we split the rows into train/eval groups and bootstrap *within* the
training group, leaving the evaluation rows untouched by resampling.

All draws flow through an explicit ``numpy.random.Generator`` so the
serial and distributed implementations can replay identical samples
from a shared seed — the property the paper's randomized distribution
relies on (every core derives the same global subsample indices).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "iid_bootstrap",
    "bootstrap_train_eval",
    "circular_block_bootstrap",
    "block_train_eval",
    "default_block_length",
]


def iid_bootstrap(n: int, rng: np.random.Generator, *, size: int | None = None) -> np.ndarray:
    """Indices of an iid bootstrap: ``size`` draws from ``[0, n)`` with replacement."""
    if n < 1:
        raise ValueError("n must be >= 1")
    size = n if size is None else size
    if size < 1:
        raise ValueError("size must be >= 1")
    return rng.integers(0, n, size=size)


def bootstrap_train_eval(
    n: int,
    rng: np.random.Generator,
    *,
    train_frac: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """One estimation bootstrap: resampled training rows + held-out rows.

    A random ``train_frac`` of the rows forms the training pool (then
    bootstrapped with replacement to full pool size); the rest is the
    evaluation set, disjoint from training so the prediction loss in
    Algorithm 1 line 19 is honest.
    """
    if n < 2:
        raise ValueError("need n >= 2 to split train/eval")
    if not (0 < train_frac < 1):
        raise ValueError("train_frac must lie in (0, 1)")
    perm = rng.permutation(n)
    n_train = max(1, min(n - 1, int(round(train_frac * n))))
    train_pool = perm[:n_train]
    eval_idx = np.sort(perm[n_train:])
    train_idx = train_pool[rng.integers(0, n_train, size=n_train)]
    return train_idx, eval_idx


def default_block_length(n: int) -> int:
    """Rate-optimal block length ``ceil(n ** (1/3))`` for ``n`` rows."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, math.ceil(n ** (1.0 / 3.0)))


def circular_block_bootstrap(
    n: int,
    rng: np.random.Generator,
    *,
    block_length: int | None = None,
    size: int | None = None,
) -> np.ndarray:
    """Circular block bootstrap indices over ``[0, n)``.

    Random block start positions are drawn uniformly; each block
    contributes ``block_length`` consecutive indices (mod ``n``), and
    blocks are concatenated until ``size`` indices are collected (the
    tail block is truncated).  Consecutive in-block indices preserve
    the local temporal dependence the paper's VAR bootstrap needs.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    L = default_block_length(n) if block_length is None else block_length
    if L < 1:
        raise ValueError("block_length must be >= 1")
    L = min(L, n)
    size = n if size is None else size
    if size < 1:
        raise ValueError("size must be >= 1")
    n_blocks = math.ceil(size / L)
    starts = rng.integers(0, n, size=n_blocks)
    idx = (starts[:, None] + np.arange(L)[None, :]) % n
    return idx.reshape(-1)[:size]


def block_train_eval(
    n: int,
    rng: np.random.Generator,
    *,
    block_length: int | None = None,
    train_frac: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Estimation-stage block bootstrap with a held-out block segment.

    The row range is cut into contiguous train/eval segments at a
    random offset (keeping both segments temporally contiguous), the
    training segment is block-bootstrapped, and the evaluation segment
    is returned as-is.
    """
    if n < 4:
        raise ValueError("need n >= 4 to split train/eval blocks")
    if not (0 < train_frac < 1):
        raise ValueError("train_frac must lie in (0, 1)")
    L = default_block_length(n) if block_length is None else block_length
    n_train = max(2, min(n - 2, int(round(train_frac * n))))
    offset = int(rng.integers(0, n))
    ring = (offset + np.arange(n)) % n
    train_pool = np.sort(ring[:n_train])
    eval_idx = np.sort(ring[n_train:])
    picks = circular_block_bootstrap(
        n_train, rng, block_length=min(L, n_train), size=n_train
    )
    return train_pool[picks], eval_idx
