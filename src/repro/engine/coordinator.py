"""Transport-agnostic coordinator for the execution engine.

PR 7 splits every backend into two layers:

* a **Coordinator** (this module) that owns the orchestration
  invariants — the work queue of warm-start chains, lease-based
  assignment, completion tracking (optionally persisted to a
  :class:`~repro.resilience.checkpoint.CheckpointStore`), straggler
  speculation, and the deterministic hook replay that keeps results
  bitwise identical across backends; and
* a pluggable :class:`WorkerTransport` that only knows how to *run a
  chain somewhere* — in-process (serial), on a local process pool
  (multiprocess), on simulated MPI ranks (simmpi), or on out-of-process
  socket workers (:mod:`repro.engine.elastic`).

The unit of assignment is the warm-start **chain** (tasks in one chain
share bootstrap data and λ-path warm starts and must run in order on
one worker; chains are independent by the plan contract).  Each
dispatched chain holds a :class:`Lease`; the coordinator enforces that
active leases never overlap — two non-speculative leases covering the
same subproblem key violate the same disjoint-ownership invariant
PLAN404 proves for process grids, and are rejected through
:func:`repro.analysis.planver.verify_lease_disjointness` (PLAN405).

Transports come in three shapes, each driven differently but all
funnelled through the same lookup/replay path (which is what makes the
backends bit-identical):

* ``inline`` — the chain runs synchronously on the calling thread and
  hooks fire mid-chain, exactly like the legacy ``SerialExecutor``;
* ``batched`` — every pending chain is handed over at once (simmpi:
  one SPMD launch per stage, chain *i* on rank ``i % nranks``);
* streaming (default) — chains are dispatched as worker slots free
  up and completions arrive as :class:`TransportEvent`\\ s; workers may
  join and leave mid-stage (elastic), a departed worker's leases are
  requeued with their streamed partial results recovered from the
  buffer / checkpoint store, and stragglers past a telemetry-derived
  percentile are speculatively re-issued to idle workers.

Determinism: all of this only changes *where and when* chains run.
Plans are pure (randomness pre-drawn, ``run_chain`` deterministic),
results are keyed by subproblem, and hook replay happens in the
parent in chain order — so leases, reassignment and speculation are
invisible in the output bits.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.engine.hooks import HookList
from repro.engine.plan import Subproblem, UoIPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dynamic import DynamicChecker
    from repro.resilience.checkpoint import CheckpointStore
    from repro.telemetry.recorder import Recorder

#: The engine's result currency: one checkpointable payload per task.
Payload = dict[str, np.ndarray]

__all__ = [
    "Payload",
    "Lease",
    "TransportEvent",
    "WorkerTransport",
    "SpeculationPolicy",
    "Coordinator",
    "annotate_failure",
    "lookup_chain",
    "worker_utilization",
    "WorkerUtilization",
]

#: Telemetry span/counter category for lease accounting.
_DISTRIBUTION = "distribution"


def annotate_failure(
    exc: BaseException,
    backend: str,
    stage: str,
    tasks: Sequence[Subproblem] | None = None,
) -> BaseException:
    """Attach engine context to an exception (PEP 678 note).

    The note names the executing backend and the plan position —
    stage plus the subproblem keys of the failing chain — so aggregated
    reports (:class:`~repro.simmpi.executor.SpmdError`,
    ``failed_ranks``) identify exactly which subproblem died where.
    """
    where = f"engine backend={backend} stage={stage}"
    if tasks:
        keys = ", ".join(t.key for t in tasks)
        where += f" subproblems [{keys}]"
    try:
        exc.add_note(where)
    except Exception:  # pragma: no cover - non-standard exception types
        pass
    return exc


def lookup_chain(
    chain: Sequence[Subproblem], hooks: HookList
) -> dict[str, Payload]:
    """Recovered payloads for a chain (hook dispatch included)."""
    recovered: dict[str, Payload] = {}
    for task in chain:
        payload = hooks.lookup(task)
        if payload is not None:
            recovered[task.key] = payload
    return recovered


@dataclass
class Lease:
    """One outstanding assignment: a chain granted to one worker.

    ``speculative`` marks a duplicate re-issue of a straggling chain;
    a chain may hold one primary lease plus speculative copies, never
    two primaries (PLAN405).
    """

    id: int
    chain_index: int
    keys: tuple[str, ...]
    worker: str
    issued_at: float
    speculative: bool = False

    def describe(self) -> str:
        keys = ", ".join(self.keys)
        return f"chain {self.chain_index} [{keys}] leased to {self.worker}"


@dataclass
class TransportEvent:
    """One observation from a streaming transport.

    ``kind`` is one of ``"result"`` (a lease's chain finished;
    ``payloads`` carries the solved table unless it was streamed
    task-by-task), ``"task"`` (one streamed subproblem payload),
    ``"error"`` (an exception escaped plan code), ``"join"`` /
    ``"leave"`` (elastic fleet membership), ``"idle"`` (nothing
    happened within the poll tick).
    """

    kind: str
    lease_id: int | None = None
    worker: str | None = None
    key: str | None = None
    payloads: dict[str, Payload] | None = None
    error: BaseException | None = None
    #: worker-side recorder snapshot shipped with a ``"result"``
    #: (:func:`repro.telemetry.recorder.export_snapshot`) — solver
    #: counters/spans recorded in the worker process.
    telemetry: dict | None = None


class WorkerTransport:
    """Where chains run.  The coordinator owns everything else.

    Exactly one of the three shapes applies:

    * ``inline=True`` — implement :meth:`run_inline`;
    * ``batched=True`` — implement :meth:`run_batch`;
    * streaming (both False) — implement :meth:`open`,
      :meth:`idle_workers`, :meth:`dispatch`, :meth:`collect`,
      :meth:`close`.
    """

    #: Backend name used in failure attribution and CLI listings.
    name = "abstract"
    inline = False
    batched = False
    #: Streaming transports whose fleet can change mid-run.
    elastic = False

    # ------------------------------------------------------- inline shape
    def run_inline(
        self,
        plan: UoIPlan,
        stage: str,
        chain: Sequence[Subproblem],
        recovered: dict[str, Payload],
        emit: Callable[[Subproblem, Payload], None],
    ) -> None:
        raise NotImplementedError

    # ------------------------------------------------------- batched shape
    def run_batch(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        pending: list[int],
        recovered_by_chain: list[dict[str, Payload]],
    ) -> dict[str, Payload]:
        raise NotImplementedError

    def placement(self, chain_index: int) -> str:
        """Worker label a batched transport assigns to a chain."""
        return self.name

    # ----------------------------------------------------- streaming shape
    def open(self, plan: UoIPlan, stage: str, n_pending: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def workers(self) -> list[str]:
        raise NotImplementedError

    def idle_workers(self) -> list[str]:
        raise NotImplementedError

    def dispatch(
        self, lease: Lease, chain_index: int, recovered: dict[str, Payload]
    ) -> None:
        raise NotImplementedError

    def collect(self, timeout: float) -> TransportEvent:
        raise NotImplementedError


@dataclass
class SpeculationPolicy:
    """When to re-issue a straggling lease to an idle worker.

    A lease is a straggler once its age exceeds
    ``max(min_seconds, factor * percentile(completed durations))``,
    with at least ``min_samples`` completed chains informing the
    percentile (the durations come from the coordinator's own lease
    telemetry).  ``enabled=False`` turns the policy off while keeping
    the accounting, which is what the straggler benchmark compares.
    """

    enabled: bool = True
    percentile: float = 95.0
    factor: float = 2.0
    min_seconds: float = 0.25
    min_samples: int = 3

    def threshold(self, durations: Sequence[float]) -> float | None:
        """Straggler age cutoff, or ``None`` while underinformed."""
        if not self.enabled or len(durations) < self.min_samples:
            return None
        pct = float(np.percentile(np.asarray(durations, dtype=float),
                                  self.percentile))
        return max(self.min_seconds, self.factor * pct)


class Coordinator:
    """Drive one stage of a plan over a :class:`WorkerTransport`.

    Parameters
    ----------
    transport:
        Where chains run.
    store:
        Optional :class:`CheckpointStore` backing completion tracking:
        streamed per-task payloads are persisted as they arrive, and a
        departed worker's requeued chain recovers its completed prefix
        from the buffer/store instead of recomputing it.
    speculation:
        Straggler policy for elastic transports (default: enabled with
        :class:`SpeculationPolicy` defaults).
    checker:
        Optional :class:`~repro.analysis.dynamic.DynamicChecker`; a
        stalled fleet (no progress within ``stall_timeout``) is
        reported through ``on_lease_stall`` (DYN205) before the run
        aborts — the worker-lease generalization of the DYN204
        deadlock report.
    stall_timeout:
        Seconds without any completion/partial/join before the run is
        declared stalled.
    tick:
        Streaming poll granularity in seconds.
    """

    def __init__(
        self,
        transport: WorkerTransport,
        *,
        store: "CheckpointStore | None" = None,
        speculation: SpeculationPolicy | None = None,
        checker: "DynamicChecker | None" = None,
        stall_timeout: float = 120.0,
        tick: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.transport = transport
        self.store = store
        self.speculation = speculation or SpeculationPolicy()
        self.checker = checker
        self.stall_timeout = stall_timeout
        self.tick = tick
        self.clock = clock
        self._next_lease_id = 0
        #: Cumulative orchestration statistics (reset per coordinator).
        self.stats: dict[str, int] = {
            "leases": 0,
            "speculative": 0,
            "reassigned": 0,
            "joins": 0,
            "leaves": 0,
        }

    # ----------------------------------------------------------- helpers
    def _recorder(self) -> "Recorder | None":
        from repro.telemetry.recorder import current_recorder

        return current_recorder()

    def _now(self) -> float:
        rec = self._recorder()
        return rec.now() if rec is not None else self.clock()

    def _record_lease_span(
        self, lease: Lease, stage: str, end: float, outcome: str
    ) -> None:
        rec = self._recorder()
        if rec is None:
            return
        rec.add_span(
            f"lease:{lease.keys[0]}",
            _DISTRIBUTION,
            lease.issued_at,
            end,
            type="worker_lease",
            worker=lease.worker,
            stage=stage,
            chain=lease.chain_index,
            speculative=lease.speculative,
            outcome=outcome,
        )

    def _count(self, name: str, delta: float = 1.0) -> None:
        rec = self._recorder()
        if rec is not None:
            rec.count(name, delta)

    def _issue(
        self,
        chain_index: int,
        keys: tuple[str, ...],
        worker: str,
        active: dict[int, Lease],
        *,
        speculative: bool = False,
    ) -> Lease:
        """Create a lease, enforcing PLAN405 disjointness on issue."""
        lease = Lease(
            id=self._next_lease_id,
            chain_index=chain_index,
            keys=keys,
            worker=worker,
            issued_at=self._now(),
            speculative=speculative,
        )
        self._next_lease_id += 1
        from repro.analysis.planver import assert_disjoint_leases

        assert_disjoint_leases(list(active.values()) + [lease])
        active[lease.id] = lease
        self.stats["leases"] += 1
        if speculative:
            self.stats["speculative"] += 1
            self._count("engine.leases.speculative")
        self._count("engine.leases.issued")
        return lease

    # --------------------------------------------------------- entry point
    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        if self.transport.inline:
            return self._run_inline(plan, stage, chains, hooks)
        if self.transport.batched:
            return self._run_batched(plan, stage, chains, hooks)
        return self._run_streaming(plan, stage, chains, hooks)

    # ------------------------------------------------------------- inline
    def _run_inline(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        """Serial shape: lookup/run/hook per chain, in order, hooks
        firing at per-subproblem cadence (the reference semantics).

        No leases, no spans: there is exactly one "worker" — the
        calling thread — so lease accounting would be pure noise and
        the legacy serial telemetry profile must not change.
        """
        results: dict[str, Payload] = {}
        for chain in chains:
            recovered = lookup_chain(chain, hooks)
            for task in chain:
                if task.key in recovered:
                    results[task.key] = recovered[task.key]
                    hooks.on_subproblem_done(
                        task, recovered[task.key], recovered=True
                    )
            if len(recovered) == len(chain):
                continue

            def emit(
                task: Subproblem,
                payload: Payload,
                _results: dict[str, Payload] = results,
            ) -> None:
                _results[task.key] = payload
                hooks.on_subproblem_done(task, payload, recovered=False)

            try:
                self.transport.run_inline(plan, stage, chain, recovered, emit)
            except BaseException as exc:
                annotate_failure(exc, self.transport.name, stage, list(chain))
                raise
        return results

    # ------------------------------------------------------------ batched
    def _run_batched(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        """simmpi shape: one launch per stage, results gathered, hooks
        replayed in deterministic chain order by the coordinator."""
        recovered_by_chain, pending = self._lookup_all(chains, hooks)
        computed: dict[str, Payload] = {}
        if pending:
            active: dict[int, Lease] = {}
            leases = [
                self._issue(
                    ci,
                    tuple(t.key for t in chains[ci]),
                    self.transport.placement(ci),
                    active,
                )
                for ci in pending
            ]
            computed = self.transport.run_batch(
                plan, stage, chains, pending, recovered_by_chain
            )
            end = self._now()
            for lease in leases:
                self._record_lease_span(lease, stage, end, "completed")
        return self._replay(
            chains, hooks, recovered_by_chain, self._split(chains, computed)
        )

    # ---------------------------------------------------------- streaming
    def _run_streaming(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        recovered_by_chain, pending = self._lookup_all(chains, hooks)
        computed: dict[int, dict[str, Payload]] = {}
        telemetry_by_chain: dict[int, dict] = {}
        if pending:
            self.transport.open(plan, stage, len(pending))
            try:
                self._drive(
                    plan, stage, chains, pending, recovered_by_chain,
                    computed, telemetry_by_chain,
                )
            finally:
                self.transport.close()
            self._merge_worker_telemetry(telemetry_by_chain)
        return self._replay(chains, hooks, recovered_by_chain, computed)

    def _merge_worker_telemetry(
        self, telemetry_by_chain: dict[int, dict]
    ) -> None:
        """Fold worker-side recorder snapshots into the run's recorder.

        Merged in chain-index order — not completion order — so
        counter totals, gauge last-writes and span sequence are
        deterministic whatever the fleet did.
        """
        rec = self._recorder()
        if rec is None:
            return
        from repro.telemetry.recorder import merge_snapshot

        for ci in sorted(telemetry_by_chain):
            merge_snapshot(rec, telemetry_by_chain[ci])

    def _drive(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        pending: list[int],
        recovered_by_chain: list[dict[str, Payload]],
        computed: dict[int, dict[str, Payload]],
        telemetry_by_chain: dict[int, dict],
    ) -> None:
        """The streaming loop: assign → collect → account, until every
        pending chain has a completed result table."""
        queue: deque[int] = deque(pending)
        active: dict[int, Lease] = {}
        #: chain -> streamed per-task payloads (the completion tracker;
        #: mirrored to the checkpoint store when one is attached).
        partial: dict[int, dict[str, Payload]] = {ci: {} for ci in pending}
        #: lease id -> (lease, exception) for failed leases.  Errors
        #: are not raised on arrival: concurrent chains finish in
        #: wall-clock order, so the first error event is not always the
        #: first *issued* chain that failed.  We hold failures until no
        #: older lease is outstanding and raise the lowest lease id —
        #: the same attribution a serial in-order run would produce.
        errors: dict[int, tuple[Lease | None, BaseException]] = {}
        durations: list[float] = []
        todo = set(pending)
        last_progress = self.clock()

        def finish_chain(ci: int, table: dict[str, Payload]) -> None:
            computed[ci] = table
            todo.discard(ci)

        def raise_failure(lease: Lease | None, exc: BaseException) -> None:
            chain = (
                list(chains[lease.chain_index]) if lease is not None else None
            )
            if "engine backend=" not in "".join(
                getattr(exc, "__notes__", ())
            ):
                annotate_failure(exc, self.transport.name, stage, chain)
            raise exc

        while todo:
            # ---------------------------------------------- assignment
            idle = list(self.transport.idle_workers())
            while queue and idle and not errors:
                ci = queue.popleft()
                if ci in computed:
                    continue
                table = self._known_payloads(ci, chains[ci], partial)
                if len(table) == len(chains[ci]):
                    # Fully recovered from streamed partials (a worker
                    # died between its last task and its done frame).
                    finish_chain(ci, table)
                    continue
                worker = idle.pop(0)
                lease = self._issue(
                    ci, tuple(t.key for t in chains[ci]), worker, active
                )
                recovered = dict(recovered_by_chain[ci])
                recovered.update(table)
                self.transport.dispatch(lease, ci, recovered)
            # --------------------------------------------- speculation
            if not queue and idle and not errors:
                self._maybe_speculate(
                    chains, active, durations, computed, idle,
                    recovered_by_chain, partial,
                )
            # ------------------------------------------------- collect
            event = self.transport.collect(self.tick)
            now = self.clock()
            event_lease = -1 if event.lease_id is None else event.lease_id
            if event.kind == "task":
                lease = active.get(event_lease)
                if lease is not None and event.key is not None:
                    payload = (event.payloads or {}).get(event.key, {})
                    self._note_partial(lease.chain_index, event.key,
                                       payload, partial)
                    last_progress = now
            elif event.kind == "result":
                lease = active.pop(event_lease, None)
                if lease is None:
                    continue  # stale completion from a speculation loser
                ci = lease.chain_index
                table = dict(partial.get(ci, {}))
                if event.payloads:
                    table.update(event.payloads)
                if ci not in computed:
                    durations.append(self._now() - lease.issued_at)
                    finish_chain(ci, table)
                    if event.telemetry is not None:
                        telemetry_by_chain[ci] = event.telemetry
                self._record_lease_span(lease, stage, self._now(),
                                        "completed")
                # Siblings racing this chain are now moot, and so is
                # any held failure from an earlier attempt at it —
                # first successful result wins.
                for sibling in [
                    lease2
                    for lease2 in active.values()
                    if lease2.chain_index == ci
                ]:
                    active.pop(sibling.id, None)
                    self._record_lease_span(sibling, stage, self._now(),
                                            "superseded")
                for lid in [
                    lid
                    for lid, (failed, _) in errors.items()
                    if failed is not None and failed.chain_index == ci
                ]:
                    errors.pop(lid)
                last_progress = now
            elif event.kind == "error":
                exc = event.error or RuntimeError("worker error")
                lease = active.pop(event_lease, None)
                if lease is None:
                    # Stale: the lease was superseded by a sibling's
                    # result or reassigned after its worker left — the
                    # chain is done or re-running, either way this
                    # failure no longer matters.
                    continue
                self._record_lease_span(lease, stage, self._now(), "failed")
                errors[lease.id] = (lease, exc)
                last_progress = now
            elif event.kind == "leave":
                self.stats["leaves"] += 1
                self._count("engine.workers.left")
                for lost in [
                    lease2
                    for lease2 in active.values()
                    if lease2.worker == event.worker
                ]:
                    active.pop(lost.id, None)
                    self._record_lease_span(lost, stage, self._now(),
                                            "reassigned")
                    ci = lost.chain_index
                    still_leased = any(
                        lease2.chain_index == ci for lease2 in active.values()
                    )
                    if ci in todo and not still_leased and ci not in queue:
                        # Contained fault: requeue; the completed prefix
                        # is recovered from partial/store, not recomputed.
                        queue.appendleft(ci)
                        self.stats["reassigned"] += 1
                        self._count("engine.leases.reassigned")
                last_progress = now
            elif event.kind == "join":
                self.stats["joins"] += 1
                self._count("engine.workers.joined")
                last_progress = now
            # ------------------------------------------------- failure
            if errors:
                min_id = min(errors)
                if not any(
                    lease2.id < min_id for lease2 in active.values()
                ):
                    raise_failure(*errors[min_id])
            # --------------------------------------------------- stall
            if todo and now - last_progress > self.stall_timeout:
                if errors:
                    # An older lease hung while we were draining; the
                    # held failure beats a generic stall report.
                    raise_failure(*errors[min(errors)])
                self._report_stall(active, queue)

    def _maybe_speculate(
        self,
        chains: list[list[Subproblem]],
        active: dict[int, Lease],
        durations: list[float],
        computed: dict[int, dict[str, Payload]],
        idle: list[str],
        recovered_by_chain: list[dict[str, Payload]],
        partial: dict[int, dict[str, Payload]],
    ) -> None:
        threshold = self.speculation.threshold(durations)
        if threshold is None:
            return
        now = self._now()
        stragglers = sorted(
            (
                lease
                for lease in active.values()
                if not lease.speculative
                and now - lease.issued_at > threshold
                and lease.chain_index not in computed
                and sum(
                    1
                    for lease2 in active.values()
                    if lease2.chain_index == lease.chain_index
                )
                == 1
            ),
            key=lambda lease: lease.issued_at,
        )
        for lease in stragglers:
            if not idle:
                return
            worker = idle.pop(0)
            if worker == lease.worker:  # pragma: no cover - defensive
                continue
            ci = lease.chain_index
            duplicate = self._issue(
                ci, lease.keys, worker, active, speculative=True
            )
            recovered = dict(recovered_by_chain[ci])
            recovered.update(self._known_payloads(ci, chains[ci], partial))
            self.transport.dispatch(duplicate, ci, recovered)

    # ------------------------------------------------- completion tracking
    def _note_partial(
        self,
        chain_index: int,
        key: str,
        payload: Payload,
        partial: dict[int, dict[str, Payload]],
    ) -> None:
        table = partial.setdefault(chain_index, {})
        if key in table:
            return  # speculation duplicate: identical bits by purity
        table[key] = payload
        if self.store is not None:
            self.store.save(key, payload)

    def _known_payloads(
        self,
        chain_index: int,
        chain: list[Subproblem],
        partial: dict[int, dict[str, Payload]],
    ) -> dict[str, Payload]:
        """Streamed partials, topped up from the checkpoint store."""
        table = dict(partial.get(chain_index, {}))
        if self.store is not None:
            for task in chain:
                if task.key not in table and task.key in self.store:
                    loaded = self.store.load(task.key)
                    if loaded is not None:
                        table[task.key] = loaded
        return table

    def _report_stall(
        self, active: dict[int, Lease], queue: deque[int]
    ) -> None:
        stalled = {
            lease.worker: lease.describe() for lease in active.values()
        }
        workers = self.transport.workers()
        reason = (
            f"no progress within {self.stall_timeout:.3g}s: "
            f"{len(active)} active lease(s), {len(queue)} queued chain(s), "
            f"{len(workers)} connected worker(s)"
        )
        if self.checker is not None:
            self.checker.on_lease_stall(
                stalled or {"<fleet>": "no active leases"}, reason
            )
        raise RuntimeError(f"engine stage stalled — {reason}")

    # --------------------------------------------------------- replay path
    def _lookup_all(
        self, chains: list[list[Subproblem]], hooks: HookList
    ) -> tuple[list[dict[str, Payload]], list[int]]:
        recovered_by_chain: list[dict[str, Payload]] = []
        pending: list[int] = []
        for ci, chain in enumerate(chains):
            recovered = lookup_chain(chain, hooks)
            recovered_by_chain.append(recovered)
            if len(recovered) < len(chain):
                pending.append(ci)
        return recovered_by_chain, pending

    @staticmethod
    def _split(
        chains: list[list[Subproblem]], computed: dict[str, Payload]
    ) -> dict[int, dict[str, Payload]]:
        """Flat key->payload table -> per-chain tables (batched shape)."""
        out: dict[int, dict[str, Payload]] = {}
        for ci, chain in enumerate(chains):
            table = {
                t.key: computed[t.key] for t in chain if t.key in computed
            }
            if table:
                out[ci] = table
        return out

    @staticmethod
    def _replay(
        chains: list[list[Subproblem]],
        hooks: HookList,
        recovered_by_chain: list[dict[str, Payload]],
        computed: dict[int, dict[str, Payload]],
    ) -> dict[str, Payload]:
        """Deterministic hook replay + result assembly, in chain order.

        This is the invariant that makes every deferred backend bitwise
        identical to serial: whatever order chains completed in, hooks
        fire and results assemble in plan enumeration order.
        """
        results: dict[str, Payload] = {}
        for ci, chain in enumerate(chains):
            recovered = recovered_by_chain[ci]
            solved = computed.get(ci, {})
            for task in chain:
                if task.key in recovered:
                    results[task.key] = recovered[task.key]
                    hooks.on_subproblem_done(
                        task, recovered[task.key], recovered=True
                    )
                else:
                    results[task.key] = solved[task.key]
                    hooks.on_subproblem_done(
                        task, solved[task.key], recovered=False
                    )
        return results


@dataclass
class WorkerUtilization:
    """Per-worker busy-time summary derived from lease spans."""

    worker: str
    leases: int = 0
    speculative: int = 0
    busy_seconds: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)


def worker_utilization(recorder: "Recorder") -> dict[str, object]:
    """Summarize ``lease:*`` spans into a per-worker utilization table.

    Returns ``{"workers": {worker: {...}}, "wall_seconds", "busy_seconds",
    "utilization"}`` where utilization is aggregate busy time over
    ``wall window x workers`` — the fleet-level health view the
    elastic CLI and tests read.
    """
    spans = recorder.spans_named("lease:")
    per: dict[str, WorkerUtilization] = {}
    t0 = min((s.start for s in spans), default=0.0)
    t1 = max((s.end for s in spans), default=0.0)
    for span in spans:
        worker = str(span.attrs.get("worker", "?"))
        util = per.setdefault(worker, WorkerUtilization(worker=worker))
        util.leases += 1
        if span.attrs.get("speculative"):
            util.speculative += 1
        util.busy_seconds += span.duration
        outcome = str(span.attrs.get("outcome", "unknown"))
        util.outcomes[outcome] = util.outcomes.get(outcome, 0) + 1
    wall = max(t1 - t0, 0.0)
    busy = sum(u.busy_seconds for u in per.values())
    denominator = wall * len(per)
    return {
        "workers": {
            worker: {
                "leases": u.leases,
                "speculative": u.speculative,
                "busy_seconds": round(u.busy_seconds, 6),
                "outcomes": dict(sorted(u.outcomes.items())),
            }
            for worker, u in sorted(per.items())
        },
        "wall_seconds": round(wall, 6),
        "busy_seconds": round(busy, 6),
        "utilization": round(busy / denominator, 6) if denominator else 0.0,
    }
