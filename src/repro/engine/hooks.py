"""Observer hooks for the UoI execution engine.

Cross-cutting concerns — checkpoint/restart, progress reporting,
tracing, fault accounting — attach to a run through one
:class:`EngineHook` interface instead of being wired into each of the
four drivers separately.  The engine guarantees the call order:

1. ``on_run_start(plan, executor)`` — once, before any stage.
2. Per task, exactly one of:
   * ``lookup(task)`` returned a payload → the task is *recovered*;
     ``on_subproblem_done(task, payload, recovered=True)`` fires
     without the task being solved;
   * the task was solved → ``on_subproblem_done(task, payload,
     recovered=False)`` fires as the task completes (per-subproblem
     cadence, not batched per stage).
3. ``on_stage_end(stage, plan)`` — after every task of the stage, and
   crucially *before* the stage's reduction: a checkpoint hook flushes
   here, so solved state is durable before the run re-enters the
   world collectives (the same ordering the legacy drivers used).
4. ``on_run_end(plan)`` — once, after the final stage reduced.

``lookup`` is how resume works: the first hook returning a payload
wins, and the engine treats the task as already solved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.executors import Executor
    from repro.engine.plan import Subproblem, UoIPlan

__all__ = ["EngineHook", "HookList", "RecordingHook", "ProgressHook"]


class EngineHook:
    """Base hook: every callback is a no-op; override what you need."""

    def on_run_start(self, plan: "UoIPlan", executor: "Executor") -> None:
        """Called once before the first stage."""

    def lookup(self, task: "Subproblem") -> dict[str, np.ndarray] | None:
        """Recovered payload for ``task``, or ``None`` to solve it."""
        return None

    def on_subproblem_done(
        self,
        task: "Subproblem",
        payload: dict[str, np.ndarray],
        *,
        recovered: bool,
    ) -> None:
        """Called once per task, solved (``recovered=False``) or not."""

    def on_stage_end(self, stage: str, plan: "UoIPlan") -> None:
        """Called after a stage's last task, before its reduction."""

    def on_run_end(self, plan: "UoIPlan") -> None:
        """Called once after the final stage reduced."""


class HookList(EngineHook):
    """Fan-out composite: dispatches each callback to every child.

    ``lookup`` returns the first child's non-``None`` payload (a
    recovered task is recovered once, whoever restored it).
    """

    def __init__(self, hooks: Iterable[EngineHook] = ()) -> None:
        self.hooks: list[EngineHook] = list(hooks)

    def on_run_start(self, plan: "UoIPlan", executor: "Executor") -> None:
        for h in self.hooks:
            h.on_run_start(plan, executor)

    def lookup(self, task: "Subproblem") -> dict[str, np.ndarray] | None:
        for h in self.hooks:
            payload = h.lookup(task)
            if payload is not None:
                return payload
        return None

    def on_subproblem_done(
        self,
        task: "Subproblem",
        payload: dict[str, np.ndarray],
        *,
        recovered: bool,
    ) -> None:
        for h in self.hooks:
            h.on_subproblem_done(task, payload, recovered=recovered)

    def on_stage_end(self, stage: str, plan: "UoIPlan") -> None:
        for h in self.hooks:
            h.on_stage_end(stage, plan)

    def on_run_end(self, plan: "UoIPlan") -> None:
        for h in self.hooks:
            h.on_run_end(plan)


class RecordingHook(EngineHook):
    """Test/diagnostic hook: records every callback as an event tuple.

    Events are ``("run_start", kind)``, ``("done", key, recovered)``,
    ``("stage_end", stage)``, ``("run_end", kind)`` — enough to assert
    the engine's dispatch contract without depending on payloads.
    """

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def on_run_start(self, plan: "UoIPlan", executor: "Executor") -> None:
        self.events.append(("run_start", plan.kind))

    def on_subproblem_done(
        self,
        task: "Subproblem",
        payload: dict[str, np.ndarray],
        *,
        recovered: bool,
    ) -> None:
        self.events.append(("done", task.key, recovered))

    def on_stage_end(self, stage: str, plan: "UoIPlan") -> None:
        self.events.append(("stage_end", stage))

    def on_run_end(self, plan: "UoIPlan") -> None:
        self.events.append(("run_end", plan.kind))


class ProgressHook(EngineHook):
    """Counts per-stage completions; optionally reports via callback.

    ``callback(stage, done, total)`` fires after every completed task
    (total comes from the plan's own enumeration at run start).
    """

    def __init__(
        self, callback: Callable[[str, int, int], None] | None = None
    ) -> None:
        self.callback = callback
        self.totals: dict[str, int] = {}
        self.done: dict[str, int] = {}

    def on_run_start(self, plan: "UoIPlan", executor: "Executor") -> None:
        desc = plan.describe()
        self.totals = {
            stage: info["subproblems"] for stage, info in desc["stages"].items()
        }
        self.done = {stage: 0 for stage in self.totals}

    def on_subproblem_done(
        self,
        task: "Subproblem",
        payload: dict[str, np.ndarray],
        *,
        recovered: bool,
    ) -> None:
        self.done[task.stage] = self.done.get(task.stage, 0) + 1
        if self.callback is not None:
            self.callback(
                task.stage, self.done[task.stage], self.totals.get(task.stage, 0)
            )
