"""The ``elastic`` backend: out-of-process socket workers.

This is the engine's first backend whose compute does not live in the
parent process.  A :class:`WorkerHub` listens on localhost; worker
processes (``python -m repro workers join``) connect over the same
line-JSON framing the service front end speaks
(:class:`repro.wire.LineChannel`, ndarrays via the shared
:mod:`repro.wire` codec, so results cross the wire **bitwise**).

Protocol (one persistent connection per worker):

* worker → ``{"op": "join", "worker": <name>}``; hub →
  ``{"op": "welcome", "worker": <final name>}`` — the rank-join
  handshake; a worker may attach at any point, including mid-stage,
  and immediately receives the current stage frame.
* hub → ``{"op": "stage", "blob": <b64 pickle (plan, stage, chains)>}``
  once per stage (plans are pickled exactly as the multiprocess
  backend does; peers are spawned by this run and trusted).
* hub → ``{"op": "run", "lease": id, "chain": ci, "recovered": ...}``;
  worker streams ``{"op": "task", "lease", "key", "payload"}`` per
  solved subproblem and finishes with ``{"op": "done", "lease"}`` —
  or ``{"op": "error", "lease", "blob": <pickled exception>}``.
* a dropped connection is a **leave**: the coordinator requeues the
  worker's leased chains, topping up from streamed partials and the
  checkpoint store, so a mid-run kill is a contained fault.
* ``{"op": "inspect"}`` on a fresh connection returns fleet status
  (the ``repro workers inspect`` CLI).

:class:`ElasticExecutor` owns a hub plus a spawned local fleet and
plugs into the engine like any other backend; with
``REPRO_ENGINE_BACKEND=elastic`` the process-wide
:func:`shared_elastic_executor` fleet (``REPRO_ELASTIC_WORKERS``,
default 3) serves every fit in the process.  A
:class:`~repro.resilience.faults.FaultPlan` maps onto the fleet as
the straggler/crash testbed: ``delay(rank=r, seconds=s)`` makes
spawned worker *r* sleep ``s`` real seconds per chain and
``crash(rank=r, at_collective=k)`` makes it die on its *k*-th chain.
"""

from __future__ import annotations

import atexit
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from typing import TYPE_CHECKING

from repro.analysis.dynamic import instrumented_lock, instrumented_rlock
from repro.engine.coordinator import (
    Lease,
    Payload,
    SpeculationPolicy,
    TransportEvent,
    WorkerTransport,
    annotate_failure,
)
from repro.engine.executors import CoordinatedExecutor
from repro.engine.hooks import HookList
from repro.engine.plan import Subproblem, UoIPlan
from repro.telemetry.recorder import Recorder, export_snapshot, use_recorder
from repro.wire import (
    LineChannel,
    decode_arrays,
    decode_blob,
    decode_payload_table,
    encode_arrays,
    encode_blob,
    encode_payload_table,
    error_to_wire,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dynamic import DynamicChecker
    from repro.resilience.checkpoint import CheckpointStore
    from repro.resilience.faults import FaultPlan

__all__ = [
    "WorkerHub",
    "ElasticTransport",
    "ElasticExecutor",
    "worker_main",
    "inspect_hub",
    "shared_elastic_executor",
    "reset_shared_executor",
]

#: Exit code a worker uses for an injected crash (looks like node death).
CRASH_EXIT_CODE = 17


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def worker_main(
    host: str,
    port: int,
    name: str,
    *,
    delay: float = 0.0,
    crash_at: int | None = None,
    crash_after: int | None = None,
) -> int:
    """Run one elastic worker until the hub closes or says stop.

    ``delay`` sleeps that many real seconds before each chain (the
    injected-straggler testbed); ``crash_at=k`` kills the process on
    *receiving* its k-th run frame (lease lost, chain recomputed
    elsewhere) and ``crash_after=k`` kills it after *streaming* its
    k-th chain's payloads but before the done frame (lease lost, chain
    completed from partials without recompute).
    """
    sock = socket.create_connection((host, port))
    chan = LineChannel(sock)
    chan.send({"op": "join", "worker": name})
    hello = chan.recv()
    if hello is None or hello.get("op") != "welcome":
        chan.close()
        return 1
    plan: UoIPlan | None = None
    stage = ""
    chains: list[list[Subproblem]] = []
    n_runs = 0
    try:
        while True:
            frame = chan.recv()
            if frame is None:
                return 0
            op = frame.get("op")
            if op == "stage":
                plan, stage, chains = decode_blob(frame["blob"])
            elif op == "run":
                lease_id = int(frame["lease"])
                ci = int(frame["chain"])
                n_runs += 1
                if crash_at is not None and n_runs >= crash_at:
                    os._exit(CRASH_EXIT_CODE)
                if delay > 0.0:
                    time.sleep(delay)
                chain: list[Subproblem] | None = None
                recorder = Recorder()
                try:
                    if plan is None:
                        raise RuntimeError("run before stage frame")
                    chain = chains[ci]
                    recovered = decode_payload_table(
                        frame.get("recovered", {})
                    )

                    def emit(task: Subproblem, payload: Payload) -> None:
                        chan.send(
                            {
                                "op": "task",
                                "lease": lease_id,
                                "key": task.key,
                                "payload": encode_arrays(payload),
                            }
                        )

                    # Capture solver instrumentation fired in this
                    # process; it ships home on the done frame.
                    with use_recorder(recorder):
                        plan.run_chain(stage, chain, recovered, emit)
                except BaseException as exc:  # noqa: B036 - shipped to hub
                    annotate_failure(exc, "elastic", stage, chain)
                    try:
                        blob = encode_blob(exc)
                    except Exception:
                        blob = encode_blob(
                            RuntimeError(f"{type(exc).__name__}: {exc}")
                        )
                    chan.send(
                        {"op": "error", "lease": lease_id, "blob": blob}
                    )
                else:
                    if crash_after is not None and n_runs >= crash_after:
                        os._exit(CRASH_EXIT_CODE)
                    chan.send(
                        {
                            "op": "done",
                            "lease": lease_id,
                            "telemetry": encode_blob(
                                export_snapshot(recorder)
                            ),
                        }
                    )
            elif op == "stop":
                return 0
    except OSError:
        return 0  # hub went away; departing is not an error
    finally:
        chan.close()


def inspect_hub(host: str, port: int) -> dict:
    """One-shot status query against a live hub (``workers inspect``)."""
    sock = socket.create_connection((host, port))
    chan = LineChannel(sock)
    try:
        chan.send({"op": "inspect"})
        reply = chan.recv()
    finally:
        chan.close()
    if reply is None:
        raise RuntimeError("hub closed the connection without replying")
    return reply


# ---------------------------------------------------------------------------
# hub (coordinator side)
# ---------------------------------------------------------------------------
class WorkerHub:
    """Accepts worker connections and funnels their frames to a queue.

    One reader thread per worker pushes ``(kind, worker, frame)``
    tuples into :attr:`events` — ``kind`` is ``"join"``, ``"frame"``
    or ``"leave"`` — which :class:`ElasticTransport` consumes.  The
    hub outlives individual stages and runs; it dies with the
    executor.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._lsock = socket.create_server((host, port))
        self.host, self.port = self._lsock.getsockname()[:2]
        self.events: "queue.Queue[tuple[str, str, dict | None]]" = queue.Queue()
        self._lock = instrumented_lock("engine.elastic.hub")
        self._channels: dict[str, LineChannel] = {}
        self._stage_frame: dict | None = None
        self._closed = False
        self._joined = 0
        self._accepter = threading.Thread(
            target=self._accept_loop, name="repro-hub-accept", daemon=True
        )
        self._accepter.start()

    # ----------------------------------------------------------- accept path
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._lsock.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-hub-reader",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        chan = LineChannel(conn)
        try:
            first = chan.recv()
        except (OSError, ValueError):
            chan.close()
            return
        if first is None:
            chan.close()
            return
        op = first.get("op")
        if op == "inspect":
            try:
                chan.send({"ok": True, **self.status()})
            except OSError:  # pragma: no cover - peer raced away
                pass
            chan.close()
            return
        if op != "join":
            try:
                chan.send(error_to_wire(RuntimeError(f"unknown op {op!r}")))
            except OSError:  # pragma: no cover - peer raced away
                pass
            chan.close()
            return
        with self._lock:
            name = str(first.get("worker") or f"w{self._joined}")
            while name in self._channels:
                name = f"{name}+"
            self._channels[name] = chan
            self._joined += 1
            stage_frame = self._stage_frame
        try:
            chan.send({"op": "welcome", "worker": name})
            if stage_frame is not None:
                chan.send(stage_frame)
        except OSError:
            with self._lock:
                self._channels.pop(name, None)
            chan.close()
            return
        self.events.put(("join", name, None))
        try:
            while True:
                frame = chan.recv()
                if frame is None:
                    break
                self.events.put(("frame", name, frame))
        except (OSError, ValueError):  # pragma: no cover - torn connection
            pass
        with self._lock:
            self._channels.pop(name, None)
        chan.close()
        self.events.put(("leave", name, None))

    # -------------------------------------------------------------- sending
    def workers(self) -> list[str]:
        with self._lock:
            return sorted(self._channels)

    def send(self, worker: str, frame: dict) -> None:
        """Best-effort send; a dead peer surfaces as a leave event."""
        with self._lock:
            chan = self._channels.get(worker)
        if chan is None:
            return
        try:
            chan.send(frame)
        except OSError:  # the reader thread will post the leave
            pass

    def broadcast_stage(self, frame: dict | None) -> None:
        """Set the stage frame late joiners receive; push to the fleet."""
        with self._lock:
            self._stage_frame = frame
        if frame is not None:
            for worker in self.workers():
                self.send(worker, frame)

    def status(self) -> dict:
        with self._lock:
            return {
                "port": self.port,
                "workers": sorted(self._channels),
                "joined_total": self._joined,
                "stage_loaded": self._stage_frame is not None,
            }

    def close(self) -> None:
        self._closed = True
        try:
            self._lsock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        for worker in self.workers():
            self.send(worker, {"op": "stop"})
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for chan in channels:
            chan.close()


# ---------------------------------------------------------------------------
# transport
# ---------------------------------------------------------------------------
class ElasticTransport(WorkerTransport):
    """Streaming transport over a :class:`WorkerHub` fleet."""

    name = "elastic"
    elastic = True

    def __init__(self, hub: WorkerHub) -> None:
        self.hub = hub
        self._busy: dict[int, str] = {}

    def open(self, plan: UoIPlan, stage: str, n_pending: int) -> None:
        blob = encode_blob((plan, stage, plan.chains(stage)))
        self.hub.broadcast_stage({"op": "stage", "blob": blob})

    def close(self) -> None:
        # The fleet persists across stages and runs; only the stage
        # frame is retired so late joiners don't get a stale plan.
        self.hub.broadcast_stage(None)

    def workers(self) -> list[str]:
        return self.hub.workers()

    def idle_workers(self) -> list[str]:
        busy = set(self._busy.values())
        return [w for w in self.hub.workers() if w not in busy]

    def dispatch(
        self, lease: Lease, chain_index: int, recovered: dict[str, Payload]
    ) -> None:
        self._busy[lease.id] = lease.worker
        self.hub.send(
            lease.worker,
            {
                "op": "run",
                "lease": lease.id,
                "chain": chain_index,
                "recovered": encode_payload_table(recovered),
            },
        )

    def collect(self, timeout: float) -> TransportEvent:
        try:
            kind, worker, frame = self.hub.events.get(timeout=timeout)
        except queue.Empty:
            return TransportEvent(kind="idle")
        if kind == "join":
            return TransportEvent(kind="join", worker=worker)
        if kind == "leave":
            for lease_id, busy_worker in list(self._busy.items()):
                if busy_worker == worker:
                    del self._busy[lease_id]
            return TransportEvent(kind="leave", worker=worker)
        assert frame is not None
        op = frame.get("op")
        if op == "task":
            key = str(frame["key"])
            return TransportEvent(
                kind="task",
                lease_id=int(frame["lease"]),
                worker=worker,
                key=key,
                payloads={key: decode_arrays(frame["payload"])},
            )
        if op == "done":
            lease_id = int(frame["lease"])
            self._busy.pop(lease_id, None)
            telemetry: dict | None = None
            if "telemetry" in frame:
                try:
                    telemetry = decode_blob(frame["telemetry"])
                except Exception:  # pragma: no cover - telemetry is best-effort
                    telemetry = None
            return TransportEvent(
                kind="result",
                lease_id=lease_id,
                worker=worker,
                telemetry=telemetry,
            )
        if op == "error":
            lease_id = int(frame["lease"])
            self._busy.pop(lease_id, None)
            try:
                error: BaseException = decode_blob(frame["blob"])
            except Exception:
                error = RuntimeError(
                    f"worker {worker} failed (undecodable error blob)"
                )
            return TransportEvent(
                kind="error", lease_id=lease_id, worker=worker, error=error
            )
        return TransportEvent(kind="idle")  # unknown frame: ignore


# ---------------------------------------------------------------------------
# executor + fleet management
# ---------------------------------------------------------------------------
class ElasticExecutor(CoordinatedExecutor):
    """Engine backend over an elastic out-of-process worker fleet.

    Parameters
    ----------
    workers:
        Local worker processes to spawn lazily before the first stage
        (``spawn=False`` starts none: attach your own with
        ``repro workers join --port <hub.port>``).
    faults:
        Optional :class:`~repro.resilience.faults.FaultPlan` mapped
        onto the spawned fleet — ``delay(rank=r, seconds=s)`` makes
        worker *r* sleep per chain, ``crash(rank=r, at_collective=k)``
        makes it die on its *k*-th chain (the straggler / node-death
        testbed).
    speculation:
        :class:`~repro.engine.coordinator.SpeculationPolicy`; default
        enabled.
    store:
        Optional :class:`CheckpointStore` for durable completion
        tracking (streamed payloads persisted; reassignment recovers
        from it).
    checker:
        Optional :class:`DynamicChecker` receiving DYN205
        worker-lease-stall findings.
    stall_timeout:
        Seconds without fleet progress before the run aborts.

    Runs are serialized on an internal lock: the executor (and the
    process-wide shared instance behind
    ``REPRO_ENGINE_BACKEND=elastic``) is safe to share across
    scheduler threads, one engine run at a time on the one fleet.
    """

    name = "elastic"

    def __init__(
        self,
        workers: int = 3,
        *,
        faults: "FaultPlan | None" = None,
        speculation: SpeculationPolicy | None = None,
        store: "CheckpointStore | None" = None,
        checker: "DynamicChecker | None" = None,
        stall_timeout: float = 120.0,
        spawn: bool = True,
        join_timeout: float = 30.0,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.hub = WorkerHub()
        super().__init__(
            ElasticTransport(self.hub),
            store=store,
            speculation=speculation,
            checker=checker,
            stall_timeout=stall_timeout,
        )
        self.n_workers = workers
        self.faults = faults
        self.join_timeout = join_timeout
        self._spawn = spawn
        self._procs: list[subprocess.Popen] = []
        # stall_exempt: this lock intentionally serializes whole stages
        # (see run_stage), so long holds are by design, not a finding.
        self._lock = instrumented_rlock(
            "engine.elastic.executor", stall_exempt=True
        )
        self._fleet_started = False
        self._closed = False

    # ------------------------------------------------------------ the fleet
    def ensure_fleet(self) -> None:
        """Spawn the local fleet once (no-op when ``spawn=False``)."""
        if self._fleet_started or not self._spawn:
            return
        self._fleet_started = True
        for index in range(self.n_workers):
            self.spawn_worker(index)
        if self.n_workers:
            self._wait_for_workers(self.n_workers)

    def spawn_worker(self, index: int, name: str | None = None) -> str:
        """Spawn one local worker process joined to this hub."""
        if self._closed:
            raise RuntimeError("executor is shut down")
        name = name or f"ew{index}"
        args = [
            sys.executable,
            "-m",
            "repro",
            "workers",
            "join",
            "--host",
            self.hub.host,
            "--port",
            str(self.hub.port),
            "--name",
            name,
        ]
        delay = 0.0
        crash_at: int | None = None
        if self.faults is not None:
            delay = sum(
                d.seconds for d in self.faults.delays if d.rank == index
            )
            crash_at = min(
                (
                    c.at_collective
                    for c in self.faults.crashes
                    if c.rank == index and c.at_collective is not None
                ),
                default=None,
            )
        if delay > 0.0:
            args += ["--delay", str(delay)]
        if crash_at is not None:
            args += ["--crash-at", str(crash_at)]
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.dirname(src)  # .../src
        prev = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src + (os.pathsep + prev if prev else "")
        # A spawned worker must never build its own elastic fleet.
        env.pop("REPRO_ENGINE_BACKEND", None)
        proc = subprocess.Popen(
            args,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self._procs.append(proc)
        return name

    def _wait_for_workers(self, count: int) -> None:
        deadline = time.monotonic() + self.join_timeout
        while time.monotonic() < deadline:
            if len(self.hub.workers()) >= count:
                return
            if all(p.poll() is not None for p in self._procs):
                break  # every spawned process already exited
            time.sleep(0.02)
        raise RuntimeError(
            f"elastic fleet failed to assemble: wanted {count} workers, "
            f"have {self.hub.workers()} after {self.join_timeout:.3g}s"
        )

    # ---------------------------------------------------------------- runs
    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is shut down")
            self.ensure_fleet()
            # Intentional: the process-wide shared executor serializes
            # whole stages so concurrent fits multiplex one fleet
            # rather than racing for leases chain-by-chain.
            return super().run_stage(plan, stage, chains, hooks)  # repro: ignore[LOCK504]

    def utilization(self) -> dict[str, int]:
        """Fleet-lifetime orchestration counters (joins, leases, ...)."""
        return dict(self.coordinator.stats)

    def shutdown(self) -> None:
        """Stop the fleet and close the hub (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # Snapshot-and-swap under the lock; the slow wait/kill loop
            # then runs lock-free on the local list, so a concurrent
            # ensure_fleet() never sees a half-cleared roster.
            procs, self._procs = self._procs, []
        self.hub.close()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - slow exit
                proc.kill()
                proc.wait()


# ---------------------------------------------------------------------------
# process-wide shared fleet (REPRO_ENGINE_BACKEND=elastic)
# ---------------------------------------------------------------------------
_SHARED: ElasticExecutor | None = None
_SHARED_LOCK = threading.Lock()


def shared_elastic_executor() -> ElasticExecutor:
    """The process-wide elastic executor behind ``default_executor()``.

    Spawning a fleet per fit would dominate small runs, so the whole
    process shares one executor (and thus one fleet); worker count
    comes from ``REPRO_ELASTIC_WORKERS`` (default 3).  The fleet is
    torn down atexit.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            workers = int(os.environ.get("REPRO_ELASTIC_WORKERS", "") or 3)
            _SHARED = ElasticExecutor(workers=workers)
            atexit.register(_SHARED.shutdown)
        return _SHARED


def reset_shared_executor() -> None:
    """Tear down the shared fleet (tests; safe when none exists)."""
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is not None:
            _SHARED.shutdown()
            _SHARED = None
