"""Concrete UoI plans for the serial/local estimators.

:class:`LassoPlan` and :class:`VarPlan` carry the exact numerics the
legacy ``UoILasso.fit`` / ``UoIVar.fit`` inlined — same solver calls,
same RNG draw order, same reduction arithmetic — expressed as engine
plans so any backend can run them.  The estimators in
:mod:`repro.core` are now thin adapters over these plans.

Granularity matches the legacy checkpoint unit: one chain per
bootstrap, one task per chain covering the whole λ path (keys
``serial-sel/k{k}``, ``serial-est/k{k}``, ...), so stores written
before the engine refactor resume bitwise-identically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.bootstrap import (
    block_train_eval,
    bootstrap_train_eval,
    circular_block_bootstrap,
    iid_bootstrap,
)
from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.core.estimation import (
    best_support_per_bootstrap,
    prediction_loss,
    union_average,
)
from repro.core.selection import intersect_supports, support_family
from repro.engine.plan import ESTIMATION, SELECTION, PlanOutputs, Subproblem, UoIPlan
from repro.linalg.admm import LassoADMM
from repro.linalg.cd import lasso_cd, precompute_gram
from repro.linalg.lambda_grid import lambda_grid, lambda_grid_from_max
from repro.linalg.ols import ols_on_support
from repro.var.lag import build_lag_matrices

__all__ = [
    "LassoPlan",
    "VarPlan",
    "lasso_path",
    "ols_family",
    "var_path_columns",
    "ols_family_columns",
    "lifted_loss",
]

#: Nominal iteration count used only for dry-run cost estimates.
_EST_ITERS = 40.0


# ---------------------------------------------------------------------------
# stage kernels (moved verbatim from the legacy serial estimators)
# ---------------------------------------------------------------------------
def lasso_path(
    config: UoILassoConfig, X: np.ndarray, y: np.ndarray, lambdas: np.ndarray
) -> np.ndarray:
    """LASSO estimates for all λ on one bootstrap sample: ``(q, p)``."""
    q, p = len(lambdas), X.shape[1]
    out = np.empty((q, p))
    if config.solver == "admm":
        solver = LassoADMM(
            X,
            y,
            rho=config.rho,
            max_iter=config.max_iter,
            abstol=config.abstol,
            reltol=config.reltol,
            adapt_rho=config.adapt_rho,
        )
        beta = None
        for j, lam in enumerate(lambdas):
            res = solver.solve(float(lam), beta0=beta)
            beta = res.beta
            out[j] = beta
    else:
        beta = None
        for j, lam in enumerate(lambdas):
            beta = lasso_cd(
                X, y, float(lam), beta0=beta, max_iter=config.max_iter,
                tol=config.cd_tol,
            )
            out[j] = beta
    return out


def ols_family(
    X_train: np.ndarray, y_train: np.ndarray, family: np.ndarray
) -> np.ndarray:
    """Per-support OLS with caching of duplicate supports."""
    q, p = family.shape
    out = np.zeros((q, p))
    cache: dict[bytes, np.ndarray] = {}
    for j in range(q):
        key = np.packbits(family[j]).tobytes()
        if key not in cache:
            cache[key] = ols_on_support(X_train, y_train, family[j])
        out[j] = cache[key]
    return out


def var_path_columns(
    config: UoILassoConfig,
    X: np.ndarray,
    Y: np.ndarray,
    lambdas: np.ndarray,
    warm_paths: np.ndarray | None = None,
    seeding: str = "path",
) -> np.ndarray:
    """Lifted λ-path via exact column decomposition: ``(q, kdim * p)``.

    Column ``c``'s coefficients occupy the slice
    ``[c * kdim, (c+1) * kdim)`` of ``vec B``.

    Seeding — where each solve's iterate *starts* — never changes what
    it converges to (every solve runs to the configured tolerances), so
    all three modes below produce identical supports; only iteration
    cost differs:

    * ``seeding="path"`` (default): the classic warm-start chain — the
      solve at λ index ``j`` starts from the ``j - 1`` solution.
    * ``seeding="none"``: cold chains — every solve starts from zero.
      This is the baseline the streaming benchmark charges against.
    * ``warm_paths`` given — a previous ``(q, kdim * p)`` path for the
      *same* bootstrap chain (the preceding window of a rolling fit):
      the chain is seeded from the previous window and advanced by
      *delta transport*: λ_0 starts from ``warm_paths[0]`` and λ_j
      from ``beta_{j-1} + (warm_paths[j] - warm_paths[j-1])``, i.e.
      the current chain state pushed along the previous window's path
      step.  This is never worse than plain pathwise seeding (the
      transported step is ~the same λ-to-λ move) while letting a
      rolling fit inherit the previous window's solution geometry.
    """
    q = len(lambdas)
    kdim, p = X.shape[1], Y.shape[1]
    if seeding not in ("path", "none"):
        raise ValueError(f"unknown seeding mode {seeding!r}")
    if warm_paths is not None and warm_paths.shape != (q, kdim * p):
        raise ValueError(
            f"warm_paths shape {warm_paths.shape} != ({q}, {kdim * p})"
        )
    out = np.empty((q, kdim * p))
    solver = None
    gram_cache = None
    if config.solver == "cd":
        # Covariance-update CD: one X'X per bootstrap serves every
        # column and penalty (the cd analogue of the shared ADMM
        # factorization).
        gram, _, col_sq = precompute_gram(X)
        gram_cache = (gram, col_sq)
    if config.solver == "admm":
        # One factorization serves every output column: the Gram
        # depends on X alone (see LassoADMM.set_response).
        solver = LassoADMM(
            X,
            Y[:, 0],
            rho=config.rho,
            max_iter=config.max_iter,
            abstol=config.abstol,
            reltol=config.reltol,
            adapt_rho=config.adapt_rho,
        )
    def seed(
        j: int, beta: np.ndarray | None, col: slice
    ) -> np.ndarray | None:
        if warm_paths is not None:
            if j == 0 or beta is None:
                return warm_paths[0, col]
            return beta + (warm_paths[j, col] - warm_paths[j - 1, col])
        return beta if seeding == "path" else None

    for c in range(p):
        yc = Y[:, c]
        col = slice(c * kdim, (c + 1) * kdim)
        beta = None
        if config.solver == "admm":
            solver.set_response(yc)
            for j, lam in enumerate(lambdas):
                res = solver.solve(float(lam), beta0=seed(j, beta, col))
                beta = res.beta
                out[j, col] = beta
        else:
            triple = (gram_cache[0], X.T @ yc, gram_cache[1])
            for j, lam in enumerate(lambdas):
                beta = lasso_cd(
                    X, yc, float(lam), beta0=seed(j, beta, col),
                    max_iter=config.max_iter, tol=config.cd_tol,
                    precomputed=triple,
                )
                out[j, col] = beta
    return out


def ols_family_columns(
    X: np.ndarray, Y: np.ndarray, family: np.ndarray
) -> np.ndarray:
    """Per-support OLS on the lifted problem, column-decomposed."""
    q = family.shape[0]
    kdim, p = X.shape[1], Y.shape[1]
    out = np.zeros((q, kdim * p))
    cache: dict[bytes, np.ndarray] = {}
    for j in range(q):
        for c in range(p):
            mask = family[j, c * kdim : (c + 1) * kdim]
            key = bytes([c]) + np.packbits(mask).tobytes()
            if key not in cache:
                cache[key] = ols_on_support(X, Y[:, c], mask)
            out[j, c * kdim : (c + 1) * kdim] = cache[key]
    return out


def lifted_loss(X: np.ndarray, Y: np.ndarray, vec_beta: np.ndarray) -> float:
    """Mean squared error of ``vec B`` over all output columns."""
    kdim, p = X.shape[1], Y.shape[1]
    B = vec_beta.reshape((kdim, p), order="F")
    resid = Y - X @ B
    return float((resid**2).sum() / max(resid.size, 1))


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------
class LassoPlan(UoIPlan):
    """UoI_LASSO (Algorithm 1) as an engine plan.

    All bootstrap indices are drawn in ``__init__`` from one
    ``default_rng(random_state)`` stream in the legacy order (B1
    selection draws, then B2 train/eval draws), so resumed and
    cross-backend runs replay the exact serial draws.
    """

    kind = "serial_uoi_lasso"

    def __init__(
        self, config: UoILassoConfig, X: np.ndarray, y: np.ndarray
    ) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, p = X.shape
        if y.shape != (n,):
            raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
        self.config = config
        self.n, self.p = n, p
        self.q = config.n_lambdas
        self.B1 = config.n_selection_bootstraps
        self.B2 = config.n_estimation_bootstraps

        self.x_mean = X.mean(axis=0) if config.fit_intercept else np.zeros(p)
        self.y_mean = float(y.mean()) if config.fit_intercept else 0.0
        self.Xc = X - self.x_mean
        self.yc = y - self.y_mean

        self.lambdas = lambda_grid(
            self.Xc, self.yc, num=config.n_lambdas, eps=config.lambda_min_ratio
        )
        rng = np.random.default_rng(config.random_state)
        self.selection_idx = [iid_bootstrap(n, rng) for _ in range(self.B1)]
        self.estimation_idx = [
            bootstrap_train_eval(n, rng, train_frac=config.train_frac)
            for _ in range(self.B2)
        ]

        self.family: np.ndarray | None = None
        self.outputs: PlanOutputs | None = None

    # -------------------------------------------------------------- API
    def meta(self) -> dict:
        cfg = self.config
        return {
            "kind": "serial_uoi_lasso",
            "n": self.n,
            "p": self.p,
            "q": cfg.n_lambdas,
            "B1": cfg.n_selection_bootstraps,
            "B2": cfg.n_estimation_bootstraps,
            "random_state": cfg.random_state,
            "intersection_frac": cfg.intersection_frac,
        }

    def chains(self, stage: str) -> list[list[Subproblem]]:
        if stage == SELECTION:
            return [
                [Subproblem(SELECTION, k, None, f"serial-sel/k{k}", k, 0)]
                for k in range(self.B1)
            ]
        return [
            [Subproblem(ESTIMATION, k, None, f"serial-est/k{k}", k, 0)]
            for k in range(self.B2)
        ]

    def run_chain(
        self,
        stage: str,
        tasks: list[Subproblem],
        recovered: dict[str, dict[str, np.ndarray]],
        emit: Callable[[Subproblem, dict[str, np.ndarray]], None],
    ) -> None:
        (task,) = tasks
        k = task.bootstrap
        if stage == SELECTION:
            idx = self.selection_idx[k]
            betas = lasso_path(self.config, self.Xc[idx], self.yc[idx], self.lambdas)
            emit(task, {"betas": betas})
        else:
            train_idx, eval_idx = self.estimation_idx[k]
            est = ols_family(self.Xc[train_idx], self.yc[train_idx], self.family)
            losses = np.empty(self.q)
            for j in range(self.q):
                losses[j] = prediction_loss(
                    self.Xc[eval_idx], self.yc[eval_idx], est[j]
                )
            emit(task, {"estimates": est, "losses": losses})

    def reduce(
        self, stage: str, results: dict[str, dict[str, np.ndarray]]
    ) -> None:
        cfg = self.config
        if stage == SELECTION:
            betas = np.empty((self.B1, self.q, self.p))
            for k in range(self.B1):
                betas[k] = results[f"serial-sel/k{k}"]["betas"]
            self.family = support_family(betas, frac=cfg.intersection_frac)
            return
        losses = np.empty((self.B2, self.q))
        estimates = np.empty((self.B2, self.q, self.p))
        for k in range(self.B2):
            rec = results[f"serial-est/k{k}"]
            estimates[k] = rec["estimates"]
            losses[k] = rec["losses"]
        winners = best_support_per_bootstrap(losses, rule=cfg.selection_rule)
        coef = union_average(estimates[np.arange(self.B2), winners])
        self.outputs = PlanOutputs(
            coef=coef,
            supports=self.family,
            losses=losses,
            winners=winners,
            lambdas=self.lambdas,
        )

    def finalize(self) -> PlanOutputs:
        if self.outputs is None:
            raise RuntimeError("plan has not been reduced yet")
        return self.outputs

    def estimate_flops(self) -> dict[str, float]:
        n, p, q = float(self.n), float(self.p), float(self.q)
        per_sel = 2 * n * p * p + (2 / 3) * p**3 + q * _EST_ITERS * 4 * n * p
        per_est = q * (2 * n * p * p + (2 / 3) * p**3)
        return {
            SELECTION: self.B1 * per_sel,
            ESTIMATION: self.B2 * per_est,
        }


class VarPlan(UoIPlan):
    """UoI_VAR (Algorithm 2) as an engine plan.

    The series is lifted to the lag matrices in ``__init__``; block
    bootstraps are pre-drawn in the legacy order.  Tasks solve the
    lifted problem via the exact column decomposition.
    """

    kind = "serial_uoi_var"

    def __init__(
        self,
        config: UoIVarConfig,
        series: np.ndarray,
        *,
        warm_start: dict[int, np.ndarray] | None = None,
        keep_paths: bool = False,
        chain_seeding: str = "path",
    ) -> None:
        """Build the plan for ``series`` under ``config``.

        Parameters
        ----------
        warm_start:
            Optional seeding for the selection λ-sweeps: a mapping from
            bootstrap index ``k`` to that chain's ``(q, kdim * p)``
            coefficient path from a previous fit (see
            ``selection_paths``), typically the preceding window of a
            rolling stream fit.  Seeding moves solver starting points
            only — every solve still runs to the configured tolerances,
            so supports and final coefficients are bitwise what a cold
            fit of the same ``series`` produces; only iteration cost
            changes.  Chains without an entry fall back to the default
            pathwise seeding.
        keep_paths:
            Harvest each selection chain's full coefficient path into
            ``self.selection_paths`` during ``reduce`` (at the cost of
            shipping ``(q, kdim * p)`` per chain through the result
            payloads), so a subsequent plan can be warm-started from
            this one.
        chain_seeding:
            Seeding mode for chains *without* a ``warm_start`` entry:
            ``"path"`` (default, the classic pathwise warm-start chain)
            or ``"none"`` (cold chains, every solve from zero — the
            baseline leg of ``benchmarks/bench_stream.py``).
        """
        if chain_seeding not in ("path", "none"):
            raise ValueError(f"unknown chain_seeding mode {chain_seeding!r}")
        lcfg = config.lasso
        Y, X = build_lag_matrices(
            series, config.order, add_intercept=config.fit_intercept
        )
        m, p = Y.shape
        kdim = X.shape[1]
        self.config = config
        self.X, self.Y = X, Y
        self.m, self.p, self.kdim = m, p, kdim
        self.q = lcfg.n_lambdas
        self.B1 = lcfg.n_selection_bootstraps
        self.B2 = lcfg.n_estimation_bootstraps

        self.lambdas = lambda_grid_from_max(
            2.0 * float(np.max(np.abs(X.T @ Y))),
            num=lcfg.n_lambdas,
            eps=lcfg.lambda_min_ratio,
        )
        rng = np.random.default_rng(lcfg.random_state)
        L = config.block_length
        self.selection_idx = [
            circular_block_bootstrap(m, rng, block_length=L)
            for _ in range(self.B1)
        ]
        self.estimation_idx = [
            block_train_eval(m, rng, block_length=L, train_frac=lcfg.train_frac)
            for _ in range(self.B2)
        ]

        self.keep_paths = keep_paths
        self.chain_seeding = chain_seeding
        self.warm_start: dict[int, np.ndarray] = {}
        if warm_start:
            shape = (self.q, self.kdim * self.p)
            for k, path in warm_start.items():
                path = np.asarray(path, dtype=float)
                if path.shape != shape:
                    raise ValueError(
                        f"warm_start[{k}] shape {path.shape} != {shape}"
                    )
                if 0 <= k < self.B1:
                    self.warm_start[int(k)] = path

        self.family: np.ndarray | None = None
        self.selection_paths: dict[int, np.ndarray] = {}
        self.outputs: PlanOutputs | None = None

    # -------------------------------------------------------------- API
    def meta(self) -> dict:
        cfg, lcfg = self.config, self.config.lasso
        return {
            "kind": "serial_uoi_var",
            "m": self.m,
            "p": self.p,
            "kdim": self.kdim,
            "order": cfg.order,
            "block_length": cfg.block_length,
            "q": lcfg.n_lambdas,
            "B1": lcfg.n_selection_bootstraps,
            "B2": lcfg.n_estimation_bootstraps,
            "random_state": lcfg.random_state,
            "intersection_frac": lcfg.intersection_frac,
            # Seeding changes intermediate path iterates (never
            # supports or coefficients), and keep_paths changes payload
            # contents — either difference makes a checkpoint store
            # non-interchangeable at the payload level, so all three
            # are part of the plan identity.
            "warm": sorted(self.warm_start),
            "keep_paths": self.keep_paths,
            "chain_seeding": self.chain_seeding,
        }

    def chains(self, stage: str) -> list[list[Subproblem]]:
        if stage == SELECTION:
            return [
                [Subproblem(SELECTION, k, None, f"serial-var-sel/k{k}", k, 0)]
                for k in range(self.B1)
            ]
        return [
            [Subproblem(ESTIMATION, k, None, f"serial-var-est/k{k}", k, 0)]
            for k in range(self.B2)
        ]

    def run_chain(
        self,
        stage: str,
        tasks: list[Subproblem],
        recovered: dict[str, dict[str, np.ndarray]],
        emit: Callable[[Subproblem, dict[str, np.ndarray]], None],
    ) -> None:
        lcfg = self.config.lasso
        (task,) = tasks
        k = task.bootstrap
        if stage == SELECTION:
            idx = self.selection_idx[k]
            betas = var_path_columns(
                lcfg,
                self.X[idx],
                self.Y[idx],
                self.lambdas,
                warm_paths=self.warm_start.get(k),
                seeding=self.chain_seeding,
            )
            payload = {"masks": betas != 0.0}
            if self.keep_paths:
                payload["betas"] = betas
            emit(task, payload)
        else:
            train_idx, eval_idx = self.estimation_idx[k]
            est = ols_family_columns(
                self.X[train_idx], self.Y[train_idx], self.family
            )
            losses = np.empty(self.q)
            for j in range(self.q):
                losses[j] = lifted_loss(
                    self.X[eval_idx], self.Y[eval_idx], est[j]
                )
            emit(task, {"estimates": est, "losses": losses})

    def reduce(
        self, stage: str, results: dict[str, dict[str, np.ndarray]]
    ) -> None:
        lcfg = self.config.lasso
        if stage == SELECTION:
            masks = np.empty((self.B1, self.q, self.kdim * self.p), dtype=bool)
            for k in range(self.B1):
                rec = results[f"serial-var-sel/k{k}"]
                masks[k] = rec["masks"]
                if self.keep_paths and "betas" in rec:
                    self.selection_paths[k] = np.asarray(rec["betas"], dtype=float)
            self.family = intersect_supports(masks, frac=lcfg.intersection_frac)
            return
        losses = np.empty((self.B2, self.q))
        estimates = np.empty((self.B2, self.q, self.kdim * self.p))
        for k in range(self.B2):
            rec = results[f"serial-var-est/k{k}"]
            estimates[k] = rec["estimates"]
            losses[k] = rec["losses"]
        winners = best_support_per_bootstrap(losses, rule=lcfg.selection_rule)
        vec_coef = union_average(estimates[np.arange(self.B2), winners])
        self.outputs = PlanOutputs(
            coef=vec_coef,
            supports=self.family,
            losses=losses,
            winners=winners,
            lambdas=self.lambdas,
            extra={"p": self.p, "kdim": self.kdim},
        )

    def finalize(self) -> PlanOutputs:
        if self.outputs is None:
            raise RuntimeError("plan has not been reduced yet")
        return self.outputs

    def estimate_flops(self) -> dict[str, float]:
        m, kdim, p, q = (
            float(self.m),
            float(self.kdim),
            float(self.p),
            float(self.q),
        )
        per_col = 2 * m * kdim * kdim + (2 / 3) * kdim**3
        per_sel = p * (per_col + q * _EST_ITERS * 4 * m * kdim)
        per_est = q * p * per_col
        return {
            SELECTION: self.B1 * per_sel,
            ESTIMATION: self.B2 * per_est,
        }
