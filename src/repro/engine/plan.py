"""Typed subproblem plans for the UoI execution engine.

The paper's two UoI algorithms share one Map-Solve-Reduce skeleton:
a *selection* stage (B1 bootstraps x q penalties, supports
intersected) followed by an *estimation* stage (B2 bootstraps x q
candidate supports, winners unioned).  A :class:`UoIPlan` captures one
concrete instance of that skeleton as data — an enumerable set of
:class:`Subproblem` tasks with their dependency structure — so any
:class:`~repro.engine.executors.Executor` backend can run it and any
cross-cutting concern (checkpointing, tracing, progress) can observe
it through :class:`~repro.engine.hooks.EngineHook` without the four
drivers each re-implementing the wiring.

Determinism contract
--------------------
A plan must be a *pure* description of the computation:

* every random draw is made in ``__init__`` (in the exact order the
  legacy serial drivers made them), never inside :meth:`UoIPlan.run_chain`;
* :meth:`UoIPlan.run_chain` is a pure function of the plan state, the
  task list, and any recovered payloads — no hidden mutable state —
  so executors may run chains in any order or in other processes;
* :meth:`UoIPlan.reduce` consumes the full result table in a fixed
  (bootstrap-major) order, so float summation order — and therefore
  the bits of the final coefficients — does not depend on the backend.

Together these guarantee the engine's headline invariant: the same
``random_state`` produces bitwise-identical coefficients on every
backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "SELECTION",
    "ESTIMATION",
    "Subproblem",
    "PlanOutputs",
    "UoIPlan",
]

#: Stage names, in execution order.
SELECTION = "selection"
ESTIMATION = "estimation"


@dataclass(frozen=True)
class Subproblem:
    """One typed (stage, bootstrap, λ) task of a UoI run.

    Attributes
    ----------
    stage:
        ``"selection"`` or ``"estimation"``.
    bootstrap:
        Bootstrap index ``k`` (selection: ``0..B1-1``; estimation:
        ``0..B2-1``).
    lam_index:
        Penalty index ``j`` for plans that split work per λ (the
        distributed drivers); ``None`` when a task covers the whole λ
        path (the serial per-bootstrap granularity).
    key:
        Stable checkpoint-record key.  These are exactly the legacy
        driver keys (``serial-sel/k0``, ``sel/k0/j3``, ...), so stores
        written before the engine refactor resume unchanged.
    chain:
        Index of the dependency chain this task belongs to (tasks in
        one chain share data and warm starts and must run in order).
    pos:
        Position of the task within its chain.
    """

    stage: str
    bootstrap: int
    lam_index: int | None
    key: str
    chain: int
    pos: int


@dataclass
class PlanOutputs:
    """What :meth:`UoIPlan.finalize` returns for the local plans.

    ``coef`` is the union-averaged coefficient vector (``(p,)`` for
    LASSO, the lifted ``vec B`` for VAR); the rest mirror the
    estimator attributes of the legacy drivers.
    """

    coef: np.ndarray
    supports: np.ndarray
    losses: np.ndarray
    winners: np.ndarray
    lambdas: np.ndarray
    extra: dict[str, Any] = field(default_factory=dict)


class UoIPlan:
    """Base class: a UoI run as enumerable, typed subproblems.

    Subclasses provide the five methods below.  ``stages`` lists the
    stage names in order; the engine runs each stage to completion
    (including its :meth:`reduce`) before starting the next, because
    estimation's tasks depend on selection's reduced support family.
    """

    #: Stage names in execution order.
    stages: tuple[str, ...] = (SELECTION, ESTIMATION)
    #: Short plan-kind tag (matches the checkpoint meta ``kind``).
    kind: str = "uoi"

    # -------------------------------------------------------------- API
    def meta(self) -> dict:
        """Run metadata pinned into a checkpoint store on resume."""
        raise NotImplementedError

    def chains(self, stage: str) -> list[list[Subproblem]]:
        """The stage's tasks, grouped into ordered dependency chains.

        Chains are independent of each other (an executor may run them
        concurrently); tasks inside one chain must run in list order on
        one worker (they share bootstrap data and λ-path warm starts).
        Enumerable without executing anything — this is what the CLI
        dry-run prints.
        """
        raise NotImplementedError

    def run_chain(
        self,
        stage: str,
        tasks: list[Subproblem],
        recovered: dict[str, dict[str, np.ndarray]],
        emit: Callable[[Subproblem, dict[str, np.ndarray]], None],
    ) -> None:
        """Solve one chain, calling ``emit(task, payload)`` per task.

        ``recovered`` maps task keys to checkpoint payloads the
        executor already restored; the plan must *not* re-emit those,
        but may consume them (e.g. as λ-path warm starts).  ``emit`` is
        called as each task completes, so per-subproblem checkpoint
        cadence is preserved.
        """
        raise NotImplementedError

    def reduce(self, stage: str, results: dict[str, dict[str, np.ndarray]]) -> None:
        """Stage-wide reduction over the emitted/recovered payloads.

        Runs once per stage after every chain finished (selection: the
        support intersection; estimation: winner search and union
        average).  Must consume ``results`` in a fixed order.
        """
        raise NotImplementedError

    def finalize(self) -> Any:
        """The run's result object, after all stages reduced."""
        raise NotImplementedError

    # -------------------------------------------------------- derived
    def describe(self) -> dict:
        """Subproblem counts per stage (for dry-runs and progress)."""
        stages = {}
        for stage in self.stages:
            chains = self.chains(stage)
            stages[stage] = {
                "chains": len(chains),
                "subproblems": sum(len(c) for c in chains),
            }
        return {
            "kind": self.kind,
            "stages": stages,
            "subproblems": sum(s["subproblems"] for s in stages.values()),
        }

    def estimate_flops(self) -> dict[str, float]:
        """Rough floating-point cost per stage (dry-run estimate).

        Plans that can do better override this; the base returns zeros
        so :meth:`describe`-style tooling never fails on a new plan.
        """
        return {stage: 0.0 for stage in self.stages}
