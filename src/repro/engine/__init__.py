"""Backend-pluggable execution engine for UoI runs (``repro.engine``).

The four UoI entry points — :class:`repro.core.UoILasso`,
:class:`repro.core.UoIVar`, and the distributed drivers in
:mod:`repro.core.parallel` — are thin adapters over this layer:

* :mod:`repro.engine.plan` — :class:`UoIPlan`: a run as enumerable,
  typed :class:`Subproblem` tasks with dependency chains.
* :mod:`repro.engine.plans` — :class:`LassoPlan` / :class:`VarPlan`,
  the concrete local plans (exact legacy serial numerics).
* :mod:`repro.engine.coordinator` — the transport-agnostic
  :class:`~repro.engine.coordinator.Coordinator` (work queue, leases,
  completion tracking, speculation) every backend runs on.
* :mod:`repro.engine.transports` — the in-process
  :class:`~repro.engine.coordinator.WorkerTransport` implementations
  (serial / multiprocess / simmpi).
* :mod:`repro.engine.elastic` — the out-of-process socket-worker
  transport with mid-run join/leave (``elastic`` backend).
* :mod:`repro.engine.executors` — :class:`SerialExecutor`,
  :class:`MultiprocessExecutor`, :class:`SimMpiExecutor`, and the
  :func:`run_plan` driver loop.
* :mod:`repro.engine.hooks` — :class:`EngineHook` observers
  (checkpointing lives in :mod:`repro.resilience.checkpoint` as
  :class:`~repro.resilience.checkpoint.CheckpointHook`).

Backend selection: pass ``executor=`` to the estimators, or set the
``REPRO_ENGINE_BACKEND`` environment variable (``serial`` |
``multiprocess`` | ``simmpi`` | ``elastic``) to change the
process-wide default — that is how CI runs the whole suite on the
multiprocess and elastic backends.  ``elastic`` as the process
default uses one shared worker fleet
(:func:`repro.engine.elastic.shared_elastic_executor`,
``REPRO_ELASTIC_WORKERS`` workers) rather than a fleet per fit.
"""

from __future__ import annotations

import os

from repro.engine.plan import (
    ESTIMATION,
    SELECTION,
    PlanOutputs,
    Subproblem,
    UoIPlan,
)
from repro.engine.hooks import EngineHook, HookList, ProgressHook, RecordingHook
from repro.engine.coordinator import (
    Coordinator,
    Lease,
    SpeculationPolicy,
    TransportEvent,
    WorkerTransport,
    worker_utilization,
)
from repro.engine.executors import (
    CoordinatedExecutor,
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    SimMpiExecutor,
    VerifyingExecutor,
    annotate_failure,
    plan_verification_enabled,
    run_plan,
)
from repro.engine.plans import LassoPlan, VarPlan

__all__ = [
    "SELECTION",
    "ESTIMATION",
    "Subproblem",
    "PlanOutputs",
    "UoIPlan",
    "EngineHook",
    "HookList",
    "RecordingHook",
    "ProgressHook",
    "Executor",
    "CoordinatedExecutor",
    "Coordinator",
    "Lease",
    "TransportEvent",
    "WorkerTransport",
    "SpeculationPolicy",
    "worker_utilization",
    "SerialExecutor",
    "MultiprocessExecutor",
    "SimMpiExecutor",
    "VerifyingExecutor",
    "plan_verification_enabled",
    "LassoPlan",
    "VarPlan",
    "run_plan",
    "annotate_failure",
    "ElasticExecutor",
    "shared_elastic_executor",
    "BACKENDS",
    "BACKEND_ALIASES",
    "make_executor",
    "default_executor",
]

from repro.engine.elastic import ElasticExecutor, shared_elastic_executor

#: Backend name -> (factory, one-line description) for CLI listings.
BACKENDS = {
    "serial": (
        SerialExecutor,
        "in-order, in-process execution (the numerical reference)",
    ),
    "multiprocess": (
        MultiprocessExecutor,
        "process-pool fan-out over local cores (bitwise-identical)",
    ),
    "simmpi": (
        SimMpiExecutor,
        "simulated MPI ranks with modeled time (standalone or bound)",
    ),
    "elastic": (
        ElasticExecutor,
        "out-of-process socket workers; mid-run join/leave + speculation",
    ),
}

#: Accepted spellings that are not BACKENDS keys (the issue/paper name
#: the elastic backend by its full slug).
BACKEND_ALIASES = {"processpool-elastic": "elastic"}


def make_executor(name: str, verify: bool = False, **kwargs: object) -> Executor:
    """Executor instance for a backend name (see :data:`BACKENDS`).

    ``verify=True`` wraps the backend in a
    :class:`~repro.engine.executors.VerifyingExecutor`, which runs
    :func:`repro.analysis.planver.verify_plan` on each plan before its
    first stage (process-wide opt-in: ``REPRO_PLAN_VERIFY=1``, checked
    by :func:`run_plan` itself).
    """
    name = BACKEND_ALIASES.get(name, name)
    try:
        factory, _ = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    executor = factory(**kwargs)
    if verify:
        executor = VerifyingExecutor(executor)
    return executor


def default_executor() -> Executor:
    """The process-wide default backend.

    ``REPRO_ENGINE_BACKEND`` selects it (CI matrix entries set
    ``multiprocess`` and ``elastic`` to run the whole suite off the
    reference backend); unset or empty means serial.  ``elastic``
    resolves to the process-wide shared fleet rather than a fresh
    executor per call — spawning workers per fit would dominate every
    small run.
    """
    name = os.environ.get("REPRO_ENGINE_BACKEND", "").strip().lower()
    if not name:
        return SerialExecutor()
    name = BACKEND_ALIASES.get(name, name)
    if name == "elastic":
        return shared_elastic_executor()
    return make_executor(name)
