"""In-process :class:`WorkerTransport` implementations.

The three legacy backends re-expressed as transports under the
:class:`~repro.engine.coordinator.Coordinator` (PR 7):

* :class:`SerialTransport` — inline: the chain runs on the calling
  thread and hooks fire mid-chain (the numerical reference cadence).
* :class:`MultiprocessTransport` — streaming: chains fan out over a
  ``ProcessPoolExecutor``; a worker process dying mid-subproblem
  (OOM-kill, ``os._exit``) breaks the pool and is surfaced as a
  :class:`~repro.simmpi.executor.SpmdError` naming the leased
  subproblem keys instead of hanging or leaking a bare
  ``BrokenProcessPool``.
* :class:`SimMpiTransport` — batched: one simulated SPMD launch per
  stage, chain ``i`` on rank ``i % nranks``, gather to root — the
  exact legacy standalone-simmpi placement, so results and failure
  shapes (``SpmdError`` per failed rank) are unchanged.

The out-of-process elastic transport lives in
:mod:`repro.engine.elastic`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.coordinator import (
    Lease,
    Payload,
    TransportEvent,
    WorkerTransport,
    annotate_failure,
)
from repro.engine.plan import Subproblem, UoIPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.simmpi.comm import SimComm
    from repro.simmpi.machine import Machine

__all__ = [
    "SerialTransport",
    "MultiprocessTransport",
    "SimMpiTransport",
]


class SerialTransport(WorkerTransport):
    """Run the chain right here, emitting per-task as it solves."""

    name = "serial"
    inline = True

    def run_inline(
        self,
        plan: UoIPlan,
        stage: str,
        chain: Sequence[Subproblem],
        recovered: dict[str, Payload],
        emit: Callable[[Subproblem, Payload], None],
    ) -> None:
        plan.run_chain(stage, list(chain), recovered, emit)


# ---------------------------------------------------------------------------
# multiprocess transport
# ---------------------------------------------------------------------------
# Worker-process state, installed once per pool via the initializer so
# the (potentially large) plan is pickled once, not per chain.
_MP_STATE: dict = {}

#: Backend name baked into worker-side failure attribution (a literal,
#: not ``MultiprocessTransport.name``, to keep the worker import-light).
_MP_BACKEND = "multiprocess"


def _mp_init(blob: bytes) -> None:
    plan, stage = pickle.loads(blob)
    _MP_STATE["plan"] = plan
    _MP_STATE["stage"] = stage
    _MP_STATE["chains"] = plan.chains(stage)


def _mp_run_chain(
    chain_index: int, recovered: dict[str, Payload]
) -> tuple[dict[str, Payload], dict]:
    from repro.telemetry.recorder import (
        Recorder,
        export_snapshot,
        use_recorder,
    )

    plan, stage = _MP_STATE["plan"], _MP_STATE["stage"]
    chain = _MP_STATE["chains"][chain_index]
    out: dict[str, Payload] = {}

    def emit(task: Subproblem, payload: Payload) -> None:
        out[task.key] = payload

    # Solver instrumentation (admm.* counters, computation spans) fires
    # in *this* process; capture it and ship it home with the results
    # so off-process runs keep the serial telemetry surface.
    recorder = Recorder()
    try:
        with use_recorder(recorder):
            plan.run_chain(stage, chain, recovered, emit)
    except BaseException as exc:
        annotate_failure(exc, _MP_BACKEND, stage, chain)
        raise
    return out, export_snapshot(recorder)


class MultiprocessTransport(WorkerTransport):
    """Streaming transport over a local ``ProcessPoolExecutor``.

    Chains are independent by contract, so they are farmed out to
    worker processes; hook dispatch stays in the parent (the
    coordinator replays it in deterministic chain order).  The plan is
    re-pickled per stage (workers need the state produced by earlier
    reductions, e.g. the support family before estimation).

    A worker that dies mid-subproblem breaks the pool; :meth:`collect`
    converts that into an ``"error"`` event carrying a
    :class:`~repro.simmpi.executor.SpmdError` whose failure names the
    leased chain's subproblem keys — the engine's one aggregated
    worker-death shape — rather than letting ``BrokenProcessPool``
    escape unattributed (or, on older pool implementations, hanging on
    the result).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``min(os.cpu_count(), 8)``.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest for read-only numpy state), else ``spawn``.
    """

    name = "multiprocess"

    def __init__(
        self, max_workers: int | None = None, start_method: str | None = None
    ) -> None:
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.max_workers = max_workers
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._stage = ""
        self._slots: list[str] = []
        self._busy: dict[int, tuple[Future, Lease]] = {}

    # ------------------------------------------------------------ lifecycle
    def open(self, plan: UoIPlan, stage: str, n_pending: int) -> None:
        blob = pickle.dumps((plan, stage))
        ctx = multiprocessing.get_context(self.start_method)
        workers = max(1, min(self.max_workers, n_pending))
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_mp_init,
            initargs=(blob,),
        )
        self._stage = stage
        self._slots = [f"mp-{i}" for i in range(workers)]
        self._busy = {}

    def close(self) -> None:
        if self._pool is not None:
            # Same semantics as the legacy ``with pool:`` block: wait
            # for in-flight chains so no orphaned worker outlives the
            # stage (a broken pool returns immediately).
            self._pool.shutdown(wait=True)
            self._pool = None
        self._busy = {}

    # ----------------------------------------------------------- scheduling
    def workers(self) -> list[str]:
        return list(self._slots)

    def idle_workers(self) -> list[str]:
        taken = {lease.worker for _, lease in self._busy.values()}
        return [slot for slot in self._slots if slot not in taken]

    def dispatch(
        self, lease: Lease, chain_index: int, recovered: dict[str, Payload]
    ) -> None:
        assert self._pool is not None, "dispatch before open()"
        fut = self._pool.submit(_mp_run_chain, chain_index, recovered)
        self._busy[lease.id] = (fut, lease)

    def collect(self, timeout: float) -> TransportEvent:
        if not self._busy:
            time.sleep(min(timeout, 0.005))
            return TransportEvent(kind="idle")
        done, _ = wait(
            [fut for fut, _ in self._busy.values()],
            timeout=timeout,
            return_when=FIRST_COMPLETED,
        )
        if not done:
            return TransportEvent(kind="idle")
        # Deterministic pick among simultaneously-done futures.
        lease_id = min(
            lid for lid, (fut, _) in self._busy.items() if fut in done
        )
        fut, lease = self._busy.pop(lease_id)
        try:
            payloads, telemetry = fut.result()
        except BrokenProcessPool as exc:
            return TransportEvent(
                kind="error",
                lease_id=lease.id,
                worker=lease.worker,
                error=self._worker_death(lease, exc),
            )
        except BaseException as exc:  # noqa: B036 - transported verbatim
            return TransportEvent(
                kind="error", lease_id=lease.id, worker=lease.worker, error=exc
            )
        return TransportEvent(
            kind="result",
            lease_id=lease.id,
            worker=lease.worker,
            payloads=payloads,
            telemetry=telemetry,
        )

    def _worker_death(
        self, lease: Lease, exc: BrokenProcessPool
    ) -> BaseException:
        """Pool breakage -> ``SpmdError`` naming the leased subproblems.

        The pool cannot say which process died, so the failure is
        attributed to the first broken lease — its chain was running
        on *some* worker when the pool collapsed.
        """
        from repro.simmpi.executor import SpmdError

        inner: BaseException = RuntimeError(
            f"worker process died mid-subproblem ({exc}); "
            f"lost lease: {lease.describe()}"
        )
        keys = ", ".join(lease.keys)
        inner.add_note(
            f"engine backend={self.name} stage={self._stage}"
            f" subproblems [{keys}]"
        )
        return SpmdError([(lease.chain_index, inner)])


# ---------------------------------------------------------------------------
# simulated-MPI transport
# ---------------------------------------------------------------------------
class SimMpiTransport(WorkerTransport):
    """Batched transport over a fresh simulated SPMD world per stage.

    Chain placement is the legacy round-robin — chain ``i`` runs on
    rank ``i % nranks`` — and results are gathered to rank 0, so the
    coordinator sees exactly what the monolithic ``SimMpiExecutor``
    used to compute; an injected rank death surfaces as
    :class:`~repro.simmpi.executor.SpmdError` with per-rank failures.
    """

    name = "simmpi"
    batched = True

    def __init__(
        self, nranks: int = 2, machine: "Machine | None" = None
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.machine = machine

    def placement(self, chain_index: int) -> str:
        return f"rank{chain_index % self.nranks}"

    def run_batch(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        pending: list[int],
        recovered_by_chain: list[dict[str, Payload]],
    ) -> dict[str, Payload]:
        from repro.simmpi.executor import SpmdError, run_spmd
        from repro.simmpi.machine import LAPTOP

        backend = self.name

        def rank_program(comm: "SimComm") -> dict[str, Payload] | None:
            out: dict[str, Payload] = {}

            def emit(task: Subproblem, payload: Payload) -> None:
                out[task.key] = payload

            for ci in pending:
                if ci % comm.size != comm.rank:
                    continue
                chain = chains[ci]
                try:
                    plan.run_chain(stage, chain, recovered_by_chain[ci], emit)
                except BaseException as exc:
                    annotate_failure(exc, backend, stage, chain)
                    raise
            gathered = comm.gather(out, root=0)
            if comm.rank != 0:
                return None
            merged: dict[str, Payload] = {}
            for part in gathered:
                merged.update(part)
            return merged

        res = run_spmd(
            self.nranks,
            rank_program,
            machine=self.machine if self.machine is not None else LAPTOP,
        )
        if res.failed_ranks:
            raise SpmdError(sorted(res.failed_ranks.items()))
        merged = res.values[0]
        assert merged is not None
        return merged
