"""Pluggable execution backends for :class:`~repro.engine.plan.UoIPlan`.

Three backends consume the same plan:

* :class:`SerialExecutor` — chains run in order on the calling thread;
  the numerical reference every other backend is pinned against.
* :class:`MultiprocessExecutor` — chains fan out over a
  ``ProcessPoolExecutor`` for real multi-core speedup on local
  hardware.  Because plans are pure (all randomness pre-drawn, chains
  independent), the results are bitwise identical to serial: the same
  float operations run, merely elsewhere.
* :class:`SimMpiExecutor` — chains run on simulated MPI ranks
  (:func:`repro.simmpi.executor.run_spmd`).  Standalone it
  round-robins chains over a fresh simulated world; *bound* (via
  :meth:`SimMpiExecutor.bound`) it becomes the per-rank engine inside
  an existing SPMD program, filtering tasks by the caller's
  P_B x P_lambda :class:`~repro.core.parallel.ProcessGrid` — this is
  how the legacy distributed drivers run on the engine without
  changing a single collective.

Failure attribution: any exception escaping a chain or a reduction is
annotated (PEP 678 ``add_note``) with the backend name and the plan
position (stage + subproblem keys) before it propagates, so
``SpmdError``/``failed_ranks`` reports say *which* subproblem on
*which* backend died.

:func:`run_plan` is the driver loop shared by every entry point:
stage → hooks' ``on_stage_end`` (checkpoint flush) → stage reduction.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.engine.hooks import EngineHook, HookList
from repro.engine.plan import Subproblem, UoIPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.core.parallel import ProcessGrid
    from repro.simmpi.comm import SimComm
    from repro.simmpi.machine import Machine

#: The engine's result currency: one checkpointable payload per task.
Payload = dict[str, np.ndarray]

__all__ = [
    "Executor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "SimMpiExecutor",
    "VerifyingExecutor",
    "run_plan",
    "annotate_failure",
    "plan_verification_enabled",
]


def annotate_failure(
    exc: BaseException,
    backend: str,
    stage: str,
    tasks: list[Subproblem] | None = None,
) -> BaseException:
    """Attach engine context to an exception (PEP 678 note).

    The note names the executing backend and the plan position —
    stage plus the subproblem keys of the failing chain — so aggregated
    reports (:class:`~repro.simmpi.executor.SpmdError`,
    ``failed_ranks``) identify exactly which subproblem died where.
    """
    where = f"engine backend={backend} stage={stage}"
    if tasks:
        keys = ", ".join(t.key for t in tasks)
        where += f" subproblems [{keys}]"
    try:
        exc.add_note(where)
    except Exception:  # pragma: no cover - non-standard exception types
        pass
    return exc


class Executor:
    """Backend interface: run one stage of a plan under the hooks.

    ``run_stage`` must honor the engine contract: chain order inside a
    chain, ``lookup`` before solving, ``on_subproblem_done`` exactly
    once per task, and a returned ``{key: payload}`` table covering
    every task the backend is responsible for.
    """

    #: Backend name used in failure attribution and CLI listings.
    name = "abstract"

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, dict[str, np.ndarray]]:
        raise NotImplementedError


def _lookup_chain(
    chain: list[Subproblem], hooks: HookList
) -> dict[str, dict[str, np.ndarray]]:
    """Recovered payloads for a chain (hook dispatch included)."""
    recovered = {}
    for task in chain:
        payload = hooks.lookup(task)
        if payload is not None:
            recovered[task.key] = payload
    return recovered


class SerialExecutor(Executor):
    """In-order, in-process execution — the reference backend."""

    name = "serial"

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        results: dict[str, Payload] = {}
        for chain in chains:
            recovered = _lookup_chain(chain, hooks)
            for task in chain:
                if task.key in recovered:
                    results[task.key] = recovered[task.key]
                    hooks.on_subproblem_done(
                        task, recovered[task.key], recovered=True
                    )
            if len(recovered) == len(chain):
                continue

            def emit(
                task: Subproblem,
                payload: Payload,
                _results: dict[str, Payload] = results,
            ) -> None:
                _results[task.key] = payload
                hooks.on_subproblem_done(task, payload, recovered=False)

            try:
                plan.run_chain(stage, chain, recovered, emit)
            except BaseException as exc:
                annotate_failure(exc, self.name, stage, chain)
                raise
        return results


# ---------------------------------------------------------------------------
# multiprocess backend
# ---------------------------------------------------------------------------
# Worker-process state, installed once per pool via the initializer so
# the (potentially large) plan is pickled once, not per chain.
_MP_STATE: dict = {}


def _mp_init(blob: bytes) -> None:
    plan, stage = pickle.loads(blob)
    _MP_STATE["plan"] = plan
    _MP_STATE["stage"] = stage
    _MP_STATE["chains"] = plan.chains(stage)


def _mp_run_chain(
    chain_index: int, recovered: dict[str, dict[str, np.ndarray]]
) -> dict[str, dict[str, np.ndarray]]:
    plan, stage = _MP_STATE["plan"], _MP_STATE["stage"]
    chain = _MP_STATE["chains"][chain_index]
    out: dict[str, Payload] = {}

    def emit(task: Subproblem, payload: Payload) -> None:
        out[task.key] = payload

    try:
        plan.run_chain(stage, chain, recovered, emit)
    except BaseException as exc:
        annotate_failure(exc, MultiprocessExecutor.name, stage, chain)
        raise
    return out


class MultiprocessExecutor(Executor):
    """Real multi-core execution over a process pool.

    Chains are independent by contract, so they are farmed out to
    worker processes; hook dispatch stays in the parent and replays in
    deterministic chain order once the stage's futures resolve.  The
    plan is re-pickled per stage (workers need the state produced by
    earlier reductions, e.g. the support family before estimation).

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``min(os.cpu_count(), 8)``.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest for read-only numpy state), else ``spawn``.
    """

    name = "multiprocess"

    def __init__(
        self, max_workers: int | None = None, start_method: str | None = None
    ) -> None:
        if max_workers is None:
            max_workers = min(os.cpu_count() or 1, 8)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.max_workers = max_workers
        self.start_method = start_method

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        recovered_by_chain: list[dict[str, Payload]] = []
        pending: list[int] = []
        for ci, chain in enumerate(chains):
            recovered = _lookup_chain(chain, hooks)
            recovered_by_chain.append(recovered)
            if len(recovered) < len(chain):
                pending.append(ci)

        computed: dict[int, dict[str, Payload]] = {}
        if pending:
            blob = pickle.dumps((plan, stage))
            ctx = multiprocessing.get_context(self.start_method)
            workers = min(self.max_workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_mp_init,
                initargs=(blob,),
            ) as pool:
                futures = {
                    ci: pool.submit(_mp_run_chain, ci, recovered_by_chain[ci])
                    for ci in pending
                }
                for ci, fut in futures.items():
                    try:
                        computed[ci] = fut.result()
                    except BaseException as exc:
                        # Workers annotate before raising, but a chain
                        # that died before reaching the worker (pickle,
                        # pool teardown) still needs attribution.
                        if "engine backend=" not in "".join(
                            getattr(exc, "__notes__", ())
                        ):
                            annotate_failure(exc, self.name, stage, chains[ci])
                        raise

        # Deterministic hook replay + result assembly, in chain order.
        results: dict[str, Payload] = {}
        for ci, chain in enumerate(chains):
            recovered = recovered_by_chain[ci]
            solved = computed.get(ci, {})
            for task in chain:
                if task.key in recovered:
                    results[task.key] = recovered[task.key]
                    hooks.on_subproblem_done(
                        task, recovered[task.key], recovered=True
                    )
                else:
                    results[task.key] = solved[task.key]
                    hooks.on_subproblem_done(
                        task, solved[task.key], recovered=False
                    )
        return results


# ---------------------------------------------------------------------------
# simulated-MPI backend
# ---------------------------------------------------------------------------
class SimMpiExecutor(Executor):
    """Simulated-MPI execution, standalone or bound to an SPMD program.

    *Standalone* (``SimMpiExecutor(nranks=4)``): each stage launches a
    fresh simulated world via :func:`~repro.simmpi.executor.run_spmd`;
    chains are round-robined over the ranks (chain ``i`` on rank
    ``i % nranks``), results are gathered to rank 0, and hooks replay
    in the parent in deterministic chain order.  An injected rank
    death surfaces as :class:`~repro.simmpi.executor.SpmdError` — the
    standalone engine has no restart loop of its own; resilience runs
    go through the distributed drivers.

    *Bound* (:meth:`bound`): the executor runs *inside* an existing
    rank program, as this rank's slice of the engine.  Chains are
    filtered by the caller's P_B x P_lambda grid (bootstrap ownership
    per chain, λ ownership per task) and the plan's ``run_chain`` is
    free to use the cell communicator — this is how the distributed
    UoI drivers keep their consensus-ADMM collectives bit-for-bit
    while delegating orchestration to the engine.
    """

    name = "simmpi"

    def __init__(
        self, nranks: int = 2, machine: "Machine | None" = None
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.machine = machine
        self._grid = None

    @classmethod
    def bound(cls, grid: "ProcessGrid") -> "SimMpiExecutor":
        """Per-rank executor bound to an existing SPMD process grid."""
        ex = cls(nranks=grid.world.size)
        ex._grid = grid
        return ex

    # ----------------------------------------------------------- modes
    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        if self._grid is not None:
            return self._run_bound(plan, stage, chains, hooks)
        return self._run_standalone(plan, stage, chains, hooks)

    def _run_bound(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        grid = self._grid
        results: dict[str, Payload] = {}
        for chain in chains:
            if not grid.owns_bootstrap(chain[0].bootstrap):
                continue
            owned = [
                t
                for t in chain
                if t.lam_index is None or grid.owns_lambda(t.lam_index)
            ]
            if not owned:
                continue
            recovered = {}
            for task in owned:
                payload = hooks.lookup(task)
                if payload is not None:
                    recovered[task.key] = payload
                    results[task.key] = payload
                    hooks.on_subproblem_done(task, payload, recovered=True)
            if len(recovered) == len(owned):
                continue

            def emit(
                task: Subproblem,
                payload: Payload,
                _results: dict[str, Payload] = results,
            ) -> None:
                _results[task.key] = payload
                hooks.on_subproblem_done(task, payload, recovered=False)

            try:
                plan.run_chain(stage, owned, recovered, emit)
            except BaseException as exc:
                annotate_failure(exc, self.name, stage, owned)
                raise
        return results

    def _run_standalone(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        from repro.simmpi.executor import SpmdError, run_spmd
        from repro.simmpi.machine import LAPTOP

        recovered_by_chain: list[dict[str, Payload]] = []
        pending: list[int] = []
        for ci, chain in enumerate(chains):
            recovered = _lookup_chain(chain, hooks)
            recovered_by_chain.append(recovered)
            if len(recovered) < len(chain):
                pending.append(ci)

        computed: dict[str, Payload] = {}
        if pending:
            backend = self.name

            def rank_program(comm: "SimComm") -> dict[str, Payload] | None:
                out: dict[str, Payload] = {}

                def emit(task: Subproblem, payload: Payload) -> None:
                    out[task.key] = payload

                for ci in pending:
                    if ci % comm.size != comm.rank:
                        continue
                    chain = chains[ci]
                    try:
                        plan.run_chain(
                            stage, chain, recovered_by_chain[ci], emit
                        )
                    except BaseException as exc:
                        annotate_failure(exc, backend, stage, chain)
                        raise
                gathered = comm.gather(out, root=0)
                if comm.rank != 0:
                    return None
                merged: dict[str, Payload] = {}
                for part in gathered:
                    merged.update(part)
                return merged

            res = run_spmd(
                self.nranks,
                rank_program,
                machine=self.machine if self.machine is not None else LAPTOP,
            )
            if res.failed_ranks:
                raise SpmdError(sorted(res.failed_ranks.items()))
            computed = res.values[0]

        results: dict[str, Payload] = {}
        for ci, chain in enumerate(chains):
            recovered = recovered_by_chain[ci]
            for task in chain:
                if task.key in recovered:
                    results[task.key] = recovered[task.key]
                    hooks.on_subproblem_done(
                        task, recovered[task.key], recovered=True
                    )
                else:
                    results[task.key] = computed[task.key]
                    hooks.on_subproblem_done(
                        task, computed[task.key], recovered=False
                    )
        return results


# ---------------------------------------------------------------------------
# pre-run verification
# ---------------------------------------------------------------------------
class VerifyingExecutor(Executor):
    """Wrap a backend, verifying each plan before its first stage.

    The wrapped executor's behavior is untouched; the only addition is
    one read-only :func:`repro.analysis.planver.verify_plan` pass per
    plan (cached by plan identity), raising
    :class:`~repro.analysis.planver.PlanVerificationError` on any
    finding.  Obtained via ``make_executor(name, verify=True)``.
    """

    def __init__(self, inner: Executor) -> None:
        self.inner = inner
        self._verified: set[int] = set()

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        if id(plan) not in self._verified:
            from repro.analysis.planver import assert_valid_plan

            assert_valid_plan(plan)
            self._verified.add(id(plan))
        return self.inner.run_stage(plan, stage, chains, hooks)


def plan_verification_enabled() -> bool:
    """Whether ``REPRO_PLAN_VERIFY`` opts this process into pre-run
    plan verification (any value but empty/``0``/``false``/``no``)."""
    value = os.environ.get("REPRO_PLAN_VERIFY", "").strip().lower()
    return value not in ("", "0", "false", "no")


# ---------------------------------------------------------------------------
# driver loop
# ---------------------------------------------------------------------------
def run_plan(
    plan: UoIPlan,
    executor: Executor,
    hooks: "Iterable[EngineHook] | HookList" = (),
    verify: bool | None = None,
) -> Any:
    """Run every stage of ``plan`` on ``executor``; returns ``finalize()``.

    Per stage: execute all chains, fire ``on_stage_end`` (checkpoint
    hooks flush here, making solved state durable *before* the
    reduction's collectives — the ordering the legacy drivers pinned),
    then reduce.  ``hooks`` is any iterable of
    :class:`~repro.engine.hooks.EngineHook`.

    ``verify`` opts into pre-run plan verification
    (:func:`repro.analysis.planver.verify_plan`): ``True``/``False``
    explicitly, or ``None`` (default) to follow the
    ``REPRO_PLAN_VERIFY`` environment variable.  All four UoI drivers
    funnel through this loop, so the env knob covers every entry
    point.  Verification is read-only — verified runs are bitwise
    identical to unverified ones.
    """
    if verify is None:
        verify = plan_verification_enabled()
    if verify:
        from repro.analysis.planver import assert_valid_plan

        assert_valid_plan(plan)
    hook_list = hooks if isinstance(hooks, HookList) else HookList(hooks)
    hook_list.on_run_start(plan, executor)
    for stage in plan.stages:
        chains = plan.chains(stage)
        results = executor.run_stage(plan, stage, chains, hook_list)
        hook_list.on_stage_end(stage, plan)
        try:
            plan.reduce(stage, results)
        except BaseException as exc:
            annotate_failure(exc, executor.name, f"{stage}/reduce")
            raise
    hook_list.on_run_end(plan)
    return plan.finalize()
