"""Pluggable execution backends for :class:`~repro.engine.plan.UoIPlan`.

Since PR 7 every backend is a thin shell: a
:class:`~repro.engine.coordinator.Coordinator` owns orchestration
(lookup, lease assignment, deterministic hook replay, straggler
speculation) and a :class:`~repro.engine.coordinator.WorkerTransport`
owns *where chains run*:

* :class:`SerialExecutor` — inline transport; chains run in order on
  the calling thread: the numerical reference every other backend is
  pinned against.
* :class:`MultiprocessExecutor` — streaming transport over a
  ``ProcessPoolExecutor`` for real multi-core speedup on local
  hardware.  Because plans are pure (all randomness pre-drawn, chains
  independent), the results are bitwise identical to serial: the same
  float operations run, merely elsewhere.  A worker process dying
  mid-subproblem surfaces as :class:`~repro.simmpi.executor.SpmdError`
  naming the lost subproblem keys.
* :class:`SimMpiExecutor` — batched transport over simulated MPI
  ranks (:func:`repro.simmpi.executor.run_spmd`).  Standalone it
  round-robins chains over a fresh simulated world; *bound* (via
  :meth:`SimMpiExecutor.bound`) it becomes the per-rank engine inside
  an existing SPMD program, filtering tasks by the caller's
  P_B x P_lambda :class:`~repro.core.parallel.ProcessGrid` — this is
  how the legacy distributed drivers run on the engine without
  changing a single collective.  (Bound mode runs *inside* a rank
  program and bypasses the coordinator entirely.)
* ``elastic`` (:class:`repro.engine.elastic.ElasticExecutor`) — the
  out-of-process streaming transport: socket workers that join and
  leave mid-run, with lease reassignment and speculation.

Failure attribution: any exception escaping a chain or a reduction is
annotated (PEP 678 ``add_note``) with the backend name and the plan
position (stage + subproblem keys) before it propagates, so
``SpmdError``/``failed_ranks`` reports say *which* subproblem on
*which* backend died.

:func:`run_plan` is the driver loop shared by every entry point:
stage → hooks' ``on_stage_end`` (checkpoint flush) → stage reduction.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.engine.coordinator import (
    Coordinator,
    Payload,
    WorkerTransport,
    annotate_failure,
)
from repro.engine.hooks import EngineHook, HookList
from repro.engine.plan import Subproblem, UoIPlan
from repro.engine.transports import (
    MultiprocessTransport,
    SerialTransport,
    SimMpiTransport,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.core.parallel import ProcessGrid
    from repro.simmpi.machine import Machine

__all__ = [
    "Executor",
    "CoordinatedExecutor",
    "SerialExecutor",
    "MultiprocessExecutor",
    "SimMpiExecutor",
    "VerifyingExecutor",
    "run_plan",
    "annotate_failure",
    "plan_verification_enabled",
    "Payload",
]


class Executor:
    """Backend interface: run one stage of a plan under the hooks.

    ``run_stage`` must honor the engine contract: chain order inside a
    chain, ``lookup`` before solving, ``on_subproblem_done`` exactly
    once per task, and a returned ``{key: payload}`` table covering
    every task the backend is responsible for.
    """

    #: Backend name used in failure attribution and CLI listings.
    name = "abstract"

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, dict[str, np.ndarray]]:
        raise NotImplementedError


class CoordinatedExecutor(Executor):
    """An executor that is a coordinator driving one transport.

    Subclasses construct the transport; everything else — lookups,
    leases, completion tracking, deterministic hook replay — is the
    coordinator's, shared by every backend.
    """

    def __init__(
        self, transport: WorkerTransport, **coordinator_kwargs: Any
    ) -> None:
        self.transport = transport
        self._coordinator = Coordinator(transport, **coordinator_kwargs)

    @property
    def coordinator(self) -> Coordinator:
        return self._coordinator

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        return self._coordinator.run_stage(plan, stage, chains, hooks)


class SerialExecutor(CoordinatedExecutor):
    """In-order, in-process execution — the reference backend."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__(SerialTransport())


class MultiprocessExecutor(CoordinatedExecutor):
    """Real multi-core execution over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``min(os.cpu_count(), 8)``.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheapest for read-only numpy state), else ``spawn``.
    """

    name = "multiprocess"

    def __init__(
        self, max_workers: int | None = None, start_method: str | None = None
    ) -> None:
        transport = MultiprocessTransport(
            max_workers=max_workers, start_method=start_method
        )
        super().__init__(transport)
        self.max_workers = transport.max_workers
        self.start_method = transport.start_method


class SimMpiExecutor(CoordinatedExecutor):
    """Simulated-MPI execution, standalone or bound to an SPMD program.

    *Standalone* (``SimMpiExecutor(nranks=4)``): each stage launches a
    fresh simulated world via :func:`~repro.simmpi.executor.run_spmd`;
    chains are round-robined over the ranks (chain ``i`` on rank
    ``i % nranks``), results are gathered to rank 0, and hooks replay
    in the parent in deterministic chain order.  An injected rank
    death surfaces as :class:`~repro.simmpi.executor.SpmdError` — the
    standalone engine has no restart loop of its own; resilience runs
    go through the distributed drivers.

    *Bound* (:meth:`bound`): the executor runs *inside* an existing
    rank program, as this rank's slice of the engine.  Chains are
    filtered by the caller's P_B x P_lambda grid (bootstrap ownership
    per chain, λ ownership per task) and the plan's ``run_chain`` is
    free to use the cell communicator — this is how the distributed
    UoI drivers keep their consensus-ADMM collectives bit-for-bit
    while delegating orchestration to the engine.
    """

    name = "simmpi"

    def __init__(
        self, nranks: int = 2, machine: "Machine | None" = None
    ) -> None:
        transport = SimMpiTransport(nranks=nranks, machine=machine)
        super().__init__(transport)
        self.nranks = transport.nranks
        self.machine = transport.machine
        self._grid: "ProcessGrid | None" = None

    @classmethod
    def bound(cls, grid: "ProcessGrid") -> "SimMpiExecutor":
        """Per-rank executor bound to an existing SPMD process grid."""
        ex = cls(nranks=grid.world.size)
        ex._grid = grid
        return ex

    # ----------------------------------------------------------- modes
    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        if self._grid is not None:
            return self._run_bound(plan, stage, chains, hooks)
        return super().run_stage(plan, stage, chains, hooks)

    def _run_bound(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        grid = self._grid
        assert grid is not None
        results: dict[str, Payload] = {}
        for chain in chains:
            if not grid.owns_bootstrap(chain[0].bootstrap):
                continue
            owned = [
                t
                for t in chain
                if t.lam_index is None or grid.owns_lambda(t.lam_index)
            ]
            if not owned:
                continue
            recovered = {}
            for task in owned:
                payload = hooks.lookup(task)
                if payload is not None:
                    recovered[task.key] = payload
                    results[task.key] = payload
                    hooks.on_subproblem_done(task, payload, recovered=True)
            if len(recovered) == len(owned):
                continue

            def emit(
                task: Subproblem,
                payload: Payload,
                _results: dict[str, Payload] = results,
            ) -> None:
                _results[task.key] = payload
                hooks.on_subproblem_done(task, payload, recovered=False)

            try:
                plan.run_chain(stage, owned, recovered, emit)
            except BaseException as exc:
                annotate_failure(exc, self.name, stage, owned)
                raise
        return results


# ---------------------------------------------------------------------------
# pre-run verification
# ---------------------------------------------------------------------------
class VerifyingExecutor(Executor):
    """Wrap a backend, verifying each plan before its first stage.

    The wrapped executor's behavior is untouched; the only addition is
    one read-only :func:`repro.analysis.planver.verify_plan` pass per
    plan (cached by plan identity), raising
    :class:`~repro.analysis.planver.PlanVerificationError` on any
    finding.  Obtained via ``make_executor(name, verify=True)``.
    """

    def __init__(self, inner: Executor) -> None:
        self.inner = inner
        self._verified: set[int] = set()

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    def run_stage(
        self,
        plan: UoIPlan,
        stage: str,
        chains: list[list[Subproblem]],
        hooks: HookList,
    ) -> dict[str, Payload]:
        if id(plan) not in self._verified:
            from repro.analysis.planver import assert_valid_plan

            assert_valid_plan(plan)
            self._verified.add(id(plan))
        return self.inner.run_stage(plan, stage, chains, hooks)


def plan_verification_enabled() -> bool:
    """Whether ``REPRO_PLAN_VERIFY`` opts this process into pre-run
    plan verification (any value but empty/``0``/``false``/``no``)."""
    value = os.environ.get("REPRO_PLAN_VERIFY", "").strip().lower()
    return value not in ("", "0", "false", "no")


# ---------------------------------------------------------------------------
# driver loop
# ---------------------------------------------------------------------------
def run_plan(
    plan: UoIPlan,
    executor: Executor,
    hooks: "Iterable[EngineHook] | HookList" = (),
    verify: bool | None = None,
) -> Any:
    """Run every stage of ``plan`` on ``executor``; returns ``finalize()``.

    Per stage: execute all chains, fire ``on_stage_end`` (checkpoint
    hooks flush here, making solved state durable *before* the
    reduction's collectives — the ordering the legacy drivers pinned),
    then reduce.  ``hooks`` is any iterable of
    :class:`~repro.engine.hooks.EngineHook`.

    ``verify`` opts into pre-run plan verification
    (:func:`repro.analysis.planver.verify_plan`): ``True``/``False``
    explicitly, or ``None`` (default) to follow the
    ``REPRO_PLAN_VERIFY`` environment variable.  All four UoI drivers
    funnel through this loop, so the env knob covers every entry
    point.  Verification is read-only — verified runs are bitwise
    identical to unverified ones.
    """
    if verify is None:
        verify = plan_verification_enabled()
    if verify:
        from repro.analysis.planver import assert_valid_plan

        assert_valid_plan(plan)
    hook_list = hooks if isinstance(hooks, HookList) else HookList(hooks)
    hook_list.on_run_start(plan, executor)
    for stage in plan.stages:
        chains = plan.chains(stage)
        results = executor.run_stage(plan, stage, chains, hook_list)
        hook_list.on_stage_end(stage, plan)
        try:
            plan.reduce(stage, results)
        except BaseException as exc:
            annotate_failure(exc, executor.name, f"{stage}/reduce")
            raise
    hook_list.on_run_end(plan)
    return plan.finalize()
