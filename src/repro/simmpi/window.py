"""One-sided RMA windows (MPI_Win Put/Get/Lock/Fence).

The paper's two data-movement contributions both ride on MPI one-sided
communication:

* the Tier-2 randomized shuffle of :mod:`repro.distribution.randomized`
  uses ``Get`` to pull random sample rows out of other ranks' Tier-1
  buffers;
* the distributed Kronecker product of
  :mod:`repro.distribution.kron_dist` has a small set of ``n_reader``
  ranks expose X and Y in windows, and every compute rank ``Get``\\ s
  the blocks it needs to assemble its slice of ``(I ⊗ X)`` and
  ``vec Y``.

A :class:`Window` is created collectively; each rank may expose a
local numpy array (or nothing).  ``Get``/``Put`` copy real data under a
per-target mutex and charge the *origin's* clock with the RMA cost
model — including a ``contention`` factor for the many-origins-one-
target hot spot that the paper identifies as the UoI_VAR distribution
bottleneck.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.simmpi import timing
from repro.simmpi.clock import TimeCategory
from repro.simmpi.comm import SimComm

__all__ = ["Window", "RmaError"]


class RmaError(RuntimeError):
    """A one-sided operation failed permanently (retry budget exhausted)."""


class _WindowState:
    """Shared state of one window: exposed buffers + per-target locks."""

    def __init__(self, size: int) -> None:
        self.buffers: dict[int, np.ndarray] = {}
        self.locks = [threading.Lock() for _ in range(size)]
        #: Count of origins currently targeting each rank, used to model
        #: bandwidth sharing at the target NIC.
        self.active = [0] * size
        self.active_lock = threading.Lock()


class Window:
    """Per-rank handle on a collectively created RMA window.

    Parameters
    ----------
    comm:
        Communicator over which the window is created (collective).
    local:
        1-D or 2-D numpy array this rank exposes, or ``None`` to expose
        nothing (pure-origin ranks).
    category:
        Time category RMA operations charge to —
        ``TimeCategory.DISTRIBUTION`` by default, matching the paper's
        "Distribution" bar.
    max_get_retries:
        How many consecutive transient Get failures (injected via a
        :class:`repro.resilience.faults.FaultPlan`) are retried before
        the operation fails permanently with :class:`RmaError`.
    """

    def __init__(
        self,
        comm: SimComm,
        local: np.ndarray | None = None,
        *,
        category: TimeCategory = TimeCategory.DISTRIBUTION,
        max_get_retries: int = 8,
    ) -> None:
        self.comm = comm
        self.category = category
        self.max_get_retries = max_get_retries
        #: Transient Get failures survived by this rank (diagnostics).
        self.retries = 0
        #: Fence-epoch counter: all participants fence collectively, so
        #: every rank agrees on the current epoch number.  The dynamic
        #: race checker groups one-sided accesses by ``(window, epoch)``.
        self._epoch = 0
        self._freed = False
        if local is not None:
            local = np.ascontiguousarray(local)
        # Collective creation: rank 0 allocates the shared state and
        # broadcasts it; everyone registers its exposed buffer.
        state = comm.bcast(
            _WindowState(comm.size) if comm.rank == 0 else None,
            root=0,
            category=category,
        )
        self._state = state
        if local is not None:
            state.buffers[comm.rank] = local
        comm.barrier(category=category)

    @property
    def _checker(self):
        """The run's dynamic checker, or ``None`` (no checking)."""
        return self.comm.checker

    @property
    def _win_id(self) -> int:
        """Identity shared by every rank's handle on this window."""
        return id(self._state)

    def _check_target(self, target_rank: int) -> np.ndarray:
        if self._freed:
            raise RmaError("window already freed: one-sided access after free()")
        if not (0 <= target_rank < self.comm.size):
            raise ValueError(
                f"target_rank {target_rank} out of range for size {self.comm.size}"
            )
        buf = self._state.buffers.get(target_rank)
        if buf is None:
            raise ValueError(f"rank {target_rank} exposed no buffer in this window")
        return buf

    def _charge(self, nbytes: int, target_rank: int) -> None:
        with self._state.active_lock:
            contention = max(1, self._state.active[target_rank])
        self.comm.clock.charge(
            self.category, timing.rma_time(self.comm.machine, nbytes, contention=contention)
        )

    def get(self, target_rank: int, key) -> np.ndarray:
        """One-sided read of ``exposed[key]`` from ``target_rank``.

        ``key`` is any numpy basic/advanced index (slice, fancy index,
        tuple).  Returns a private copy; charges this rank's clock.

        Under an injected :class:`~repro.resilience.faults.FaultPlan`, a
        Get may fail transiently: the origin pays the wire latency of
        the failed attempt and retries, up to ``max_get_retries``
        consecutive failures, after which :class:`RmaError` is raised.
        Failed attempts never touch the target's exposure lock, so the
        window stays usable by other origins throughout.
        """
        injector = getattr(self.comm, "injector", None)
        if injector is not None:
            attempts = 0
            while injector.on_rma_get(self.comm.clock, target_rank):
                attempts += 1
                self.retries += 1
                # A failed attempt costs the round-trip latency but
                # moves no payload.
                self.comm.clock.charge(
                    self.category, timing.rma_time(self.comm.machine, 0)
                )
                if attempts >= self.max_get_retries:
                    raise RmaError(
                        f"Get from rank {target_rank} failed "
                        f"{attempts} consecutive times"
                    )
        buf = self._check_target(target_rank)
        if self._checker is not None:
            self._checker.on_rma(
                self._win_id, self._epoch, self.comm.rank, target_rank,
                "get", key, len(buf),
            )
        state = self._state
        with state.active_lock:
            state.active[target_rank] += 1
        try:
            with state.locks[target_rank]:
                out = np.array(buf[key], copy=True)
        finally:
            with state.active_lock:
                state.active[target_rank] -= 1
        self._charge(out.nbytes, target_rank)
        return out

    def put(self, target_rank: int, key, value: np.ndarray) -> None:
        """One-sided write of ``value`` into ``exposed[key]`` at ``target_rank``."""
        buf = self._check_target(target_rank)
        value = np.asarray(value)
        if self._checker is not None:
            self._checker.on_rma(
                self._win_id, self._epoch, self.comm.rank, target_rank,
                "put", key, len(buf),
            )
        state = self._state
        with state.active_lock:
            state.active[target_rank] += 1
        try:
            with state.locks[target_rank]:
                buf[key] = value
        finally:
            with state.active_lock:
                state.active[target_rank] -= 1
        self._charge(value.nbytes, target_rank)

    def accumulate(self, target_rank: int, key, value: np.ndarray) -> None:
        """One-sided ``+=`` (MPI_Accumulate with MPI_SUM).

        Like ``MPI_Accumulate``, the contributed datatype must be
        compatible with the target's: a value that cannot be cast to
        the exposed buffer's dtype under numpy ``same_kind`` rules
        (e.g. float into an integer buffer) raises ``ValueError``, as
        does a value whose shape does not broadcast over the selected
        target region.
        """
        buf = self._check_target(target_rank)
        value = np.asarray(value)
        if not np.can_cast(value.dtype, buf.dtype, casting="same_kind"):
            raise ValueError(
                f"accumulate dtype mismatch: cannot accumulate {value.dtype} "
                f"into a {buf.dtype} buffer on rank {target_rank}"
            )
        if self._checker is not None:
            self._checker.on_rma(
                self._win_id, self._epoch, self.comm.rank, target_rank,
                "accumulate", key, len(buf),
            )
        state = self._state
        with state.active_lock:
            state.active[target_rank] += 1
        try:
            with state.locks[target_rank]:
                try:
                    buf[key] += value
                except ValueError as exc:
                    raise ValueError(
                        f"accumulate shape mismatch: value of shape "
                        f"{value.shape} does not broadcast over target key "
                        f"{key!r} on rank {target_rank}: {exc}"
                    ) from exc
        finally:
            with state.active_lock:
                state.active[target_rank] -= 1
        self._charge(value.nbytes, target_rank)

    def fence(self) -> None:
        """Synchronize all window participants (MPI_Win_fence).

        Closes the current access epoch: when a dynamic checker is
        attached, the epoch's recorded one-sided operations are
        analyzed for conflicting access (after the barrier, so every
        participant's accesses are in).
        """
        if self._freed:
            raise RmaError("window already freed: fence() after free()")
        self.comm.barrier(category=self.category)
        closed, self._epoch = self._epoch, self._epoch + 1
        if self._checker is not None:
            self._checker.end_epoch(self._win_id, closed)

    def free(self) -> None:
        """Collective teardown (drops exposed-buffer references).

        Subsequent one-sided operations on this handle raise
        :class:`RmaError`; a second ``free`` is a local no-op.
        """
        if self._freed:
            return
        self.comm.barrier(category=self.category)
        if self._checker is not None:
            self._checker.end_epoch(self._win_id, self._epoch)
        self._state.buffers.pop(self.comm.rank, None)
        self._freed = True
