"""Per-rank virtual clocks and time-category accounting.

The paper reports runtimes broken down into four bars: *Computation*,
*Communication* (MPI collectives, dominated by ``MPI_Allreduce``),
*Distribution* (the one-sided data shuffling / distributed Kronecker
product) and *Data I/O* (parallel-HDF5 load and save).  Every rank in
the functional simulator owns a :class:`RankClock` that accumulates
modeled seconds into exactly those categories, so experiment drivers
can print the same breakdowns as the paper's Figures 2, 3, 7 and 8.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

__all__ = ["TimeCategory", "RankClock", "merge_breakdowns"]


class TimeCategory(enum.Enum):
    """The paper's four runtime categories."""

    COMPUTE = "computation"
    COMMUNICATION = "communication"
    DISTRIBUTION = "distribution"
    DATA_IO = "data_io"


@dataclass
class RankClock:
    """Virtual clock of one simulated MPI rank.

    Attributes
    ----------
    rank:
        Owning rank id (world), for diagnostics.
    now:
        Current virtual time in seconds.
    breakdown:
        Seconds accumulated per :class:`TimeCategory`.
    """

    rank: int = 0
    now: float = 0.0
    breakdown: dict[TimeCategory, float] = field(
        default_factory=lambda: {c: 0.0 for c in TimeCategory}
    )
    #: Optional :class:`repro.simmpi.trace.Tracer`: when set, every
    #: clock advance is recorded as a timeline event.
    tracer: object | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def charge(self, category: TimeCategory, seconds: float) -> None:
        """Advance this clock by ``seconds``, attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if not isinstance(category, TimeCategory):
            raise TypeError(f"category must be a TimeCategory, got {category!r}")
        with self._lock:
            start = self.now
            self.now += seconds
            self.breakdown[category] += seconds
        if self.tracer is not None:
            self.tracer.record(self.rank, category, start, start + seconds)

    def advance_to(self, t: float, category: TimeCategory) -> None:
        """Move the clock forward to absolute time ``t``.

        Used by synchronizing collectives: waiting for slower ranks is
        attributed to the collective's category (this matches how MPI
        profilers attribute time spent inside a blocking call).  A
        target in the past is a no-op — clocks never run backward.
        """
        advanced = None
        with self._lock:
            if t > self.now:
                advanced = (self.now, t)
                self.breakdown[category] += t - self.now
                self.now = t
        if advanced is not None and self.tracer is not None:
            self.tracer.record(self.rank, category, *advanced)

    def charge_compute(self, seconds: float) -> None:
        """Convenience wrapper for :attr:`TimeCategory.COMPUTE`."""
        self.charge(TimeCategory.COMPUTE, seconds)

    def total(self) -> float:
        """Total accumulated time (== ``now`` when started from zero)."""
        return sum(self.breakdown.values())

    def snapshot(self) -> dict[str, float]:
        """Breakdown as a plain ``{category-name: seconds}`` dict."""
        with self._lock:
            return {c.value: v for c, v in self.breakdown.items()}


def merge_breakdowns(
    clocks: list[RankClock], *, how: str = "max"
) -> dict[str, float]:
    """Combine per-rank breakdowns into one report row.

    Parameters
    ----------
    clocks:
        Clocks of all participating ranks.
    how:
        ``"max"`` (default) — per-category maximum over ranks, the
        convention the paper uses when reporting a phase time for the
        whole job; ``"mean"`` — per-category average.
    """
    if not clocks:
        raise ValueError("merge_breakdowns needs at least one clock")
    if how not in ("max", "mean"):
        raise ValueError(f"how must be 'max' or 'mean', got {how!r}")
    out: dict[str, float] = {}
    for cat in TimeCategory:
        vals = [c.breakdown[cat] for c in clocks]
        out[cat.value] = max(vals) if how == "max" else sum(vals) / len(vals)
    return out
