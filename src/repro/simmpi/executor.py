"""SPMD launcher: run an MPI-style program on N simulated ranks.

:func:`run_spmd` is the simulated equivalent of
``mpiexec -n N python program.py``: it creates a world communicator,
one virtual clock and one thread per rank, runs
``fn(comm, *args, **kwargs)`` everywhere, and returns the rank-ordered
list of return values (plus the clocks, for timing reports).

Error handling mirrors a well-behaved MPI runtime: a rank that raises
aborts the whole job — every rank blocked in a collective or ``recv``
wakes up with :class:`~repro.simmpi.comm.SimAborted` — and every
primary exception is re-raised in the caller aggregated into
:class:`SpmdError` (rank-ordered ``failures``, first failure on
``.rank``/``.original``).

Injected faults are different: a rank terminated by
:class:`~repro.simmpi.comm.SimulatedRankFailure` (see
:mod:`repro.resilience.faults`) models a *node crash*, not a program
bug.  The dead rank is reported on
:attr:`SpmdResult.failed_ranks` and ``run_spmd`` returns normally, so
checkpoint/restart drivers can inspect the wreckage and resume.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.simmpi.clock import RankClock
from repro.simmpi.comm import (
    SimAborted,
    SimComm,
    SimulatedRankFailure,
    _Rendezvous,
)
from repro.simmpi.machine import MachineModel, LAPTOP
from repro.simmpi.trace import Tracer

__all__ = ["run_spmd", "SpmdError", "SpmdResult", "describe_failure"]


def describe_failure(exc: BaseException) -> str:
    """``repr`` of a rank failure plus any attached context notes.

    The execution engine annotates exceptions with PEP 678 notes
    carrying the backend name, stage, and subproblem keys of the work
    that was in flight (see
    :func:`repro.engine.executors.annotate_failure`); folding them into
    the description means an :class:`SpmdError` message — and the
    ``failed_ranks`` tables built from it — pinpoints *where in the
    plan* a rank died, not just that it died.
    """
    notes = getattr(exc, "__notes__", None)
    if not notes:
        return repr(exc)
    return f"{exc!r} [{'; '.join(str(n) for n in notes)}]"


class SpmdError(RuntimeError):
    """Aggregates every primary exception raised by the simulated ranks.

    Attributes
    ----------
    failures:
        Rank-ordered ``[(rank, exception), ...]`` of every rank that
        raised a primary error (secondary :class:`SimAborted` unwinds
        are not failures).  Multi-rank faults are therefore fully
        diagnosable from one exception.
    rank, original:
        The lowest failing rank and its exception (the historical
        single-failure interface).

    The message includes each failure's exception notes (when the work
    ran under the execution engine these carry backend, stage, and
    subproblem position — see :func:`describe_failure`).
    """

    def __init__(self, failures: list[tuple[int, BaseException]]) -> None:
        if not failures:
            raise ValueError("SpmdError needs at least one failure")
        failures = sorted(failures, key=lambda f: f[0])
        if len(failures) == 1:
            rank, exc = failures[0]
            msg = f"rank {rank} failed: {describe_failure(exc)}"
        else:
            ranks = ", ".join(str(r) for r, _ in failures)
            details = "; ".join(
                f"rank {r}: {describe_failure(e)}" for r, e in failures
            )
            msg = f"{len(failures)} ranks failed ({ranks}): {details}"
        super().__init__(msg)
        self.failures = failures
        self.rank, self.original = failures[0]


@dataclass
class SpmdResult:
    """Everything a simulated job run produces.

    Attributes
    ----------
    values:
        Rank-ordered return values of the rank function.
    clocks:
        Rank-ordered virtual clocks (for timing breakdowns).
    trace:
        The shared :class:`~repro.simmpi.trace.Tracer` when the run
        was launched with ``trace=True``; otherwise ``None``.
    failed_ranks:
        ``{rank: SimulatedRankFailure}`` for every rank terminated by
        an injected fault.  Empty on a clean run.  When non-empty the
        surviving ranks unwound at their next blocking communication,
        so their ``values`` entries are ``None``.
    """

    values: list[Any]
    clocks: list[RankClock]
    trace: Tracer | None = None
    failed_ranks: dict[int, BaseException] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """True when every rank ran to completion (no injected deaths)."""
        return not self.failed_ranks

    @property
    def elapsed(self) -> float:
        """Modeled job time: the slowest rank's clock."""
        return max(c.now for c in self.clocks)

    def breakdown(self, how: str = "max") -> dict[str, float]:
        """Per-category time report (see :func:`merge_breakdowns`)."""
        from repro.simmpi.clock import merge_breakdowns

        return merge_breakdowns(self.clocks, how=how)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel = LAPTOP,
    seed: int | None = None,
    timing_noise: bool = False,
    trace: bool = False,
    fault_plan=None,
    checker=None,
    deadlock_timeout_s: float | None = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Parameters
    ----------
    nranks:
        World size.  Keep it modest (<= ~32): each rank is an OS
        thread on this machine; the large-scale numbers come from the
        analytic model in :mod:`repro.perf.scaling`, not from spawning
        100k threads.
    fn:
        The rank program.  Its first positional argument is the world
        :class:`~repro.simmpi.comm.SimComm`.
    machine:
        Machine model used for all cost accounting.
    seed:
        Base seed for per-rank noise RNGs (only consulted when
        ``timing_noise`` is on).
    timing_noise:
        Enable lognormal rank-to-rank jitter on collective completion
        times (Fig.-5-style variability).  Off by default so functional
        tests are deterministic.
    trace:
        Record every clock advance into a shared
        :class:`~repro.simmpi.trace.Tracer` (profiler-style timeline),
        returned on the result.
    fault_plan:
        Optional :class:`repro.resilience.faults.FaultPlan`.  Each rank
        gets a fresh injector from :meth:`FaultPlan.injector`; injected
        rank crashes terminate only that rank (reported on
        :attr:`SpmdResult.failed_ranks`) instead of raising.
    checker:
        Optional :class:`repro.analysis.dynamic.DynamicChecker`.  Every
        rank's communicator (and any window/sub-communicator built on
        it) reports collective contributions, RMA epoch accesses and
        deadlock aborts to it; findings accumulate on
        ``checker.findings``.  Pure observation — results are bitwise
        identical with and without a checker attached.
    deadlock_timeout_s:
        Seconds a rank may block in a collective or ``recv`` before
        the run is declared deadlocked (default
        :data:`repro.simmpi.comm.DEADLOCK_TIMEOUT_S`).  Tests that
        deliberately deadlock pass a sub-second value.

    Returns
    -------
    SpmdResult
        Return values and clocks for every rank, plus any injected
        rank deaths on ``failed_ranks``.

    Raises
    ------
    SpmdError
        If any rank raised an ordinary exception; aggregates every
        failing rank (``.failures``).
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if nranks > 512:
        raise ValueError(
            f"nranks={nranks} is unreasonable for the thread-based functional "
            "simulator; use repro.perf.scaling for large-scale modeling"
        )
    from repro.simmpi.comm import DEADLOCK_TIMEOUT_S

    rendezvous = _Rendezvous(
        nranks,
        timeout_s=(
            DEADLOCK_TIMEOUT_S if deadlock_timeout_s is None else deadlock_timeout_s
        ),
    )
    tracer = Tracer() if trace else None
    clocks = [RankClock(rank=r, tracer=tracer) for r in range(nranks)]
    values: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    injected: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        rng = None
        if timing_noise:
            rng = np.random.default_rng(
                (seed if seed is not None else 0) * 1_000_003 + rank
            )
        injector = fault_plan.injector(rank) if fault_plan is not None else None
        comm = SimComm(
            rendezvous, rank, nranks, clocks[rank], machine, rng,
            injector=injector, checker=checker,
        )
        try:
            values[rank] = fn(comm, *args, **kwargs)
        except SimAborted:
            # Secondary failure caused by another rank's abort; the
            # primary error is already recorded.
            pass
        except SimulatedRankFailure as exc:
            # Injected node crash: contain it.  Peers unwind with
            # SimAborted at their next blocking communication — exactly
            # when a real MPI job would discover the dead rank.
            with errors_lock:
                injected.append((rank, exc))
            rendezvous.abort(str(exc))
        except BaseException as exc:  # must propagate anything, incl. SystemExit
            with errors_lock:
                errors.append((rank, exc))
            rendezvous.abort(f"rank {rank} raised {exc!r}")

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if checker is not None:
        # Analyze RMA epochs that were never closed by a fence — an
        # un-fenced put/get conflict is still a race at job end.
        checker.finalize()

    if errors:
        errors.sort(key=lambda e: e[0])
        raise SpmdError(errors) from errors[0][1]
    return SpmdResult(
        values=values,
        clocks=clocks,
        trace=tracer,
        failed_ranks=dict(sorted(injected)),
    )
