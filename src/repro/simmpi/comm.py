"""Simulated MPI communicator.

:class:`SimComm` gives each simulated rank (one Python thread, see
:mod:`repro.simmpi.executor`) an MPI-like handle: blocking
point-to-point ``send``/``recv``, the collectives used by the paper's
implementation, and ``split`` for building the P_B x P_lambda process
grids.  All ranks of a communicator share a :class:`_Rendezvous`
object; collective calls meet there in program order (MPI's usual
"same order on every rank" contract), the last arriver computes the
result, and every participant's virtual clock is advanced to

    max(arrival times) + modeled cost

with the advance attributed to a :class:`TimeCategory` (COMMUNICATION
by default, DISTRIBUTION for the one-sided shuffling paths).  Data
movement is real — the result every rank receives is computed from the
actual contributed buffers — so distributed algorithms built on top
are numerically verifiable against serial references.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from repro.simmpi import timing
from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.machine import MachineModel
from repro.simmpi.reduce_ops import ReduceOp, SUM

__all__ = [
    "SimComm",
    "SimAborted",
    "SimulatedRankFailure",
    "payload_nbytes",
    "CollectiveRequest",
    "DeadlockError",
    "RecvRequest",
]

#: How long a rank may wait inside a collective / recv before the run
#: is declared deadlocked.  Generous for slow CI boxes, small enough
#: that a broken test fails rather than hangs.
DEADLOCK_TIMEOUT_S = 120.0


class SimAborted(RuntimeError):
    """Raised in every blocked rank when the SPMD run is aborted."""


class DeadlockError(RuntimeError):
    """A rank waited longer than the deadlock timeout in a collective
    or ``recv``.

    Raised in the *timing-out* rank (the other blocked ranks unwind
    with secondary :class:`SimAborted`), so the launcher reports the
    deadlock as a real :class:`~repro.simmpi.executor.SpmdError` with
    the full blocked-rank report instead of returning silently.
    """


class SimulatedRankFailure(RuntimeError):
    """An injected fault terminated this rank (see :mod:`repro.resilience`).

    Unlike an ordinary exception — which :func:`repro.simmpi.executor.run_spmd`
    treats as a program bug and re-raises as :class:`SpmdError` — a
    simulated failure is *contained*: the rank dies, its peers unwind at
    their next blocking communication, and the launcher reports the dead
    ranks on the result instead of raising, so checkpoint/restart logic
    can take over.
    """

    def __init__(self, rank: int, reason: str) -> None:
        super().__init__(f"rank {rank} killed by injected fault: {reason}")
        self.rank = rank
        self.reason = reason


def payload_nbytes(obj: Any) -> int:
    """Modeled wire size of a message payload.

    Numpy arrays and raw byte strings use their true byte counts;
    anything else is costed at its pickled size, mirroring mpi4py's
    lowercase (pickle-based) API.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # Unpicklable runtime handles (e.g. shared window state) cross
        # the simulated wire as a small reference, not as payload.
        return 64


class _Slot:
    """Meeting point for one collective call (one sequence number)."""

    __slots__ = ("contributions", "arrival_times", "result", "done", "retrieved")

    def __init__(self) -> None:
        self.contributions: dict[int, Any] = {}
        self.arrival_times: dict[int, float] = {}
        self.result: Any = None
        self.done = False
        self.retrieved: set[int] = set()


class _Rendezvous:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int, timeout_s: float = DEADLOCK_TIMEOUT_S) -> None:
        self.size = size
        self.timeout_s = timeout_s
        self.cond = threading.Condition()
        self.slots: dict[int, _Slot] = {}
        self.mailboxes: dict[tuple[int, int, int], deque] = {}
        #: rank -> description of the blocking call the rank is waiting
        #: in right now (collective wait / recv).  Mutated under
        #: ``cond``; read by the deadlock reporter to name every
        #: blocked rank when a timeout abort fires.
        self.blocked: dict[int, str] = {}
        self.aborted = False
        self.abort_reason = ""
        #: Rendezvous of sub-communicators split off this one.  Aborts
        #: cascade down, so a rank blocked in a *cell* collective still
        #: unwinds when the world job aborts (e.g. an injected crash on
        #: a rank of a different cell).
        self.children: list["_Rendezvous"] = []

    def adopt(self, child: "_Rendezvous") -> None:
        """Register a split-off rendezvous for abort cascading."""
        with self.cond:
            if child in self.children:
                return
            self.children.append(child)
            already_aborted = self.aborted
            reason = self.abort_reason
        if already_aborted:
            child.abort(reason)

    def abort(self, reason: str) -> None:
        with self.cond:
            self.aborted = True
            self.abort_reason = reason
            self.cond.notify_all()
            children = list(self.children)
        for child in children:
            child.abort(reason)

    def check_abort(self) -> None:
        if self.aborted:
            raise SimAborted(self.abort_reason or "SPMD run aborted")

    def deadlock_report(self) -> str:
        """Name every blocked rank and the call each is waiting in.

        Called under ``cond`` when a timeout abort fires; this is the
        text the executor's :class:`~repro.simmpi.executor.SpmdError`
        surfaces so a hang is diagnosable from one message.
        """
        if not self.blocked:
            return "no ranks registered as blocked"
        return "; ".join(
            f"rank {r} waiting in {call}"
            for r, call in sorted(self.blocked.items())
        )


class CollectiveRequest:
    """Handle on a posted (nonblocking) collective.

    Returned by ``SimComm.iallreduce`` / ``iallgather`` / ``ibarrier``.
    The contribution is already registered; :meth:`wait` blocks until
    every rank has posted, then advances this rank's clock to
    ``max(post times) + cost`` — so compute performed between post and
    wait overlaps the modeled transfer ("non-blocking MPI and
    asynchronous execution models", the paper's future work).
    """

    __slots__ = (
        "comm", "seq", "cost", "category", "pick", "kind", "_done", "_value"
    )

    def __init__(self, comm, seq, cost, category, pick, kind="collective") -> None:
        self.comm = comm
        self.seq = seq
        self.cost = cost
        self.category = category
        self.pick = pick
        self.kind = kind
        self._done = False
        self._value = None

    def wait(self) -> Any:
        """Block until complete; return the collective's result."""
        if not self._done:
            self._value = self.comm._complete_collective(self)
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion probe: ``(done, result-or-None)``.

        Probing costs no virtual time; when every rank has posted, the
        request is completed (clock advanced) and the result returned.
        """
        if self._done:
            return True, self._value
        rdv = self.comm._rdv
        with rdv.cond:
            rdv.check_abort()
            slot = rdv.slots.get(self.seq)
            ready = slot is not None and slot.done
        if not ready:
            return False, None
        return True, self.wait()


class RecvRequest:
    """Handle on a posted nonblocking receive (``SimComm.irecv``)."""

    __slots__ = ("comm", "source", "tag", "category", "_done", "_value")

    def __init__(self, comm, source, tag, category) -> None:
        self.comm = comm
        self.source = source
        self.tag = tag
        self.category = category
        self._done = False
        self._value = None

    def wait(self) -> Any:
        """Block until the matching message arrives; return it."""
        if not self._done:
            self._value = self.comm.recv(
                self.source, self.tag, category=self.category
            )
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        """Nonblocking probe: ``(done, message-or-None)``."""
        if self._done:
            return True, self._value
        rdv = self.comm._rdv
        key = (self.source, self.comm.rank, self.tag)
        with rdv.cond:
            rdv.check_abort()
            ready = bool(rdv.mailboxes.get(key))
        if not ready:
            return False, None
        return True, self.wait()


class SimComm:
    """Per-rank handle on a simulated communicator.

    Parameters
    ----------
    rendezvous:
        Shared meeting state (one per communicator).
    rank, size:
        This rank's id and the communicator size.
    clock:
        The rank's virtual clock.
    machine:
        Machine model used to cost every operation.
    noise_rng:
        Optional RNG; when given (and ``machine.net_noise > 0``), each
        rank's collective completion time is jittered by a lognormal
        factor, modeling the rank-to-rank variability behind the
        paper's Fig. 5.  ``None`` keeps timing deterministic.
    injector:
        Optional per-rank fault injector
        (:meth:`repro.resilience.faults.FaultPlan.injector`).  Every
        communication entry point consults it, so crash / delay faults
        fire at realistic points; ``None`` (default) injects nothing.
    checker:
        Optional :class:`repro.analysis.dynamic.DynamicChecker`.  When
        attached, every collective contribution is validated for
        cross-rank sequence/op/dtype/shape agreement and RMA windows
        report their epoch accesses; ``None`` (default) checks nothing
        and costs one ``is None`` test per call.
    """

    def __init__(
        self,
        rendezvous: _Rendezvous,
        rank: int,
        size: int,
        clock: RankClock,
        machine: MachineModel,
        noise_rng: np.random.Generator | None = None,
        injector=None,
        checker=None,
    ) -> None:
        if not (0 <= rank < size):
            raise ValueError(f"rank {rank} out of range for size {size}")
        self._rdv = rendezvous
        self.rank = rank
        self.size = size
        self.clock = clock
        self.machine = machine
        self.noise_rng = noise_rng
        self.injector = injector
        self.checker = checker
        self._seq = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _noise_factor(self) -> float:
        if self.noise_rng is None or self.machine.net_noise == 0.0:
            return 1.0
        return float(self.noise_rng.lognormal(0.0, self.machine.net_noise))

    def _post_collective(
        self,
        payload: Any,
        combine: Callable[[dict[int, Any]], Any],
        cost: float,
        category: TimeCategory,
        pick: Callable[[Any, int], Any] | None = None,
        *,
        kind: str = "collective",
        op: ReduceOp | None = None,
        root: int | None = None,
        check_value: Any = None,
    ) -> "CollectiveRequest":
        """Deposit this rank's contribution and return a request handle.

        This is the nonblocking half of every collective: the payload
        joins the sequence-ordered slot immediately (the last arriver
        runs ``combine``), but the caller's clock is not touched until
        the request is waited on — whatever the rank computes in
        between genuinely overlaps the modeled communication, which is
        exactly the benefit of the non-blocking MPI the paper's future
        work proposes.

        When a dynamic checker is attached, this rank's ``(kind, op,
        root, dtype/shape)`` record is validated against its peers the
        moment the last contribution lands — *before* ``combine`` can
        mix mismatched payloads.  ``check_value`` is the user-level
        contribution for reduction-type collectives (whose dtype/shape
        must agree rank-to-rank); pass ``None`` for collectives where
        per-rank payloads legitimately differ (gather, alltoall, ...).
        """
        if self.injector is not None:
            self.injector.on_collective(self.clock)
        rdv = self._rdv
        seq = self._seq
        self._seq += 1
        if self.checker is not None:
            meta = self.checker.collective_meta(
                kind,
                check_value,
                op=op.name if op is not None else None,
                root=root,
                checked_value=check_value is not None,
            )
            self.checker.on_collective_contribution(
                id(rdv), rdv.size, seq, self.rank, meta
            )
        with rdv.cond:
            rdv.check_abort()
            slot = rdv.slots.setdefault(seq, _Slot())
            if self.rank in slot.contributions:
                raise RuntimeError(
                    f"rank {self.rank} re-entered collective seq {seq}: "
                    "collectives must be called in the same order on all ranks"
                )
            slot.contributions[self.rank] = payload
            slot.arrival_times[self.rank] = self.clock.now
            if len(slot.contributions) == rdv.size:
                slot.result = combine(slot.contributions)
                slot.done = True
                rdv.cond.notify_all()
        return CollectiveRequest(self, seq, cost, category, pick, kind)

    def _complete_collective(self, request: "CollectiveRequest") -> Any:
        """Blocking half: wait for the slot, advance the clock, return."""
        rdv = self._rdv
        seq = request.seq
        with rdv.cond:
            slot = rdv.slots.get(seq)
            if slot is None:
                raise RuntimeError(f"collective seq {seq} already completed")
            rdv.blocked[self.rank] = f"{request.kind}(seq={seq})"
            try:
                while not slot.done:
                    rdv.check_abort()
                    if not rdv.cond.wait(timeout=rdv.timeout_s):
                        report = rdv.deadlock_report()
                        if self.checker is not None:
                            self.checker.on_deadlock(
                                dict(rdv.blocked),
                                f"rank {self.rank} timed out in "
                                f"{request.kind}(seq={seq})",
                            )
                        message = (
                            f"deadlock: rank {self.rank} timed out in "
                            f"{request.kind}(seq={seq}); {report}"
                        )
                        rdv.abort(message)
                        raise DeadlockError(message)
                rdv.check_abort()
            finally:
                rdv.blocked.pop(self.rank, None)
            t_start = max(slot.arrival_times.values())
            result = slot.result
            slot.retrieved.add(self.rank)
            if len(slot.retrieved) == rdv.size:
                del rdv.slots[seq]
        # advance_to never rewinds: compute done since the post overlaps
        # with the modeled transfer.
        self.clock.advance_to(
            t_start + request.cost * self._noise_factor(), request.category
        )
        if request.pick is not None:
            return request.pick(result, self.rank)
        return result

    def _collective(
        self,
        payload: Any,
        combine: Callable[[dict[int, Any]], Any],
        cost: float,
        category: TimeCategory,
        pick: Callable[[Any, int], Any] | None = None,
        *,
        kind: str = "collective",
        op: ReduceOp | None = None,
        root: int | None = None,
        check_value: Any = None,
    ) -> Any:
        """Run one blocking collective: post + immediately complete."""
        return self._complete_collective(
            self._post_collective(
                payload,
                combine,
                cost,
                category,
                pick,
                kind=kind,
                op=op,
                root=root,
                check_value=check_value,
            )
        )

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> None:
        """Blocking (eager) send of ``obj`` to rank ``dest``."""
        if not (0 <= dest < self.size):
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        if self.injector is not None:
            self.injector.on_p2p(self.clock)
        rdv = self._rdv
        cost = timing.p2p_time(self.machine, payload_nbytes(obj))
        with rdv.cond:
            rdv.check_abort()
            box = rdv.mailboxes.setdefault((self.rank, dest, tag), deque())
            box.append((obj, self.clock.now + cost))
            rdv.cond.notify_all()
        # Eager protocol: the sender pays latency only; the payload
        # transfer overlaps with whatever the sender does next.
        self.clock.charge(category, self.machine.net_latency_s)

    def recv(
        self,
        source: int,
        tag: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Blocking receive from rank ``source``."""
        if not (0 <= source < self.size):
            raise ValueError(f"source {source} out of range for size {self.size}")
        if self.injector is not None:
            self.injector.on_p2p(self.clock)
        rdv = self._rdv
        key = (source, self.rank, tag)
        with rdv.cond:
            rdv.blocked[self.rank] = f"recv(source={source}, tag={tag})"
            try:
                while True:
                    rdv.check_abort()
                    box = rdv.mailboxes.get(key)
                    if box:
                        obj, arrival = box.popleft()
                        break
                    if not rdv.cond.wait(timeout=rdv.timeout_s):
                        report = rdv.deadlock_report()
                        if self.checker is not None:
                            self.checker.on_deadlock(
                                dict(rdv.blocked),
                                f"rank {self.rank} timed out in recv from "
                                f"{source} (tag {tag})",
                            )
                        message = (
                            f"deadlock: rank {self.rank} timed out in recv "
                            f"from {source} (tag {tag}); {report}"
                        )
                        rdv.abort(message)
                        raise DeadlockError(message)
            finally:
                rdv.blocked.pop(self.rank, None)
        self.clock.advance_to(arrival, category)
        return obj

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self, *, category: TimeCategory = TimeCategory.COMMUNICATION) -> None:
        """Synchronize all ranks of the communicator."""
        cost = timing.barrier_time(self.machine, self.size)
        self._collective(None, lambda c: None, cost, category, kind="barrier")

    def bcast(
        self,
        obj: Any,
        root: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the object."""
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range")
        payload = obj if self.rank == root else None
        nbytes = payload_nbytes(obj) if self.rank == root else 0

        def combine(contrib: dict[int, Any]) -> Any:
            return contrib[root]

        # All ranks must agree on the cost; only root knows the size, so
        # ship it through the slot by costing after combine is not
        # possible here — instead cost with root's nbytes via a tiny
        # pre-exchange folded into the same slot payload.
        result = self._collective(
            (nbytes, payload),
            lambda c: c[root],
            0.0,
            category,
            kind="bcast",
            root=root,
        )
        root_nbytes, value = result
        self.clock.charge(category, timing.bcast_time(self.machine, root_nbytes, self.size))
        return value

    def allreduce(
        self,
        value: Any,
        op: ReduceOp = SUM,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Reduce ``value`` over all ranks; every rank gets the result.

        Numpy-array contributions are reduced elementwise in rank order
        (deterministic).  The returned array is a private copy.
        """
        nbytes = payload_nbytes(value)
        cost = timing.allreduce_time(self.machine, nbytes, self.size)

        def combine(contrib: dict[int, Any]) -> Any:
            ordered = [contrib[r] for r in range(self.size)]
            return op.reduce_all(ordered)

        result = self._collective(
            value, combine, cost, category,
            kind="allreduce", op=op, check_value=value,
        )
        if isinstance(result, np.ndarray):
            return result.copy()
        return result

    def reduce(
        self,
        value: Any,
        op: ReduceOp = SUM,
        root: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Reduce to ``root``; non-root ranks return ``None``."""
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range")
        nbytes = payload_nbytes(value)
        cost = timing.gather_time(self.machine, nbytes * self.size, self.size)

        def combine(contrib: dict[int, Any]) -> Any:
            ordered = [contrib[r] for r in range(self.size)]
            return op.reduce_all(ordered)

        result = self._collective(
            value, combine, cost, category,
            kind="reduce", op=op, root=root, check_value=value,
        )
        if self.rank != root:
            return None
        return result.copy() if isinstance(result, np.ndarray) else result

    def gather(
        self,
        value: Any,
        root: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> list | None:
        """Gather one value per rank into a rank-ordered list at ``root``."""
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range")
        nbytes = payload_nbytes(value)
        cost = timing.gather_time(self.machine, nbytes * self.size, self.size)

        def combine(contrib: dict[int, Any]) -> list:
            return [contrib[r] for r in range(self.size)]

        result = self._collective(
            value, combine, cost, category, kind="gather", root=root
        )
        return result if self.rank == root else None

    def allgather(
        self,
        value: Any,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> list:
        """Gather one value per rank into a rank-ordered list, everywhere."""
        nbytes = payload_nbytes(value)
        cost = timing.allgather_time(self.machine, nbytes * self.size, self.size)

        def combine(contrib: dict[int, Any]) -> list:
            return [contrib[r] for r in range(self.size)]

        return self._collective(value, combine, cost, category, kind="allgather")

    def scatter(
        self,
        values: Sequence | None,
        root: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Scatter ``values[i]`` from ``root`` to rank ``i``."""
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range")
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError(
                    f"root must pass exactly {self.size} values, got "
                    f"{None if values is None else len(values)}"
                )
            total = sum(payload_nbytes(v) for v in values)
        else:
            values, total = None, 0

        result = self._collective(
            (total, values),
            lambda c: c[root],
            0.0,
            category,
            pick=None,
            kind="scatter",
            root=root,
        )
        total_nbytes, all_values = result
        self.clock.charge(
            category, timing.scatter_time(self.machine, total_nbytes, self.size)
        )
        return all_values[self.rank]

    def alltoall(
        self,
        values: Sequence,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> list:
        """Each rank sends ``values[j]`` to rank ``j``; returns received list."""
        if len(values) != self.size:
            raise ValueError(f"alltoall needs {self.size} values, got {len(values)}")
        per_pair = max(payload_nbytes(v) for v in values) if self.size else 0
        cost = timing.alltoall_time(self.machine, per_pair, self.size)

        def combine(contrib: dict[int, Sequence]) -> dict[int, list]:
            return {
                r: [contrib[src][r] for src in range(self.size)]
                for r in range(self.size)
            }

        return self._collective(
            list(values),
            combine,
            cost,
            category,
            pick=lambda res, rank: res[rank],
            kind="alltoall",
        )

    def reduce_scatter(
        self,
        value: np.ndarray,
        op: ReduceOp = SUM,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> np.ndarray:
        """Reduce elementwise, then scatter block-striped pieces.

        Every rank contributes an equal-shape array; rank ``r``
        receives the ``r``-th balanced block of the elementwise
        reduction (MPI_Reduce_scatter_block semantics up to the
        balanced split).  This is the first half of a Rabenseifner
        allreduce, exposed for algorithms that only need their own
        slice of the consensus sum.
        """
        value = np.asarray(value)
        nbytes = payload_nbytes(value)
        # Reduce-scatter is half an allreduce.
        cost = 0.5 * timing.allreduce_time(self.machine, nbytes, self.size)

        def combine(contrib: dict[int, Any]) -> Any:
            ordered = [contrib[r] for r in range(self.size)]
            return op.reduce_all(ordered)

        def pick(result: Any, rank: int) -> np.ndarray:
            return np.array_split(np.asarray(result), self.size)[rank].copy()

        return self._collective(
            value, combine, cost, category, pick=pick,
            kind="reduce_scatter", op=op, check_value=value,
        )

    def scan(
        self,
        value: Any,
        op: ReduceOp = SUM,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> Any:
        """Inclusive prefix reduction: rank ``r`` gets ``op`` over ranks 0..r."""
        nbytes = payload_nbytes(value)
        cost = timing.allreduce_time(self.machine, nbytes, self.size)

        def combine(contrib: dict[int, Any]) -> list:
            prefixes = []
            acc = None
            for r in range(self.size):
                acc = contrib[r] if acc is None else op(acc, contrib[r])
                prefixes.append(acc)
            return prefixes

        def pick(result: list, rank: int) -> Any:
            out = result[rank]
            return out.copy() if isinstance(out, np.ndarray) else out

        return self._collective(
            value, combine, cost, category, pick=pick,
            kind="scan", op=op, check_value=value,
        )

    # ------------------------------------------------------------------
    # nonblocking operations (the paper's future-work direction)
    # ------------------------------------------------------------------
    def iallreduce(
        self,
        value: Any,
        op: ReduceOp = SUM,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> CollectiveRequest:
        """Nonblocking allreduce: post now, ``wait()`` for the result.

        Compute performed between the post and the wait overlaps the
        modeled transfer time.  Like MPI's nonblocking collectives,
        posts must still occur in the same order on every rank.
        """
        nbytes = payload_nbytes(value)
        cost = timing.allreduce_time(self.machine, nbytes, self.size)

        def combine(contrib: dict[int, Any]) -> Any:
            ordered = [contrib[r] for r in range(self.size)]
            out = op.reduce_all(ordered)
            return out.copy() if isinstance(out, np.ndarray) else out

        return self._post_collective(
            value, combine, cost, category,
            kind="iallreduce", op=op, check_value=value,
        )

    def iallgather(
        self,
        value: Any,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> CollectiveRequest:
        """Nonblocking allgather; ``wait()`` returns the rank-ordered list."""
        nbytes = payload_nbytes(value)
        cost = timing.allgather_time(self.machine, nbytes * self.size, self.size)

        def combine(contrib: dict[int, Any]) -> list:
            return [contrib[r] for r in range(self.size)]

        return self._post_collective(
            value, combine, cost, category, kind="iallgather"
        )

    def ibarrier(
        self, *, category: TimeCategory = TimeCategory.COMMUNICATION
    ) -> CollectiveRequest:
        """Nonblocking barrier; ``wait()`` completes the synchronization."""
        cost = timing.barrier_time(self.machine, self.size)
        return self._post_collective(
            None, lambda c: None, cost, category, kind="ibarrier"
        )

    def isend(
        self,
        obj: Any,
        dest: int,
        tag: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> CollectiveRequest | "RecvRequest":
        """Nonblocking send.

        The simulated eager protocol makes ``send`` effectively
        nonblocking already (the sender pays latency only), so this
        simply sends and returns an immediately-complete request, for
        API symmetry with mpi4py.
        """
        self.send(obj, dest, tag, category=category)
        done = CollectiveRequest(self, -1, 0.0, category, None)
        done._done = True
        return done

    def irecv(
        self,
        source: int,
        tag: int = 0,
        *,
        category: TimeCategory = TimeCategory.COMMUNICATION,
    ) -> RecvRequest:
        """Nonblocking receive: returns a request to ``wait()``/``test()``."""
        if not (0 <= source < self.size):
            raise ValueError(f"source {source} out of range for size {self.size}")
        return RecvRequest(self, source, tag, category)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "SimComm":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks passing the same ``color`` end up in one new
        communicator, ordered by ``key`` (then by old rank).  Used to
        build the paper's P_B x P_lambda grids: e.g. split by bootstrap
        group, then split each group by lambda block.
        """
        key = self.rank if key is None else key

        def combine(contrib: dict[int, tuple[int, int]]) -> dict:
            groups: dict[int, list[tuple[int, int]]] = {}
            for r in range(self.size):
                c, k = contrib[r]
                groups.setdefault(c, []).append((k, r))
            layout: dict[int, tuple[int, int, "_Rendezvous"]] = {}
            for c, members in groups.items():
                members.sort()
                rdv = _Rendezvous(len(members), timeout_s=self._rdv.timeout_s)
                for new_rank, (_, old_rank) in enumerate(members):
                    layout[old_rank] = (new_rank, len(members), rdv)
            return layout

        cost = timing.allgather_time(self.machine, 16 * self.size, self.size)
        new_rank, new_size, new_rdv = self._collective(
            (color, key),
            combine,
            cost,
            TimeCategory.COMMUNICATION,
            pick=lambda layout, rank: layout[rank],
            kind="split",
        )
        self._rdv.adopt(new_rdv)
        return SimComm(
            new_rdv,
            new_rank,
            new_size,
            self.clock,
            self.machine,
            self.noise_rng,
            injector=self.injector,
            checker=self.checker,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size})"
