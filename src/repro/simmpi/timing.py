"""Alpha-beta communication cost models.

Each function returns the modeled time (seconds) of one MPI operation
on a :class:`repro.simmpi.machine.MachineModel`.  These formulas are
shared by the functional simulator (which charges them to per-rank
virtual clocks) and the large-scale analytic drivers in
:mod:`repro.perf.scaling` (which evaluate them at the paper's core
counts) — so the small functional runs validate exactly the model that
produces the headline scaling figures.

Conventions: ``alpha`` = per-message latency, ``beta`` = seconds/byte
(= 1 / bandwidth), ``P`` = number of participating ranks.  Collectives
use the standard algorithm costs (Thakur, Rabenseifner & Gropp 2005):

* Allreduce (Rabenseifner): ``2 log2(P) alpha + 2 ((P-1)/P) n beta``
  plus the local reduction arithmetic.
* Bcast (scatter+allgather): ``2 log2(P) alpha + 2 ((P-1)/P) n beta``.
* Gather/Scatter (binomial): ``log2(P) alpha + ((P-1)/P) n beta``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simmpi.machine import MachineModel

__all__ = [
    "p2p_time",
    "allreduce_time",
    "bcast_time",
    "gather_time",
    "scatter_time",
    "allgather_time",
    "alltoall_time",
    "barrier_time",
    "rma_time",
    "allreduce_minmax",
]

#: Modeled per-byte cost of applying the reduction operator (one FLOP
#: per 8-byte element at memory-bandwidth speed is folded into this).
_REDUCE_FLOP_BYTES_PER_S = 2.0e9


def _beta(machine: MachineModel) -> float:
    return 1.0 / (machine.net_bw_gbs * 1e9)


def _log2p(P: int) -> float:
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    return math.log2(P) if P > 1 else 0.0


def p2p_time(machine: MachineModel, nbytes: int) -> float:
    """One point-to-point message of ``nbytes``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return machine.net_latency_s + nbytes * _beta(machine)


def allreduce_time(machine: MachineModel, nbytes: int, P: int) -> float:
    """Rabenseifner allreduce of an ``nbytes`` buffer over ``P`` ranks."""
    if P == 1:
        return 0.0
    alpha, beta = machine.net_latency_s, _beta(machine)
    transfer = 2.0 * _log2p(P) * alpha + 2.0 * ((P - 1) / P) * nbytes * beta
    reduce_arith = ((P - 1) / P) * nbytes / _REDUCE_FLOP_BYTES_PER_S
    return transfer + reduce_arith


def bcast_time(machine: MachineModel, nbytes: int, P: int) -> float:
    """Scatter+allgather broadcast of ``nbytes`` over ``P`` ranks."""
    if P == 1:
        return 0.0
    alpha, beta = machine.net_latency_s, _beta(machine)
    return 2.0 * _log2p(P) * alpha + 2.0 * ((P - 1) / P) * nbytes * beta


def gather_time(machine: MachineModel, nbytes_total: int, P: int) -> float:
    """Binomial gather collecting ``nbytes_total`` at the root."""
    if P == 1:
        return 0.0
    alpha, beta = machine.net_latency_s, _beta(machine)
    return _log2p(P) * alpha + ((P - 1) / P) * nbytes_total * beta


def scatter_time(machine: MachineModel, nbytes_total: int, P: int) -> float:
    """Binomial scatter distributing ``nbytes_total`` from the root."""
    return gather_time(machine, nbytes_total, P)


def allgather_time(machine: MachineModel, nbytes_total: int, P: int) -> float:
    """Ring allgather: everyone ends with the ``nbytes_total`` buffer."""
    if P == 1:
        return 0.0
    alpha, beta = machine.net_latency_s, _beta(machine)
    return (P - 1) * alpha + ((P - 1) / P) * nbytes_total * beta


def alltoall_time(machine: MachineModel, nbytes_per_pair: int, P: int) -> float:
    """Pairwise-exchange all-to-all with ``nbytes_per_pair`` per pair."""
    if P == 1:
        return 0.0
    alpha, beta = machine.net_latency_s, _beta(machine)
    return (P - 1) * (alpha + nbytes_per_pair * beta)


def barrier_time(machine: MachineModel, P: int) -> float:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of latency."""
    if P == 1:
        return 0.0
    return math.ceil(_log2p(P)) * machine.net_latency_s


def rma_time(machine: MachineModel, nbytes: int, *, contention: int = 1) -> float:
    """One one-sided Put/Get of ``nbytes``.

    ``contention`` models how many origins target the same exposure
    window concurrently: the target's injection bandwidth is shared, so
    the effective per-byte cost scales with it.  This is exactly the
    "few reader cores serving hundreds of thousands of cores"
    bottleneck the paper identifies for the distributed Kronecker
    product.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if contention < 1:
        raise ValueError("contention must be >= 1")
    return machine.net_latency_s + nbytes * _beta(machine) * contention


def allreduce_minmax(
    machine: MachineModel,
    nbytes: int,
    P: int,
    rng: np.random.Generator,
    *,
    samples: int = 32,
) -> tuple[float, float]:
    """Modeled (T_min, T_max) of an allreduce across ranks (Fig. 5).

    Real large-scale collectives show run-to-run and rank-to-rank
    variability from network contention and OS noise.  We model each
    observation as the base cost scaled by a lognormal factor with
    sigma = ``machine.net_noise`` and report the extremes over
    ``samples`` draws (the paper plots T_min and T_max of one
    MPI_Allreduce per configuration).
    """
    base = allreduce_time(machine, nbytes, P)
    if machine.net_noise == 0.0 or P == 1:
        return base, base
    factors = rng.lognormal(mean=0.0, sigma=machine.net_noise, size=samples)
    return float(base * factors.min()), float(base * factors.max())
