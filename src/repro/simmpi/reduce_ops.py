"""Reduction operators for simulated collectives.

Mirrors the handful of MPI predefined operations the paper's code
needs (``MPI_SUM`` for the ADMM consensus average, ``MPI_MAX``/``MIN``
for timing statistics, logical AND/OR for convergence votes).  Each op
works elementwise on numpy arrays and on Python scalars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ReduceOp", "SUM", "MAX", "MIN", "PROD", "LAND", "LOR"]


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative binary reduction."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a, b):
        return self.fn(a, b)

    def reduce_all(self, contributions: list) -> np.ndarray | float:
        """Fold a list of contributions left-to-right."""
        if not contributions:
            raise ValueError(f"{self.name}: nothing to reduce")
        acc = contributions[0]
        for item in contributions[1:]:
            acc = self.fn(acc, item)
        return acc


SUM = ReduceOp("SUM", lambda a, b: np.add(a, b))
MAX = ReduceOp("MAX", lambda a, b: np.maximum(a, b))
MIN = ReduceOp("MIN", lambda a, b: np.minimum(a, b))
PROD = ReduceOp("PROD", lambda a, b: np.multiply(a, b))
LAND = ReduceOp("LAND", lambda a, b: np.logical_and(a, b))
LOR = ReduceOp("LOR", lambda a, b: np.logical_or(a, b))
