"""Execution tracing for simulated runs (profiler-style timelines).

The paper's analysis leaned on profiling tools (Intel Advisor, MPI
timers) to attribute runtime to categories.  This module provides the
simulated equivalent: when a run is launched with ``trace=True``,
every virtual-clock advance is recorded as a :class:`TraceEvent`
(rank, category, interval), and the resulting :class:`Tracer` can
summarize per-category totals or render an ASCII timeline — useful
when diagnosing why a distributed algorithm's modeled time went where
it did.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.simmpi.clock import TimeCategory

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One attributed interval on one rank's virtual clock.

    Attributes
    ----------
    rank:
        The rank whose clock advanced.
    category:
        What the interval was attributed to.
    start, end:
        Virtual-time interval (``end >= start``).
    """

    rank: int
    category: TimeCategory
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe collector of :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def record(
        self, rank: int, category: TimeCategory, start: float, end: float
    ) -> None:
        """Append one interval (zero-length intervals are dropped)."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        if end == start:
            return
        with self._lock:
            self._events.append(TraceEvent(rank, category, start, end))

    def events(
        self,
        *,
        rank: int | None = None,
        category: TimeCategory | None = None,
    ) -> list[TraceEvent]:
        """Events, optionally filtered, ordered by start time."""
        with self._lock:
            out = list(self._events)
        if rank is not None:
            out = [e for e in out if e.rank == rank]
        if category is not None:
            out = [e for e in out if e.category == category]
        out.sort(key=lambda e: (e.start, e.rank))
        return out

    def total(self, rank: int, category: TimeCategory) -> float:
        """Summed duration for one (rank, category) pair."""
        return sum(e.duration for e in self.events(rank=rank, category=category))

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all events; (0, 0) if empty."""
        with self._lock:
            if not self._events:
                return 0.0, 0.0
            return (
                min(e.start for e in self._events),
                max(e.end for e in self._events),
            )

    def timeline(self, *, width: int = 72) -> str:
        """ASCII per-rank timeline (one row per rank).

        Characters: ``C`` compute, ``M`` communication (message),
        ``D`` distribution, ``I`` data I/O, ``.`` idle.  When several
        categories fall into one cell, the one covering the most time
        wins.
        """
        if width < 8:
            raise ValueError("width must be >= 8")
        lo, hi = self.span()
        if hi <= lo:
            return "(no events)"
        glyph = {
            TimeCategory.COMPUTE: "C",
            TimeCategory.COMMUNICATION: "M",
            TimeCategory.DISTRIBUTION: "D",
            TimeCategory.DATA_IO: "I",
        }
        ranks = sorted({e.rank for e in self.events()})
        scale = (hi - lo) / width
        lines = [f"timeline: {hi - lo:.3e}s over {len(ranks)} ranks "
                 f"(C=compute M=comm D=distr I=io)"]
        for r in ranks:
            cover = [dict() for _ in range(width)]
            for e in self.events(rank=r):
                c0 = int((e.start - lo) / scale)
                c1 = max(c0, min(width - 1, int((e.end - lo) / scale)))
                for c in range(c0, c1 + 1):
                    cell_lo = lo + c * scale
                    cell_hi = cell_lo + scale
                    overlap = min(e.end, cell_hi) - max(e.start, cell_lo)
                    if overlap > 0:
                        cover[c][e.category] = (
                            cover[c].get(e.category, 0.0) + overlap
                        )
            row = "".join(
                glyph[max(cell, key=cell.get)] if cell else "."
                for cell in cover
            )
            lines.append(f"rank {r:>3} |{row}|")
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
