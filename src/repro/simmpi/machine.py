"""Machine models for virtual-time simulation.

A :class:`MachineModel` collects the rates that determine how long
compute, communication and I/O take on the modeled system.  The
``CORI_KNL`` preset is calibrated to the paper:

* kernel rates come straight from the paper's Intel-Advisor roofline
  measurements (Section IV): dense gemm 30.83 GFLOPS, dense gemv
  1.12 GFLOPS, triangular solve 0.011 GFLOPS, sparse gemm 1.08 GFLOPS,
  sparse gemv 2.08 GFLOPS — all per MPI process (4 OpenMP threads);
* network parameters are representative of the Cray Aries
  interconnect (~1 microsecond latency, ~8 GB/s injection per node);
* filesystem parameters model the Cori Lustre scratch system with 160
  OSTs (the paper stripes its HDF5 files over 160 OSTs).

All rates are plain floats so alternative machines (or sensitivity
studies) are one dataclass instantiation away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineModel", "CORI_KNL", "LAPTOP"]


@dataclass(frozen=True)
class MachineModel:
    """Performance parameters of the modeled cluster.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cores_per_node:
        Physical cores per node (68 for KNL).
    gemm_gflops, gemv_gflops, trsv_gflops:
        Dense kernel rates per MPI process, in GFLOP/s.
    sp_gemm_gflops, sp_gemv_gflops:
        Sparse kernel rates per MPI process, in GFLOP/s.
    mem_bw_gbs:
        Sustained DRAM bandwidth per process in GB/s (MCDRAM-backed).
    net_latency_s:
        Point-to-point message latency (the alpha term), seconds.
    net_bw_gbs:
        Point-to-point bandwidth per link (the beta term), GB/s.
    net_noise:
        Multiplicative spread of communication-time variability across
        ranks (drives the T_min/T_max gap of the paper's Fig. 5);
        0 disables variability.
    ost_count:
        Number of Lustre object storage targets available for striping.
    ost_bw_gbs:
        Sustained read bandwidth of a single OST, GB/s.
    file_open_s:
        Cost of opening the (striped) file once, seconds.
    seek_s:
        Per-request positioning cost for serial chunked reads, seconds.
    node_mem_gb:
        Usable memory per node in GB (96 GB DDR on Cori KNL); used by
        the conventional-distribution model, which cannot hold large
        datasets resident.
    serial_read_gbs:
        Sustained bandwidth of a *single* process reading through
        serial HDF5, GB/s.  Calibrated to the paper's conventional
        read times (≈0.09–0.12 GB/s across Table II).
    chunk_bytes:
        Chunk size the conventional method reads per request (it "can
        read only a small chunk of data at a time").
    rma_random_bw_gbs:
        Effective per-process bandwidth of the Tier-2 one-sided random
        shuffle across nodes — small random-target Gets achieve far
        less than the link rate; calibrated so the randomized
        distribution times land on Table II's 2.6–5.7 s plateau.
    """

    name: str
    cores_per_node: int
    gemm_gflops: float
    gemv_gflops: float
    trsv_gflops: float
    sp_gemm_gflops: float
    sp_gemv_gflops: float
    mem_bw_gbs: float
    net_latency_s: float
    net_bw_gbs: float
    net_noise: float
    ost_count: int
    ost_bw_gbs: float
    file_open_s: float
    seek_s: float
    node_mem_gb: float
    serial_read_gbs: float
    chunk_bytes: int
    rma_random_bw_gbs: float

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        for field_name in (
            "gemm_gflops",
            "gemv_gflops",
            "trsv_gflops",
            "sp_gemm_gflops",
            "sp_gemv_gflops",
            "mem_bw_gbs",
            "net_bw_gbs",
            "ost_bw_gbs",
            "serial_read_gbs",
            "rma_random_bw_gbs",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be > 0")
        for field_name in ("net_latency_s", "net_noise", "file_open_s", "seek_s"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def nodes_for(self, cores: int) -> int:
        """Number of nodes needed to host ``cores`` MPI processes."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return -(-cores // self.cores_per_node)

    def with_(self, **overrides) -> "MachineModel":
        """Return a copy with some parameters replaced."""
        return replace(self, **overrides)


#: Cori KNL calibration (see module docstring for provenance).
CORI_KNL = MachineModel(
    name="cori-knl",
    cores_per_node=68,
    gemm_gflops=30.83,
    gemv_gflops=1.12,
    trsv_gflops=0.011,
    sp_gemm_gflops=1.08,
    sp_gemv_gflops=2.08,
    mem_bw_gbs=90.0,
    net_latency_s=1.3e-6,
    net_bw_gbs=8.0,
    net_noise=0.35,
    ost_count=160,
    ost_bw_gbs=1.0,
    file_open_s=0.05,
    seek_s=0.004,
    node_mem_gb=96.0,
    serial_read_gbs=0.105,
    chunk_bytes=256 * 1024**2,
    rma_random_bw_gbs=0.0085,
)

#: A tiny workstation-like model, handy for fast functional tests where
#: absolute times are irrelevant.
LAPTOP = MachineModel(
    name="laptop",
    cores_per_node=8,
    gemm_gflops=50.0,
    gemv_gflops=5.0,
    trsv_gflops=1.0,
    sp_gemm_gflops=2.0,
    sp_gemv_gflops=4.0,
    mem_bw_gbs=20.0,
    net_latency_s=1e-7,
    net_bw_gbs=10.0,
    net_noise=0.0,
    ost_count=4,
    ost_bw_gbs=0.5,
    file_open_s=0.001,
    seek_s=0.0001,
    node_mem_gb=16.0,
    serial_read_gbs=0.2,
    chunk_bytes=64 * 1024**2,
    rma_random_bw_gbs=1.0,
)
