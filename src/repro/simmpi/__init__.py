"""Simulated MPI substrate (``simmpi``).

The paper ran on Cori KNL (9,688 nodes x 68 cores) with MPI + OpenMP.
That hardware is not available here, so this package provides a
from-scratch substitute with two coupled halves:

1. **A functional SPMD engine** — :func:`repro.simmpi.run_spmd` runs
   one Python thread per rank, and :class:`repro.simmpi.SimComm`
   implements MPI semantics over shared memory: point-to-point
   send/recv, the collectives the paper's implementation uses
   (``Bcast``, ``Allreduce``, ``Gather``, ``Scatterv``, ...),
   communicator ``split`` (used for the P_B x P_lambda process grids)
   and one-sided RMA windows (``Put``/``Get``/``Lock``/``Fence``, used
   by the randomized data distribution and the distributed Kronecker
   product).  Distributed algorithms written against this API perform
   the *real* data movement and arithmetic, so their numerical output
   is checkable against serial references.

2. **A virtual-time machine model** — every rank owns a
   :class:`repro.simmpi.RankClock`; communication calls charge time
   from alpha-beta cost models (:mod:`repro.simmpi.timing`)
   parameterized by a :class:`repro.simmpi.MachineModel` (the
   ``CORI_KNL`` preset is calibrated to the kernel rates the paper
   measured with Intel Advisor).  Compute kernels charge time through
   :mod:`repro.perf.flops` helpers.  Reported times are therefore
   *modeled* times on the paper's machine, not wall-clock on this box,
   which is what lets the scaling experiments reach the paper's
   100,000+ core counts.
"""

from repro.simmpi.machine import MachineModel, CORI_KNL, LAPTOP
from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.comm import (
    DeadlockError,
    SimComm,
    SimulatedRankFailure,
    CollectiveRequest,
    RecvRequest,
)
from repro.simmpi.executor import run_spmd, SpmdError, SpmdResult
from repro.simmpi.window import Window, RmaError
from repro.simmpi.trace import TraceEvent, Tracer
from repro.simmpi import timing
from repro.simmpi.reduce_ops import SUM, MAX, MIN, PROD, LAND, LOR

__all__ = [
    "MachineModel",
    "CORI_KNL",
    "LAPTOP",
    "RankClock",
    "TimeCategory",
    "DeadlockError",
    "SimComm",
    "SimulatedRankFailure",
    "CollectiveRequest",
    "RecvRequest",
    "run_spmd",
    "SpmdError",
    "SpmdResult",
    "Window",
    "RmaError",
    "TraceEvent",
    "Tracer",
    "timing",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
]
