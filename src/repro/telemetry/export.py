"""Trace export: Chrome trace-event JSON and JSONL run manifests.

Two durable artifacts per telemetry-enabled run:

* **Run manifest** (``manifest-<kind>.jsonl``) — one JSON object per
  line: a ``run`` header (plan kind, backend, config meta, git rev,
  schema version), one ``span`` record per recorded interval
  (including every per-subproblem span), ``counter`` / ``gauge``
  records, and a closing ``summary`` with the per-stage aggregates and
  the four-category breakdown.  This is the machine-readable record
  ``repro trace summary`` and ``repro trace diff`` consume.
* **Chrome trace** (``trace-<kind>.json``) — the `trace-event format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  consumed by ``chrome://tracing`` / Perfetto: complete (``ph: "X"``)
  events with microsecond timestamps, one row (``tid``) per
  rank/thread.

:func:`tracer_to_chrome` bridges the *simulated* timelines — the
:class:`repro.simmpi.trace.Tracer` events recorded on virtual clocks —
into the same trace-event format, so simulated and real runs are
inspected with the same tooling.

:func:`validate_chrome_trace` is the structural schema check CI runs
on every exported trace: phase keys present, timestamps finite,
non-negative and per-row monotone.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from repro.telemetry.recorder import CATEGORIES, Recorder

__all__ = [
    "MANIFEST_SCHEMA",
    "git_revision",
    "chrome_trace",
    "tracer_to_chrome",
    "validate_chrome_trace",
    "write_manifest",
    "read_manifest",
    "diff_manifests",
    "export_run",
]

#: Manifest schema version (bump on incompatible format changes).
MANIFEST_SCHEMA = 1

_S_TO_US = 1e6


def git_revision() -> str | None:
    """Current git commit hash, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------
def chrome_trace(
    recorder: Recorder, *, tid: int = 0, pid: int = 0, meta: dict | None = None
) -> dict:
    """Recorder spans as a Chrome trace-event document.

    Spans become complete (``ph: "X"``) events with microsecond
    ``ts``/``dur``; counters and gauges land in ``otherData`` so the
    document stays loadable by ``chrome://tracing`` and Perfetto.
    """
    events = []
    for s in sorted(recorder.spans, key=lambda s: (s.start, s.end)):
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": s.start * _S_TO_US,
                "dur": s.duration * _S_TO_US,
                "pid": pid,
                "tid": int(s.attrs.get("tid", tid)),
                "args": {k: v for k, v in s.attrs.items() if k != "tid"},
            }
        )
    other = {
        "counters": recorder.counter_values(),
        "gauges": recorder.gauge_values(),
    }
    if meta:
        other["meta"] = meta
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def tracer_to_chrome(tracer, *, pid: int = 0, meta: dict | None = None) -> dict:
    """Simulated :class:`~repro.simmpi.trace.Tracer` events as Chrome JSON.

    Virtual-time intervals map to microsecond complete events, one
    ``tid`` per simulated rank, category names matching the real
    exporter — the same tooling reads both timelines.
    """
    events = []
    for e in tracer.events():
        events.append(
            {
                "name": e.category.value,
                "cat": e.category.value,
                "ph": "X",
                "ts": e.start * _S_TO_US,
                "dur": e.duration * _S_TO_US,
                "pid": pid,
                "tid": int(e.rank),
                "args": {"rank": int(e.rank), "virtual": True},
            }
        )
    other = {"meta": meta} if meta else {}
    other["virtual_time"] = True
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


_KNOWN_PHASES = set("BEXIiCbensTtfPNODMmVvRc(),")


def validate_chrome_trace(doc) -> list[str]:
    """Structural schema errors in a trace-event document (empty = valid).

    Checks the shape CI gates on: a ``traceEvents`` list (or a bare
    event list), per-event ``name``/``ph``/``ts`` keys, known phase
    keys, finite non-negative timestamps and durations, and per-
    ``(pid, tid)`` monotonically non-decreasing start times.
    """
    errors: list[str] = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level 'traceEvents' missing or not a list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"trace document must be a dict or list, got {type(doc).__name__}"]

    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: missing or unknown phase key {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing event name")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            errors.append(f"{where}: ts must be a finite number >= 0, got {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                errors.append(
                    f"{where}: complete event dur must be a finite number >= 0, "
                    f"got {dur!r}"
                )
        row = (ev.get("pid", 0), ev.get("tid", 0))
        if row in last_ts and ts < last_ts[row]:
            errors.append(
                f"{where}: ts {ts} goes backwards on row pid/tid {row} "
                f"(previous {last_ts[row]})"
            )
        last_ts[row] = max(last_ts.get(row, 0.0), float(ts))
    return errors


# ---------------------------------------------------------------------------
# JSONL run manifest
# ---------------------------------------------------------------------------
def _json_default(obj):
    """Serialize numpy scalars and other non-JSON leaves."""
    for attr in ("item",):  # numpy scalars / 0-d arrays
        if hasattr(obj, attr):
            return obj.item()
    return str(obj)


def write_manifest(hook, path) -> str:
    """Write one run's JSONL manifest from a :class:`TelemetryHook`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "type": "run",
        "schema": MANIFEST_SCHEMA,
        "kind": hook.plan_kind,
        "backend": hook.backend,
        "label": hook.label,
        "tid": hook.tid,
        "git_rev": git_revision(),
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": hook.plan_meta,
        "planned": hook.plan_counts,
    }
    rec = hook.recorder
    with open(path, "w", encoding="utf-8") as fh:

        def emit(obj):
            fh.write(json.dumps(obj, default=_json_default) + "\n")

        emit(header)
        for s in rec.spans:
            emit(
                {
                    "type": "span",
                    "name": s.name,
                    "cat": s.category,
                    "start": s.start,
                    "end": s.end,
                    "attrs": s.attrs,
                }
            )
        for name, value in sorted(rec.counter_values().items()):
            emit({"type": "counter", "name": name, "value": value})
        for name, value in sorted(rec.gauge_values().items()):
            emit({"type": "gauge", "name": name, "value": value})
        emit({"type": "summary", **hook.summary()})
    return str(path)


def read_manifest(path) -> dict:
    """Parse a JSONL manifest into ``{run, spans, counters, gauges, summary}``."""
    run = summary = None
    spans: list[dict] = []
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            kind = obj.get("type")
            if kind == "run":
                run = obj
            elif kind == "span":
                spans.append(obj)
            elif kind == "counter":
                counters[obj["name"]] = obj["value"]
            elif kind == "gauge":
                gauges[obj["name"]] = obj["value"]
            elif kind == "summary":
                summary = obj
    if run is None:
        raise ValueError(f"{path}: no 'run' header record")
    if run.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: unsupported manifest schema {run.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA})"
        )
    return {
        "run": run,
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
        "summary": summary or {},
    }


def manifest_to_chrome(manifest: dict) -> dict:
    """Rebuild a Chrome trace document from a parsed manifest."""
    tid = int(manifest["run"].get("tid", 0) or 0)
    events = []
    for s in sorted(manifest["spans"], key=lambda s: (s["start"], s["end"])):
        events.append(
            {
                "name": s["name"],
                "cat": s["cat"],
                "ph": "X",
                "ts": s["start"] * _S_TO_US,
                "dur": (s["end"] - s["start"]) * _S_TO_US,
                "pid": 0,
                "tid": int(s.get("attrs", {}).get("tid", tid)),
                "args": s.get("attrs", {}),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": manifest["counters"],
            "gauges": manifest["gauges"],
            "meta": manifest["run"].get("meta", {}),
        },
    }


def diff_manifests(a: dict, b: dict, *, labels=("a", "b")) -> str:
    """Human-readable comparison of two parsed manifests.

    Compares the headline aggregates two runs are usually diffed for:
    subproblem counts and seconds per stage, the four-category
    breakdown, and every counter present in either run.
    """
    la, lb = labels
    lines = [
        f"run {la}: kind={a['run'].get('kind')} backend={a['run'].get('backend')} "
        f"git={str(a['run'].get('git_rev'))[:10]}",
        f"run {lb}: kind={b['run'].get('kind')} backend={b['run'].get('backend')} "
        f"git={str(b['run'].get('git_rev'))[:10]}",
        "",
    ]

    def rows(title, keys, geta, getb, fmt):
        out = [title]
        width = max((len(k) for k in keys), default=0)
        for k in keys:
            va, vb = geta(k), getb(k)
            delta = (
                ""
                if va is None or vb is None
                else f"  delta {vb - va:+.4g}"
            )
            out.append(
                f"  {k:<{width}}  {la}={fmt(va)}  {lb}={fmt(vb)}{delta}"
            )
        return out

    fmt = lambda v: "-" if v is None else f"{v:.4g}"

    sa, sb = a.get("summary", {}), b.get("summary", {})
    stages = sorted(
        set(sa.get("stages", {})) | set(sb.get("stages", {}))
    )
    for metric in ("subproblems", "recovered", "seconds"):
        lines += rows(
            f"stage {metric}",
            stages,
            lambda s, m=metric: sa.get("stages", {}).get(s, {}).get(m),
            lambda s, m=metric: sb.get("stages", {}).get(s, {}).get(m),
            fmt,
        )
    lines += rows(
        "breakdown (s)",
        list(CATEGORIES),
        lambda c: sa.get("breakdown", {}).get(c),
        lambda c: sb.get("breakdown", {}).get(c),
        fmt,
    )
    counters = sorted(set(a["counters"]) | set(b["counters"]))
    if counters:
        lines += rows(
            "counters",
            counters,
            lambda k: a["counters"].get(k),
            lambda k: b["counters"].get(k),
            fmt,
        )
    ta = sa.get("total_seconds")
    tb = sb.get("total_seconds")
    if ta is not None and tb is not None:
        lines += ["", f"total seconds  {la}={ta:.4g}  {lb}={tb:.4g}  delta {tb - ta:+.4g}"]
    return "\n".join(lines)


def export_run(hook, export_dir) -> list[str]:
    """Write a hook's manifest + Chrome trace into ``export_dir``.

    Files are named by plan kind (``manifest-<kind>.jsonl``,
    ``trace-<kind>.json``); a later run of the same kind into the same
    directory overwrites — give each run its own directory to keep
    both.  Returns the written paths.
    """
    export_dir = Path(export_dir)
    export_dir.mkdir(parents=True, exist_ok=True)
    kind = hook.plan_kind or "run"
    manifest_path = export_dir / f"manifest-{kind}.jsonl"
    trace_path = export_dir / f"trace-{kind}.json"
    write_manifest(hook, manifest_path)
    doc = chrome_trace(
        hook.recorder, tid=hook.tid, meta={"kind": kind, "backend": hook.backend}
    )
    with open(trace_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return [str(manifest_path), str(trace_path)]
