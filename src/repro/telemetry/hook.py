"""Engine hook that times every (stage, bootstrap, λ) subproblem.

One :class:`TelemetryHook` attached to
:func:`repro.engine.executors.run_plan` turns a real execution on any
backend into the same four-category runtime attribution the simulator
produces on virtual clocks:

* every ``on_subproblem_done`` closes a wall-clock span for that task
  — tagged with its stage, bootstrap, λ index, checkpoint key, and
  whether it was *solved* or *recovered* through the resilience lookup
  path (the engine fires ``on_subproblem_done`` for recovered tasks
  too, with ``recovered=True``);
* ``on_stage_end`` aggregates a per-stage summary (solved / recovered
  counts, seconds, backend) before the stage's reduction runs;
* ``on_run_start`` installs the hook's :class:`Recorder` as the
  context-var current recorder, so the solver and I/O one-liners in
  :mod:`repro.linalg`, :mod:`repro.pfs` and :mod:`repro.distribution`
  feed the same recorder without any plumbing;
* ``on_run_end`` restores the previous recorder and, when an export
  directory is configured, writes the JSONL run manifest and Chrome
  trace via :mod:`repro.telemetry.export`.

Timing model
------------
Per-task spans are measured *at the hook layer* as the interval
between consecutive engine events on the dispatching thread.  On the
serial backend and on a bound simmpi rank this is the true solve time
(lookup + solve happen inline between events).  On the multiprocess
backend and the standalone simmpi backend, hook events replay in the
parent after the stage's workers finish, so per-task spans reflect
replay order while the *stage* span (and therefore the breakdown) is
accurate wall clock.  The first span of a stage also absorbs the
previous stage's reduction; ``repro trace summary`` reports stage
totals, where none of this matters.

Category attribution follows the paper's four bars: subproblem time
is COMPUTATION, minus whatever the instrumented layers attributed to
COMMUNICATION / DISTRIBUTION / DATA_IO inside the run (one-sided
shuffles, hyperslab reads, checkpoint flushes), so the categories sum
to the measured total without double counting.
"""

from __future__ import annotations

from repro.engine.hooks import EngineHook
from repro.telemetry.recorder import (
    CATEGORIES,
    COMPUTATION,
    DISTRIBUTION,
    Recorder,
    _current,
)

__all__ = ["TelemetryHook", "StageStats"]


class StageStats:
    """Mutable per-stage aggregate (one per plan stage)."""

    __slots__ = ("stage", "solved", "recovered", "seconds")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self.solved = 0
        self.recovered = 0
        self.seconds = 0.0

    @property
    def subproblems(self) -> int:
        return self.solved + self.recovered

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "subproblems": self.subproblems,
            "solved": self.solved,
            "recovered": self.recovered,
            "seconds": self.seconds,
        }


class TelemetryHook(EngineHook):
    """Observability for one engine run (see module docstring).

    Parameters
    ----------
    recorder:
        Shared :class:`Recorder`; a fresh one is created by default.
    export_dir:
        When set, ``on_run_end`` writes ``manifest-<kind>.jsonl`` and
        ``trace-<kind>.json`` into this directory (created if
        missing).
    tid:
        Thread/rank id stamped on exported trace events — the
        distributed drivers pass their world rank here.
    label:
        Optional run label carried into the manifest header.
    """

    def __init__(
        self,
        recorder: Recorder | None = None,
        *,
        export_dir=None,
        tid: int = 0,
        label: str | None = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else Recorder()
        self.export_dir = export_dir
        self.tid = int(tid)
        self.label = label
        self.backend: str | None = None
        self.plan_kind: str | None = None
        self.plan_meta: dict = {}
        self.plan_counts: dict = {}
        self.stages: dict[str, StageStats] = {}
        self.exported: list[str] = []
        self._token = None
        self._run_start: float | None = None
        self._stage_start: float | None = None
        self._last_event: float | None = None

    # ------------------------------------------------- hook protocol
    def on_run_start(self, plan, executor) -> None:
        self.backend = getattr(executor, "name", type(executor).__name__)
        self.plan_kind = getattr(plan, "kind", "uoi")
        try:
            self.plan_meta = plan.meta()
        except NotImplementedError:
            self.plan_meta = {}
        desc = plan.describe()
        self.plan_counts = {
            stage: dict(info) for stage, info in desc["stages"].items()
        }
        now = self.recorder.now()
        self._run_start = now
        self._stage_start = now
        self._last_event = now
        # Install for the run so solver/IO one-liners hit this recorder
        # without plumbing.  Restored in on_run_end (same thread — the
        # engine dispatches all hook events from the driving thread).
        self._token = _current.set(self.recorder)

    def on_subproblem_done(self, task, payload, *, recovered) -> None:
        now = self.recorder.now()
        start = self._last_event if self._last_event is not None else now
        stats = self.stages.get(task.stage)
        if stats is None:
            stats = self.stages[task.stage] = StageStats(task.stage)
        if recovered:
            stats.recovered += 1
        else:
            stats.solved += 1
        stats.seconds += now - start
        self.recorder.add_span(
            f"subproblem:{task.key}",
            COMPUTATION,
            start,
            now,
            type="subproblem",
            stage=task.stage,
            bootstrap=task.bootstrap,
            lam_index=task.lam_index,
            key=task.key,
            recovered=bool(recovered),
            backend=self.backend,
        )
        self._last_event = now

    def on_stage_end(self, stage, plan) -> None:
        now = self.recorder.now()
        start = self._stage_start if self._stage_start is not None else now
        stats = self.stages.get(stage)
        if stats is None:
            stats = self.stages[stage] = StageStats(stage)
        self.recorder.add_span(
            f"stage:{stage}",
            COMPUTATION,
            start,
            now,
            type="stage",
            stage=stage,
            solved=stats.solved,
            recovered=stats.recovered,
            backend=self.backend,
        )
        self._stage_start = now
        self._last_event = now

    def on_run_end(self, plan) -> None:
        now = self.recorder.now()
        start = self._run_start if self._run_start is not None else now
        self.recorder.add_span(
            f"run:{self.plan_kind}",
            COMPUTATION,
            start,
            now,
            type="run",
            backend=self.backend,
        )
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if self.export_dir is not None:
            from repro.telemetry.export import export_run

            self.exported = export_run(self, self.export_dir)

    # ------------------------------------------------------- queries
    def subproblem_spans(self):
        """The per-task spans, in dispatch order."""
        return self.recorder.spans_named("subproblem:")

    def total_seconds(self) -> float:
        """Wall-clock of the whole run (run span; 0 before on_run_end)."""
        runs = self.recorder.spans_named("run:")
        return runs[-1].duration if runs else 0.0

    def breakdown(self) -> dict[str, float]:
        """Four-category seconds in :data:`CATEGORIES` order.

        COMMUNICATION / DISTRIBUTION / DATA_IO come from the
        instrumented layers' spans; COMPUTATION is the per-task span
        total minus those (floored at zero), so nested instrumentation
        is not double counted and the categories sum to measured task
        time.
        """
        cats = self.recorder.category_seconds()
        # Worker-lease spans (streaming backends' fleet accounting,
        # consumed by worker_utilization) *cover* the tasks they
        # schedule rather than nesting inside them — counting them
        # here would swallow the whole computation bucket.
        lease = sum(s.duration for s in self.recorder.spans_named("lease:"))
        cats[DISTRIBUTION] = max(0.0, cats[DISTRIBUTION] - lease)
        task_total = sum(s.seconds for s in self.stages.values())
        other = sum(cats[c] for c in CATEGORIES if c != COMPUTATION)
        out = {c: cats[c] for c in CATEGORIES}
        out[COMPUTATION] = max(0.0, task_total - other)
        return out

    def to_breakdown_row(self, label: str | None = None):
        """This run as a :class:`repro.perf.report.BreakdownRow`."""
        from repro.perf.report import BreakdownRow

        return BreakdownRow(
            label=label or self.label or f"{self.plan_kind}/{self.backend}",
            seconds=self.breakdown(),
            extra={"backend": str(self.backend)},
        )

    def summary(self) -> dict:
        """JSON-serializable run summary (manifest ``summary`` record)."""
        return {
            "kind": self.plan_kind,
            "backend": self.backend,
            "label": self.label,
            "planned": self.plan_counts,
            "stages": {s: st.as_dict() for s, st in self.stages.items()},
            "subproblems": sum(st.subproblems for st in self.stages.values()),
            "recovered": sum(st.recovered for st in self.stages.values()),
            "solved": sum(st.solved for st in self.stages.values()),
            "total_seconds": self.total_seconds(),
            "breakdown": self.breakdown(),
            "counters": self.recorder.counter_values(),
            "gauges": self.recorder.gauge_values(),
        }
