"""repro.telemetry — wall-clock spans, counters, and trace export.

Real-time observability for every UoI run: the :class:`Recorder`
primitives collect category-attributed wall-clock spans, the
:class:`TelemetryHook` times every (stage, bootstrap, λ) subproblem
through the engine's hook protocol, and :mod:`repro.telemetry.export`
turns a run into a JSONL manifest plus Chrome trace-event JSON.

Enable per-call (``UoILasso(...).fit(X, y, telemetry=True)``) or
process-wide via the ``REPRO_TELEMETRY`` environment variable (see
:func:`resolve_telemetry`).

Import structure: only :mod:`repro.telemetry.recorder` (dependency-
free) is imported eagerly, because the solver and I/O layers import it
at module scope — :mod:`repro.telemetry.hook` pulls in the engine,
which pulls in those same layers, so the hook/export names below are
resolved lazily (PEP 562) to keep the package cycle-free.
"""

from __future__ import annotations

import os

from repro.telemetry.recorder import (
    CATEGORIES,
    COMMUNICATION,
    COMPUTATION,
    DATA_IO,
    DISTRIBUTION,
    Counter,
    Gauge,
    Recorder,
    Span,
    count,
    current_recorder,
    export_snapshot,
    gauge,
    merge_snapshot,
    span,
    use_recorder,
)

__all__ = [
    "CATEGORIES",
    "COMPUTATION",
    "COMMUNICATION",
    "DISTRIBUTION",
    "DATA_IO",
    "Span",
    "Counter",
    "Gauge",
    "Recorder",
    "current_recorder",
    "use_recorder",
    "span",
    "count",
    "gauge",
    "export_snapshot",
    "merge_snapshot",
    "TelemetryHook",
    "StageStats",
    "chrome_trace",
    "tracer_to_chrome",
    "validate_chrome_trace",
    "write_manifest",
    "read_manifest",
    "manifest_to_chrome",
    "diff_manifests",
    "export_run",
    "git_revision",
    "TELEMETRY_ENV",
    "resolve_telemetry",
]

_LAZY = {
    "TelemetryHook": "repro.telemetry.hook",
    "StageStats": "repro.telemetry.hook",
    "chrome_trace": "repro.telemetry.export",
    "tracer_to_chrome": "repro.telemetry.export",
    "validate_chrome_trace": "repro.telemetry.export",
    "write_manifest": "repro.telemetry.export",
    "read_manifest": "repro.telemetry.export",
    "manifest_to_chrome": "repro.telemetry.export",
    "diff_manifests": "repro.telemetry.export",
    "export_run": "repro.telemetry.export",
    "git_revision": "repro.telemetry.export",
}


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module 'repro.telemetry' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(modname), name)
    globals()[name] = value
    return value


#: Environment variable consulted when ``telemetry=None`` is passed to a
#: driver.  Unset / ``""`` / ``"0"`` / ``"off"`` / ``"false"`` → disabled;
#: ``"1"`` / ``"on"`` / ``"true"`` → in-memory recording; any other value
#: → treated as an export directory path.
TELEMETRY_ENV = "REPRO_TELEMETRY"

_OFF = {"", "0", "off", "false", "no", "none"}
_ON = {"1", "on", "true", "yes"}


def resolve_telemetry(telemetry=None, *, tid: int = 0, label: str | None = None):
    """Normalize a driver's ``telemetry=`` argument to a hook or ``None``.

    Accepted values:

    * ``None`` — consult :data:`TELEMETRY_ENV` (the default for every
      driver, so ``REPRO_TELEMETRY=1 repro run ...`` instruments any
      entry point without code changes);
    * ``False`` — disabled, regardless of the environment;
    * ``True`` — in-memory :class:`TelemetryHook` (no files written);
    * a ``str`` / ``os.PathLike`` — hook that exports its manifest and
      Chrome trace into that directory at ``on_run_end``;
    * a :class:`Recorder` — hook wrapping that recorder (share one
      recorder across several fits);
    * a :class:`TelemetryHook` — used as-is (``tid``/``label`` ignored).

    Returns the hook to append to the run's ``HookList``, or ``None``
    when telemetry is disabled.
    """
    if telemetry is None:
        env = os.environ.get(TELEMETRY_ENV, "").strip().lower()
        if env in _OFF:
            return None
        from repro.telemetry.hook import TelemetryHook

        if env in _ON:
            return TelemetryHook(tid=tid, label=label)
        return TelemetryHook(
            export_dir=os.environ[TELEMETRY_ENV], tid=tid, label=label
        )
    if telemetry is False:
        return None
    from repro.telemetry.hook import TelemetryHook

    if telemetry is True:
        return TelemetryHook(tid=tid, label=label)
    if isinstance(telemetry, TelemetryHook):
        return telemetry
    if isinstance(telemetry, Recorder):
        return TelemetryHook(telemetry, tid=tid, label=label)
    if isinstance(telemetry, (str, os.PathLike)):
        return TelemetryHook(export_dir=telemetry, tid=tid, label=label)
    raise TypeError(
        "telemetry must be None, bool, a path, a Recorder, or a "
        f"TelemetryHook; got {type(telemetry).__name__}"
    )
