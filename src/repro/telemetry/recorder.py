"""Low-overhead wall-clock telemetry primitives.

The paper attributes runtime to four categories — *Computation /
Communication / Distribution / Data I/O* — using profiler tooling
(Intel Advisor, MPI timers).  :mod:`repro.simmpi` reproduces that for
*simulated* time on the virtual clocks; this module is the real-time
counterpart: a :class:`Recorder` collects wall-clock :class:`Span`
intervals, monotonic :class:`Counter` totals and last-value
:class:`Gauge` readings from anywhere in the process, so real
executions through the engine backends produce the same
category-attributed breakdowns the simulator does.

Instrumentation sites stay one-liners through a context-var *current
recorder*: :func:`count`, :func:`gauge` and :func:`span` consult
:data:`_current`, and when no recorder is installed they are no-ops
whose only cost is one ``ContextVar.get`` — measured in
``benchmarks/bench_ablation_telemetry.py`` to keep hot solver paths
honest.  Install a recorder for a region with :func:`use_recorder`
(or let :class:`repro.telemetry.hook.TelemetryHook` install one for
the duration of an engine run).

Thread-safety: simulated MPI ranks are *threads* sharing one process,
so every :class:`Recorder` mutation takes an internal lock.  Note
that ``contextvars`` are per-thread: a recorder installed on the main
thread is not visible to worker threads or processes unless they
install it themselves (the distributed drivers install one per rank;
multiprocess pool workers run uninstrumented — their spans would die
with the worker anyway — which is why the engine replays hook events
in the parent).
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "COMPUTATION",
    "COMMUNICATION",
    "DISTRIBUTION",
    "DATA_IO",
    "CATEGORIES",
    "Span",
    "Counter",
    "Gauge",
    "Recorder",
    "current_recorder",
    "use_recorder",
    "span",
    "count",
    "gauge",
]

#: Category names, matching :data:`repro.perf.report.CATEGORY_ORDER`
#: (the string values of :class:`repro.simmpi.clock.TimeCategory`).
COMPUTATION = "computation"
COMMUNICATION = "communication"
DISTRIBUTION = "distribution"
DATA_IO = "data_io"
CATEGORIES = (COMPUTATION, COMMUNICATION, DISTRIBUTION, DATA_IO)


@dataclass(frozen=True)
class Span:
    """One named wall-clock interval attributed to a category.

    Attributes
    ----------
    name:
        Dotted event name (``"subproblem:sel/k0/j1"``, ``"hdf5.read_parallel"``).
    category:
        One of :data:`CATEGORIES`.
    start, end:
        ``perf_counter`` seconds, relative to the recorder's epoch.
    attrs:
        Free-form JSON-serializable annotations (stage, key, nbytes, ...).
    """

    name: str
    category: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Counter:
    """Monotonic named total (e.g. solver iterations, bytes read)."""

    name: str
    value: float = 0.0

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Gauge:
    """Last-value reading (e.g. a solve's final primal residual)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Recorder:
    """Thread-safe collector of spans, counters and gauges.

    All timestamps are taken from ``clock`` (default
    ``time.perf_counter``) and stored relative to the recorder's
    *epoch* — the clock reading at construction — so exported traces
    start near zero regardless of process uptime.  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.epoch = float(clock())
        self.spans: list[Span] = []
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------ time
    def now(self) -> float:
        """Seconds since the recorder's epoch."""
        return float(self._clock()) - self.epoch

    # ----------------------------------------------------------- spans
    def add_span(
        self, name: str, category: str, start: float, end: float, **attrs
    ) -> Span:
        """Record one interval (epoch-relative seconds); returns it."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; choose from {CATEGORIES}"
            )
        if end < start:
            raise ValueError(f"span end {end} before start {start}")
        s = Span(name, category, float(start), float(end), attrs)
        with self._lock:
            self.spans.append(s)
        return s

    @contextmanager
    def span(self, name: str, category: str, **attrs):
        """Context manager timing its body as one span."""
        start = self.now()
        try:
            yield
        finally:
            self.add_span(name, category, start, self.now(), **attrs)

    # -------------------------------------------------- counters/gauges
    def count(self, name: str, delta: float = 1.0) -> None:
        """Add ``delta`` to the named counter (created at zero)."""
        with self._lock:
            c = self.counters.get(name)
            if c is None:
                c = self.counters[name] = Counter(name)
            c.add(delta)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value``."""
        with self._lock:
            g = self.gauges.get(name)
            if g is None:
                g = self.gauges[name] = Gauge(name)
            g.set(value)

    # --------------------------------------------------------- queries
    def category_seconds(self) -> dict[str, float]:
        """Summed span duration per category (all categories present)."""
        out = {c: 0.0 for c in CATEGORIES}
        with self._lock:
            for s in self.spans:
                out[s.category] += s.duration
        return out

    def counter_values(self) -> dict[str, float]:
        with self._lock:
            return {name: c.value for name, c in self.counters.items()}

    def gauge_values(self) -> dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self.gauges.items()}

    def spans_named(self, prefix: str) -> list[Span]:
        """Spans whose name starts with ``prefix``, in record order."""
        with self._lock:
            return [s for s in self.spans if s.name.startswith(prefix)]

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


# ---------------------------------------------------------------------------
# current-recorder plumbing (the one-liner instrumentation surface)
# ---------------------------------------------------------------------------
_current: contextvars.ContextVar[Recorder | None] = contextvars.ContextVar(
    "repro_telemetry_recorder", default=None
)


def current_recorder() -> Recorder | None:
    """The recorder instrumentation sites feed, or ``None`` (disabled)."""
    return _current.get()


@contextmanager
def use_recorder(recorder: Recorder):
    """Install ``recorder`` as current for the ``with`` body (this thread)."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


class _NullSpan:
    """Reusable no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, category: str, **attrs):
    """Span context manager against the current recorder; no-op if none."""
    rec = _current.get()
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, category, **attrs)


def count(name: str, delta: float = 1.0) -> None:
    """Bump a counter on the current recorder; no-op if none."""
    rec = _current.get()
    if rec is not None:
        rec.count(name, delta)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the current recorder; no-op if none."""
    rec = _current.get()
    if rec is not None:
        rec.gauge(name, value)


# ---------------------------------------------------------------------------
# cross-process shipping (worker-side telemetry back to the coordinator)
# ---------------------------------------------------------------------------
def export_snapshot(recorder: Recorder) -> dict:
    """A recorder's contents as one picklable dict.

    The engine's out-of-process transports run ``run_chain`` in worker
    processes, where instrumentation sites feed a per-chain recorder;
    this snapshot travels back with the chain's results and is folded
    into the parent run's recorder by :func:`merge_snapshot`.
    """
    with recorder._lock:
        return {
            "spans": [
                (s.name, s.category, s.start, s.end, dict(s.attrs))
                for s in recorder.spans
            ],
            "counters": {n: c.value for n, c in recorder.counters.items()},
            "gauges": {n: g.value for n, g in recorder.gauges.items()},
        }


def merge_snapshot(recorder: Recorder, snapshot: dict) -> None:
    """Fold a worker recorder's :func:`export_snapshot` into ``recorder``.

    Counters add and gauges overwrite (callers merge chains in
    deterministic order, so last-write is well defined).  A worker's
    clock epoch is unrelated to ours, so spans are re-based to end at
    ``recorder.now()`` — durations, relative order and categories (the
    breakdown and summary currency) are preserved exactly; absolute
    placement on the parent timeline is presentational.
    """
    spans = snapshot.get("spans", ())
    if spans:
        offset = recorder.now() - max(end for _, _, _, end, _ in spans)
        for name, category, start, end, attrs in spans:
            recorder.add_span(
                name, category, start + offset, end + offset, **attrs
            )
    for name, value in snapshot.get("counters", {}).items():
        recorder.count(name, value)
    for name, value in snapshot.get("gauges", {}).items():
        recorder.gauge(name, value)
