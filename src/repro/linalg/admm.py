"""Serial dense LASSO-ADMM (the paper's core "Solve" kernel).

The paper solves the constrained convex program of its eq. (5)

    minimize f(x) + g(z)   subject to x - z = 0
    f(x) = ||y - X x||^2,  g(z) = lam * ||z||_1

with the Alternating Direction Method of Multipliers (Boyd et al.
2011).  The iteration is

    x^{k+1} = (2 X'X + rho I)^{-1} (2 X'y + rho (z^k - u^k))
    z^{k+1} = S_{lam/rho}(alpha x^{k+1} + (1-alpha) z^k + u^k)
    u^{k+1} = u^k + alpha x^{k+1} + (1-alpha) z^k - z^{k+1}

Setting ``lam = 0`` turns the soft-threshold into the identity and the
iteration converges to ordinary least squares — exactly how the paper
implements OLS for the model-estimation stage ("by setting
regularization parameter λ to 0").

The x-update factorization ``2 X'X + rho I`` (Cholesky; or the Woodbury
form when n < p) is computed **once** per design matrix and reused
across all λ values and warm starts, mirroring the cached-factorization
optimization in the C++/MKL implementation.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.linalg.soft_threshold import soft_threshold
from repro.telemetry.recorder import count as _tcount, gauge as _tgauge

__all__ = ["ADMMResult", "LassoADMM", "lasso_admm"]


@dataclass
class ADMMResult:
    """Outcome of one ADMM solve.

    Attributes
    ----------
    beta:
        ``(p,)`` solution vector (the consensus variable ``z``, which
        is exactly sparse thanks to the soft-threshold).
    iterations:
        Number of ADMM iterations performed.
    converged:
        Whether both primal and dual residuals met their tolerances.
    primal_residual, dual_residual:
        Final residual norms (Boyd et al. 2011, §3.3).
    objective:
        Final value of ``||y - X beta||^2 + lam ||beta||_1``.
    history:
        Per-iteration ``(primal_residual, dual_residual, objective)``
        triples, kept only when ``record_history=True`` was requested.
        Always a list — **empty** (never ``None``) when recording is
        off, so callers can iterate unconditionally.
    dual:
        ``(p,)`` final scaled dual variable ``u``; feed it back as
        ``u0`` (with ``beta`` as ``beta0``) to warm-start a re-solve of
        a nearby problem.
    """

    beta: np.ndarray
    iterations: int
    converged: bool
    primal_residual: float
    dual_residual: float
    objective: float
    history: list[tuple[float, float, float]] = field(default_factory=list)
    dual: np.ndarray | None = None


class LassoADMM:
    """Reusable LASSO-ADMM solver bound to one design matrix.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response.
    rho:
        ADMM penalty parameter (> 0).
    alpha:
        Over-relaxation parameter in ``[1, 1.8]``; 1.0 disables
        over-relaxation.
    max_iter:
        Iteration cap.
    abstol, reltol:
        Absolute and relative stopping tolerances.
    adapt_rho:
        Enable residual balancing (Boyd §3.4.1): when the primal
        residual outweighs the dual by ``adapt_mu`` (or vice versa),
        ``rho`` is scaled by ``adapt_tau`` and the dual variable
        rescaled.  Each adaptation **invalidates the cached
        factorization** — the very optimization the paper's
        implementation relies on — so the refactorization count is
        tracked and exposed; the trade-off is quantified in
        ``benchmarks/bench_ablation_rho.py``.
    adapt_tau, adapt_mu:
        Residual-balancing parameters (Boyd's defaults: 2 and 10).

    Notes
    -----
    The factorization strategy follows Boyd et al. §4.2: when
    ``n >= p`` we Cholesky-factor the ``p x p`` matrix
    ``2 X'X + rho I``; when ``n < p`` we factor the ``n x n`` matrix
    ``I + (2/rho) X X'`` and apply the matrix-inversion lemma.  Either
    way each subsequent solve is two triangular solves.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        rho: float = 1.0,
        alpha: float = 1.5,
        max_iter: int = 500,
        abstol: float = 1e-5,
        reltol: float = 1e-4,
        adapt_rho: bool = False,
        adapt_tau: float = 2.0,
        adapt_mu: float = 10.0,
    ) -> None:
        X = np.ascontiguousarray(X, dtype=float)
        y = np.ascontiguousarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
        if rho <= 0:
            raise ValueError(f"rho must be > 0, got {rho}")
        if not (1.0 <= alpha <= 1.8):
            raise ValueError(f"alpha must lie in [1, 1.8], got {alpha}")
        if adapt_tau <= 1.0 or adapt_mu <= 1.0:
            raise ValueError(
                f"adapt_tau and adapt_mu must be > 1, got {adapt_tau}, {adapt_mu}"
            )
        self.X = X
        self.y = y
        self.n, self.p = X.shape
        self.rho = float(rho)
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.abstol = float(abstol)
        self.reltol = float(reltol)
        self.adapt_rho = bool(adapt_rho)
        self.adapt_tau = float(adapt_tau)
        self.adapt_mu = float(adapt_mu)
        #: Number of factorizations performed (grows past 1 only when
        #: residual balancing changes rho).
        self.factorizations = 0

        self._Xty2 = 2.0 * (X.T @ y)
        self._woodbury = self.n < self.p
        self._gram_base = (
            2.0 * (X @ X.T) if self._woodbury else 2.0 * (X.T @ X)
        )
        self._factorize(self.rho)

    def _factorize(self, rho: float) -> None:
        """(Re)factor the x-update system for penalty ``rho``."""
        if self._woodbury:
            small = self._gram_base / rho
            # Woodbury is only taken when n < p, so this eye is the
            # *small* system (min(n, p)²) — bounded by the guard the
            # shape interpreter cannot see.
            small = small + np.eye(self.n)  # repro: ignore[SHAPE102]
            self._chol = scipy.linalg.cho_factor(
                small, lower=True, check_finite=False
            )
        else:
            gram = self._gram_base.copy()
            gram[np.diag_indices_from(gram)] += rho
            self._chol = scipy.linalg.cho_factor(
                gram, lower=True, check_finite=False
            )
        self._chol_rho = rho
        self.factorizations += 1
        _tcount("admm.factorizations")

    def _solve_normal(self, q: np.ndarray, rho: float) -> np.ndarray:
        """Solve ``(2 X'X + rho I) x = q`` using the cached factorization."""
        if rho != self._chol_rho:
            self._factorize(rho)
        if not self._woodbury:
            return scipy.linalg.cho_solve(self._chol, q, check_finite=False)
        # Woodbury: (rho I + 2X'X)^{-1} q
        #   = q/rho - (2/rho^2) X' (I + (2/rho) X X')^{-1} X q
        Xq = self.X @ q
        inner = scipy.linalg.cho_solve(self._chol, Xq, check_finite=False)
        return q / rho - (2.0 / rho**2) * (self.X.T @ inner)

    def set_response(self, y: np.ndarray) -> "LassoADMM":
        """Rebind the response vector, keeping the cached factorization.

        The x-update factorization depends only on ``X`` and ``rho``,
        so multivariate problems sharing one design (every column of a
        VAR lag regression) can reuse it across responses — a large
        saving over refactoring per column.  Returns ``self``.
        """
        y = np.ascontiguousarray(y, dtype=float)
        if y.shape != (self.n,):
            raise ValueError(f"y shape {y.shape} != ({self.n},)")
        self.y = y
        self._Xty2 = 2.0 * (self.X.T @ y)
        return self

    def objective(self, beta: np.ndarray, lam: float) -> float:
        """Paper-eq.-(2) objective ``||y - X b||^2 + lam ||b||_1``."""
        resid = self.y - self.X @ beta
        return float(resid @ resid + lam * np.abs(beta).sum())

    def solve(
        self,
        lam: float,
        *,
        beta0: np.ndarray | None = None,
        u0: np.ndarray | None = None,
        record_history: bool = False,
    ) -> ADMMResult:
        """Solve the LASSO at penalty ``lam`` (``lam = 0`` gives OLS).

        Parameters
        ----------
        lam:
            Penalty level, >= 0.
        beta0:
            Optional warm start for ``z`` (and ``x``); used when
            sweeping a decreasing λ path.
        u0:
            Optional warm start for the scaled dual ``u``.  ADMM's
            convergence is governed by the dual as much as the primal,
            so re-solving a problem close to one already solved (e.g.
            the same λ on the next window of a rolling fit) converges
            far faster when the previous ``(z, u)`` pair seeds both
            variables; ``beta0`` alone restarts the dual from zero.
            Like ``beta0`` this moves the starting point only — the
            stopping tolerances decide the answer.
        record_history:
            Keep per-iteration residual norms in the result.
        """
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        p = self.p
        z = np.zeros(p) if beta0 is None else np.asarray(beta0, dtype=float).copy()
        if z.shape != (p,):
            raise ValueError(f"beta0 shape {z.shape} != ({p},)")
        u = np.zeros(p) if u0 is None else np.asarray(u0, dtype=float).copy()
        if u.shape != (p,):
            raise ValueError(f"u0 shape {u.shape} != ({p},)")
        history: list[tuple[float, float, float]] = []
        rho = self.rho
        sqrtp = np.sqrt(p)

        converged = False
        r_norm = s_norm = np.inf
        it = 0
        for it in range(1, self.max_iter + 1):
            x = self._solve_normal(self._Xty2 + rho * (z - u), rho)
            x_hat = self.alpha * x + (1.0 - self.alpha) * z
            z_old = z
            z = soft_threshold(x_hat + u, lam / rho)
            u = u + x_hat - z

            diff = x - z
            r_norm = math.sqrt(float(diff @ diff))
            dz = z - z_old
            s_norm = rho * math.sqrt(float(dz @ dz))
            if record_history:
                history.append((r_norm, s_norm, self.objective(z, lam)))

            eps_pri = sqrtp * self.abstol + self.reltol * max(
                math.sqrt(float(x @ x)), math.sqrt(float(z @ z))
            )
            eps_dual = sqrtp * self.abstol + self.reltol * rho * math.sqrt(
                float(u @ u)
            )
            if r_norm < eps_pri and s_norm < eps_dual:
                converged = True
                break

            if self.adapt_rho and it % 10 == 0:
                # Residual balancing (Boyd §3.4.1), throttled to every
                # tenth iteration so refactorizations stay rare and the
                # scheme cannot oscillate; u is the *scaled* dual, so
                # it shrinks when rho grows.
                if r_norm > self.adapt_mu * s_norm:
                    rho *= self.adapt_tau
                    u /= self.adapt_tau
                elif s_norm > self.adapt_mu * r_norm:
                    rho /= self.adapt_tau
                    u *= self.adapt_tau

        # One soft-threshold per iteration; no-ops unless a telemetry
        # recorder is installed for this run.
        _tcount("admm.solves")
        _tcount("admm.iterations", it)
        _tcount("admm.soft_thresholds", it)
        if converged:
            _tcount("admm.converged")
        _tgauge("admm.primal_residual", r_norm)
        _tgauge("admm.dual_residual", s_norm)

        return ADMMResult(
            beta=z,
            iterations=it,
            converged=converged,
            primal_residual=r_norm,
            dual_residual=s_norm,
            objective=self.objective(z, lam),
            history=history,
            dual=u,
        )

    def solve_path(self, lams: np.ndarray) -> list[ADMMResult]:
        """Solve a decreasing λ path with warm starts between points."""
        results: list[ADMMResult] = []
        beta = None
        for lam in lams:
            res = self.solve(float(lam), beta0=beta)
            beta = res.beta
            results.append(res)
        return results


def lasso_admm(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    **kwargs,
) -> np.ndarray:
    """One-shot functional wrapper: LASSO solution for ``(X, y, lam)``.

    Keyword arguments are forwarded to :class:`LassoADMM`.
    """
    return LassoADMM(X, y, **kwargs).solve(lam).beta
