"""Numerical substrate for the UoI reproduction.

This package implements, from scratch, every numerical kernel the paper
relies on:

* :mod:`repro.linalg.soft_threshold` — proximal operators used by ADMM
  and the non-convex baselines.
* :mod:`repro.linalg.admm` — the serial dense LASSO-ADMM solver
  (Boyd et al. 2011, §6.4) with cached factorizations and warm starts.
  Setting ``lam = 0`` yields the OLS-by-ADMM solver the paper uses for
  model estimation.
* :mod:`repro.linalg.consensus` — sample-split consensus ADMM
  (Boyd et al. 2011, §8.2) running over a :mod:`repro.simmpi`
  communicator; this is the distributed solver whose per-iteration
  ``Allreduce`` dominates the paper's communication time.
* :mod:`repro.linalg.cd` — cyclic coordinate-descent LASSO, used as an
  independent reference solver in tests and as the statistical
  baseline ("plain LASSO") in the accuracy benchmarks.
* :mod:`repro.linalg.ols` — least squares restricted to a support.
* :mod:`repro.linalg.ridge` — ridge regression baseline.
* :mod:`repro.linalg.nonconvex` — MCP and SCAD penalized regression via
  local linear approximation, the non-convex baselines the paper cites
  (and argues are hard to distribute).
* :mod:`repro.linalg.lambda_grid` — regularization-path construction.
* :mod:`repro.linalg.kron` — the ``vec`` / ``I ⊗ X`` machinery of
  eq. (9), both lazily (column-decomposed) and materialized (as the
  paper's distributed implementation does).
"""

from repro.linalg.soft_threshold import (
    soft_threshold,
    mcp_threshold,
    scad_threshold,
)
from repro.linalg.admm import ADMMResult, LassoADMM, lasso_admm
from repro.linalg.cd import lasso_cd, precompute_gram
from repro.linalg.ols import ols_on_support, ols
from repro.linalg.ridge import ridge
from repro.linalg.nonconvex import mcp_regression, scad_regression
from repro.linalg.lambda_grid import lambda_max, lambda_grid
from repro.linalg.cv import CVResult, cv_lasso, kfold_indices
from repro.linalg.kron import (
    vec,
    unvec,
    identity_kron,
    IdentityKronOperator,
    kron_lasso_columnwise,
)

__all__ = [
    "soft_threshold",
    "mcp_threshold",
    "scad_threshold",
    "ADMMResult",
    "LassoADMM",
    "lasso_admm",
    "lasso_cd",
    "precompute_gram",
    "ols_on_support",
    "ols",
    "ridge",
    "mcp_regression",
    "scad_regression",
    "lambda_max",
    "lambda_grid",
    "CVResult",
    "cv_lasso",
    "kfold_indices",
    "vec",
    "unvec",
    "identity_kron",
    "IdentityKronOperator",
    "kron_lasso_columnwise",
]
