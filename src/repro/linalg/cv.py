"""K-fold cross-validated LASSO (the classical λ-selection baseline).

The paper's Fig. 1(c) shows the Tier-2 randomized distribution being
reused for "data randomization for cross validation" — CV is the
standard alternative to UoI's bootstrap machinery for picking λ, and
the baseline UoI is usually compared against.  This module implements
plain K-fold CV over a λ path with optional one-standard-error
selection, used by the statistical benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.cd import lasso_cd
from repro.linalg.lambda_grid import lambda_grid

__all__ = ["CVResult", "kfold_indices", "cv_lasso"]


@dataclass
class CVResult:
    """Outcome of a cross-validated LASSO fit.

    Attributes
    ----------
    beta:
        Final coefficients, refit on all rows at the chosen λ.
    lam:
        The chosen penalty.
    lam_index:
        Its index in the grid.
    lambdas:
        The grid swept.
    cv_loss:
        ``(q,)`` mean held-out MSE per grid point.
    cv_se:
        ``(q,)`` standard error of the fold losses per grid point.
    """

    beta: np.ndarray
    lam: float
    lam_index: int
    lambdas: np.ndarray
    cv_loss: np.ndarray
    cv_se: np.ndarray


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random K-fold partition: list of ``(train_idx, test_idx)`` pairs.

    Folds are disjoint, cover ``[0, n)`` exactly, and differ in size by
    at most one row.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if not (2 <= k <= n):
        raise ValueError(f"k must be in [2, {n}], got {k}")
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        out.append((train, test))
    return out


def cv_lasso(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_lambdas: int = 24,
    lambda_min_ratio: float = 1e-3,
    k: int = 5,
    rule: str = "min",
    rng: np.random.Generator | None = None,
    max_iter: int = 2000,
    tol: float = 1e-8,
) -> CVResult:
    """K-fold cross-validated LASSO over a geometric λ path.

    Parameters
    ----------
    X, y:
        Design ``(n, p)`` and response ``(n,)``.
    n_lambdas, lambda_min_ratio:
        λ-grid construction (see :func:`repro.linalg.lambda_grid`).
    k:
        Number of folds.
    rule:
        ``"min"`` — λ with the lowest mean CV loss; ``"1se"`` — the
        largest λ (sparsest model) within one standard error of it.
    rng:
        Fold-assignment randomness (fresh generator when ``None``).

    Returns
    -------
    CVResult
        Chosen λ, CV curve, and the full-data refit at the chosen λ.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if y.shape != (n,):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    if rule not in ("min", "1se"):
        raise ValueError(f"rule must be 'min' or '1se', got {rule!r}")
    rng = rng if rng is not None else np.random.default_rng()

    lambdas = lambda_grid(X, y, num=n_lambdas, eps=lambda_min_ratio)
    folds = kfold_indices(n, k, rng)
    losses = np.empty((k, n_lambdas))
    for f, (train, test) in enumerate(folds):
        beta = None
        for j, lam in enumerate(lambdas):
            beta = lasso_cd(
                X[train], y[train], float(lam), beta0=beta,
                max_iter=max_iter, tol=tol,
            )
            resid = y[test] - X[test] @ beta
            losses[f, j] = float(resid @ resid / max(len(test), 1))

    cv_loss = losses.mean(axis=0)
    cv_se = losses.std(axis=0, ddof=1) / np.sqrt(k)
    jmin = int(np.argmin(cv_loss))
    if rule == "1se":
        threshold = cv_loss[jmin] + cv_se[jmin]
        # λ grid is descending: the smallest index within threshold is
        # the largest penalty, i.e. the sparsest model.
        j_star = int(np.argmax(cv_loss <= threshold))
    else:
        j_star = jmin
    lam_star = float(lambdas[j_star])
    beta = lasso_cd(X, y, lam_star, max_iter=max_iter, tol=tol)
    return CVResult(
        beta=beta,
        lam=lam_star,
        lam_index=j_star,
        lambdas=lambdas,
        cv_loss=cv_loss,
        cv_se=cv_se,
    )
