"""Proximal / thresholding operators.

These are the scalar building blocks of every sparse solver in the
repository: the soft-threshold is the proximal operator of the L1 norm
used in the ``z``-update of LASSO-ADMM (eq. 5 of the paper) and in
coordinate descent; the MCP and SCAD thresholds are the closed-form
single-coordinate solutions used by the non-convex baselines the paper
compares against statistically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["soft_threshold", "mcp_threshold", "scad_threshold"]


def soft_threshold(x: np.ndarray | float, kappa: float) -> np.ndarray:
    """Elementwise soft-thresholding operator ``S_kappa(x)``.

    ``S_kappa(x) = sign(x) * max(|x| - kappa, 0)``, the proximal
    operator of ``kappa * ||.||_1``.

    Parameters
    ----------
    x:
        Input array (or scalar).
    kappa:
        Threshold, must be >= 0.  ``kappa = 0`` is the identity, which
        is how the OLS-by-ADMM path (``lam = 0``) falls out of the
        LASSO solver.

    Returns
    -------
    numpy.ndarray
        Array of the same shape as ``x``.
    """
    if kappa < 0:
        raise ValueError(f"soft_threshold requires kappa >= 0, got {kappa}")
    x = np.asarray(x, dtype=float)
    return np.sign(x) * np.maximum(np.abs(x) - kappa, 0.0)


def mcp_threshold(x: np.ndarray | float, lam: float, gamma: float = 3.0) -> np.ndarray:
    """Univariate minimax-concave-penalty (MCP) thresholding.

    Solves ``argmin_b 0.5 (b - x)^2 + MCP(b; lam, gamma)`` where the
    MCP penalty interpolates between soft (LASSO) and hard
    thresholding.  For ``|x| <= gamma * lam`` the solution is the
    rescaled soft-threshold ``S_lam(x) / (1 - 1/gamma)``; beyond that
    the penalty is flat and the solution is ``x`` itself (no bias).

    Parameters
    ----------
    x:
        Input array (or scalar).
    lam:
        Penalty level, >= 0.
    gamma:
        Concavity parameter, must be > 1 (gamma -> inf recovers LASSO).
    """
    if lam < 0:
        raise ValueError(f"mcp_threshold requires lam >= 0, got {lam}")
    if gamma <= 1:
        raise ValueError(f"mcp_threshold requires gamma > 1, got {gamma}")
    x = np.asarray(x, dtype=float)
    inner = soft_threshold(x, lam) / (1.0 - 1.0 / gamma)
    return np.where(np.abs(x) <= gamma * lam, inner, x)


def scad_threshold(x: np.ndarray | float, lam: float, a: float = 3.7) -> np.ndarray:
    """Univariate SCAD (smoothly clipped absolute deviation) threshold.

    Solves the scalar SCAD-penalized least squares problem (Fan & Li
    2001).  Three regimes: soft-thresholding for small ``|x|``, a
    linearly interpolated shrinkage in the middle band, and the
    identity (no bias) for ``|x| > a * lam``.

    Parameters
    ----------
    x:
        Input array (or scalar).
    lam:
        Penalty level, >= 0.
    a:
        SCAD shape parameter, must be > 2 (3.7 is Fan & Li's default).
    """
    if lam < 0:
        raise ValueError(f"scad_threshold requires lam >= 0, got {lam}")
    if a <= 2:
        raise ValueError(f"scad_threshold requires a > 2, got {a}")
    x = np.asarray(x, dtype=float)
    absx = np.abs(x)
    small = soft_threshold(x, lam)
    mid = soft_threshold(x, a * lam / (a - 1.0)) / (1.0 - 1.0 / (a - 1.0))
    out = np.where(absx <= 2.0 * lam, small, np.where(absx <= a * lam, mid, x))
    return out
