"""Regularization-path (λ grid) construction.

UoI sweeps a family of penalization parameters ``λ_1 > λ_2 > ... > λ_q``
(Algorithm 1, line 4).  The standard construction starts at
``λ_max`` — the smallest penalty for which the LASSO solution is
identically zero — and descends geometrically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lambda_max", "lambda_grid", "lambda_grid_from_max"]


def lambda_max(X: np.ndarray, y: np.ndarray) -> float:
    """Smallest ``λ`` such that the LASSO estimate is exactly zero.

    For the objective ``||y - Xb||^2 + λ ||b||_1`` (the paper's eq. 2,
    which has no 1/2 or 1/n on the quadratic term), the KKT conditions
    give ``λ_max = 2 * max_j |x_j' y|``.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response vector.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} incompatible with X shape {X.shape}")
    return 2.0 * float(np.max(np.abs(X.T @ y))) if X.size else 0.0


def lambda_grid(
    X: np.ndarray,
    y: np.ndarray,
    num: int = 48,
    eps: float = 1e-3,
) -> np.ndarray:
    """Geometric grid of ``num`` penalties from ``λ_max`` down to ``eps * λ_max``.

    Parameters
    ----------
    X, y:
        Design matrix and response used to anchor ``λ_max``.
    num:
        Number of grid points ``q`` (the paper uses q = 8, 16, 20, 48
        in various experiments).
    eps:
        Ratio of the smallest to the largest penalty.

    Returns
    -------
    numpy.ndarray
        Strictly decreasing array of length ``num``.
    """
    return lambda_grid_from_max(lambda_max(X, y), num=num, eps=eps)


def lambda_grid_from_max(lmax: float, num: int = 48, eps: float = 1e-3) -> np.ndarray:
    """Geometric grid anchored at a precomputed ``λ_max``.

    The single implementation behind every λ-grid in the codebase:
    :func:`lambda_grid` calls it with the local ``λ_max``; the
    distributed drivers call it with an ``Allreduce``-assembled
    ``2 * max |X'y|`` (their design is sharded across ranks), and the
    VAR estimators with the lifted problem's
    ``2 * max_c max_j |x_j' Y[:, c]|``.

    Parameters
    ----------
    lmax:
        The anchoring ``λ_max`` (see :func:`lambda_max`).
    num, eps:
        As in :func:`lambda_grid`.
    """
    if num < 1:
        raise ValueError(f"lambda_grid requires num >= 1, got {num}")
    if not (0 < eps < 1):
        raise ValueError(f"lambda_grid requires 0 < eps < 1, got {eps}")
    if lmax <= 0:
        # Degenerate data (y orthogonal to all columns): fall back to a
        # unit-scale grid so callers still get `num` distinct penalties.
        lmax = 1.0
    return lmax * np.logspace(0.0, np.log10(eps), num=num)
