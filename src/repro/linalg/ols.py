"""Ordinary least squares, optionally restricted to a support.

UoI model estimation (Algorithm 1 line 18, Algorithm 2 line 24) fits
the *unbiased* OLS estimator on each candidate support produced by the
selection stage.  The paper implements OLS as LASSO-ADMM with λ = 0 so
the same distributed solver serves both stages; serially we use a
direct least-squares solve, and the two are cross-checked in tests.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.recorder import count as _tcount

__all__ = ["ols", "ols_on_support"]


def ols(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Minimum-norm least-squares solution of ``min_b ||y - Xb||^2``.

    Uses an SVD-based solve (``numpy.linalg.lstsq``) so rank-deficient
    designs — common when a bootstrap drops rows — are handled without
    blowing up.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    _tcount("ols.solves")
    _tcount("ols.rows", X.shape[0])
    return beta


def ols_on_support(
    X: np.ndarray,
    y: np.ndarray,
    support: np.ndarray,
) -> np.ndarray:
    """OLS with coefficients outside ``support`` pinned to zero.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response.
    support:
        Either a boolean mask of length ``p`` or an integer index array
        selecting the free coefficients.

    Returns
    -------
    numpy.ndarray
        Full-length ``(p,)`` coefficient vector, dense in the support
        and exactly zero elsewhere.  An empty support yields the zero
        vector (the intercept-free null model).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    p = X.shape[1]
    support = np.asarray(support)
    if support.dtype == bool:
        if support.shape != (p,):
            raise ValueError(f"boolean support shape {support.shape} != ({p},)")
        idx = np.flatnonzero(support)
    else:
        idx = support.astype(np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= p):
            raise ValueError(f"support indices out of range for p={p}")
    beta = np.zeros(p)
    if idx.size:
        beta[idx] = ols(X[:, idx], np.asarray(y, dtype=float))
    else:
        _tcount("ols.empty_supports")
    return beta
