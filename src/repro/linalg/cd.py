"""Cyclic coordinate-descent LASSO.

An independent reference solver for the same objective as
:mod:`repro.linalg.admm` (paper eq. 2):

    ||y - X b||^2 + lam * ||b||_1

Used (a) in tests to cross-check the ADMM solver against a structurally
different algorithm, and (b) as the "plain LASSO" statistical baseline
in the accuracy benchmarks (the paper's motivating comparison: LASSO
alone has many false positives, UoI removes them).
"""

from __future__ import annotations

import numpy as np

from repro.linalg.soft_threshold import soft_threshold
from repro.telemetry.recorder import count as _tcount, gauge as _tgauge

__all__ = ["lasso_cd", "precompute_gram"]


def precompute_gram(
    X: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gram cache for covariance-update coordinate descent.

    Returns ``(gram, zeros, col_sq)`` where ``gram = X'X`` and
    ``col_sq`` is its diagonal; replace the middle element with
    ``X.T @ y`` for each response and pass the triple as
    ``precomputed`` to :func:`lasso_cd`.
    """
    X = np.ascontiguousarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    gram = X.T @ X
    return gram, np.zeros(X.shape[1]), np.diag(gram).copy()


def lasso_cd(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    *,
    beta0: np.ndarray | None = None,
    max_iter: int = 2000,
    tol: float = 1e-9,
    precomputed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Solve ``argmin_b ||y - Xb||^2 + lam ||b||_1`` by coordinate descent.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response.
    lam:
        Penalty level, >= 0.
    beta0:
        Optional warm start.
    max_iter:
        Maximum number of full sweeps.
    tol:
        Stop when the max absolute coordinate change in a sweep is
        below ``tol``.
    precomputed:
        Optional ``(gram, Xty, col_sq)`` triple from
        :func:`precompute_gram`, switching the solver to glmnet-style
        *covariance updates*: each coordinate update costs ``O(p)``
        against the cached ``X'X`` instead of ``O(n)`` against the
        residual — a large win when many responses or many penalties
        share one design with ``p << n``.

    Notes
    -----
    For coordinate ``j`` with residual ``r`` (excluding ``j``'s own
    contribution), the single-coordinate problem

        min_b  ||r - x_j b||^2 + lam |b|

    has the closed form ``b = S_{lam/2}(x_j' r) / (x_j' x_j)``.
    Columns with zero norm keep a zero coefficient.

    An *active-set* strategy (standard in glmnet-style solvers) keeps
    the cost proportional to the solution's sparsity: after each full
    sweep, inner sweeps cycle only over the currently-nonzero
    coordinates until they stabilize, then one more full sweep checks
    whether any inactive coordinate violates its KKT condition; the
    solve ends only when a full sweep changes nothing beyond ``tol``.
    """
    X = np.ascontiguousarray(X, dtype=float)
    y = np.ascontiguousarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n, p = X.shape
    if y.shape != (n,):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")

    beta = np.zeros(p) if beta0 is None else np.asarray(beta0, dtype=float).copy()
    if beta.shape != (p,):
        raise ValueError(f"beta0 shape {beta.shape} != ({p},)")

    half_lam = 0.5 * lam

    if precomputed is not None:
        gram, Xty, col_sq = precomputed
        if gram.shape != (p, p) or Xty.shape != (p,) or col_sq.shape != (p,):
            raise ValueError("precomputed triple has inconsistent shapes")
        # Covariance updates: rho_j = x_j'y - x_j'X beta + G_jj beta_j.
        gram_beta = gram @ beta

        def sweep(indices) -> float:
            max_delta = 0.0
            for j in indices:
                cj = col_sq[j]
                if cj == 0.0:
                    continue
                old = beta[j]
                rho_j = Xty[j] - gram_beta[j] + cj * old
                z = abs(rho_j) - half_lam
                new = 0.0 if z <= 0.0 else (z if rho_j > 0 else -z) / cj
                if new != old:
                    gram_beta[:] += gram[j] * (new - old)
                    beta[j] = new
                    delta = abs(new - old)
                    if delta > max_delta:
                        max_delta = delta
            return max_delta

    else:
        col_sq = np.einsum("ij,ij->j", X, X)
        resid = y - X @ beta

        def sweep(indices) -> float:
            max_delta = 0.0
            for j in indices:
                if col_sq[j] == 0.0:
                    continue
                old = beta[j]
                rho_j = X[:, j] @ resid + col_sq[j] * old
                new = float(soft_threshold(rho_j, half_lam)) / col_sq[j]
                if new != old:
                    resid[:] += X[:, j] * (old - new)
                    beta[j] = new
                    max_delta = max(max_delta, abs(new - old))
            return max_delta

    all_indices = range(p)
    sweeps_left = max_iter
    converged = False
    delta = np.inf
    while sweeps_left > 0:
        # Full sweep: updates everything and discovers new actives.
        delta = sweep(all_indices)
        sweeps_left -= 1
        if delta < tol:
            converged = True
            break
        # Inner sweeps over the active set only.
        while sweeps_left > 0:
            active = np.flatnonzero(beta)
            if active.size == 0:
                break
            delta = sweep(active)
            sweeps_left -= 1
            if delta < tol:
                break

    _tcount("cd.solves")
    _tcount("cd.sweeps", max_iter - sweeps_left)
    if converged:
        _tcount("cd.converged")
    else:
        # The solve stopped where the sweep budget ran out, not at the
        # tolerance — the returned point then depends on ``beta0``.
        # Anything relying on start-independence (notably the streaming
        # warm/cold identity) watches this counter.
        _tcount("cd.nonconverged")
    _tgauge("cd.last_delta", delta)
    return beta
