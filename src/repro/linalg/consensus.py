"""Distributed consensus LASSO-ADMM over a simulated communicator.

This is the paper's distributed "Solve" kernel (Section II-C): the
samples are row-partitioned over the ``ADMM_cores`` of a communicator;
"each compute core is responsible for computation of its own objective
(x) and constraint (z) variables ... so that all the cores converge to
a common value of estimates".  Concretely this is global-variable
consensus ADMM (Boyd et al. 2011, §8.2) for

    minimize  sum_i ||b_i - A_i x||^2 + lam ||x||_1

whose iteration on rank ``i`` is

    x_i = (2 A_i'A_i + rho I)^{-1} (2 A_i'b_i + rho (z - u_i))
    xbar, ubar = Allreduce-mean(x_i), Allreduce-mean(u_i)
    z = S_{lam/(rho P)}(xbar + ubar)
    u_i += x_i - z

The single fused ``MPI_Allreduce`` per iteration is exactly the call
that the paper finds contributes "more than 99% of the communication
time"; its cost is charged to each rank's virtual clock through the
alpha-beta model, while the local factorizations and solves charge
modeled KNL compute time.

Setting ``lam = 0`` yields distributed OLS, just as in the paper's
model-estimation stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.linalg.soft_threshold import soft_threshold
from repro.perf.flops import (
    charge_cholesky,
    charge_gemm,
    charge_gemv,
    charge_sparse_solve,
    charge_trsv,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.reduce_ops import SUM
from repro.telemetry.recorder import count as _tcount, gauge as _tgauge

__all__ = ["ConsensusResult", "consensus_lasso_admm"]


@dataclass
class ConsensusResult:
    """Outcome of a distributed consensus-ADMM solve (identical on all ranks).

    Attributes
    ----------
    beta:
        ``(p,)`` consensus solution ``z`` (exactly sparse).
    iterations:
        ADMM iterations performed.
    converged:
        Whether the consensus primal/dual residuals met tolerance.
    primal_residual, dual_residual:
        Final residual norms.
    """

    beta: np.ndarray
    iterations: int
    converged: bool
    primal_residual: float
    dual_residual: float


def consensus_lasso_admm(
    comm: SimComm,
    A_local: np.ndarray,
    b_local: np.ndarray,
    lam: float,
    *,
    rho: float = 1.0,
    max_iter: int = 500,
    abstol: float = 1e-5,
    reltol: float = 1e-4,
    beta0: np.ndarray | None = None,
    adapt_rho: bool = False,
    adapt_tau: float = 2.0,
    adapt_mu: float = 10.0,
) -> ConsensusResult:
    """Solve the sample-split LASSO on ``comm``; every rank returns the result.

    Parameters
    ----------
    comm:
        Communicator whose ranks each hold a row block.
    A_local:
        This rank's ``(n_i, p)`` block of the design matrix — a dense
        ndarray, or a ``scipy.sparse`` matrix (the UoI_VAR lifted
        design ``I ⊗ X`` is ``1 - 1/p`` sparse; the paper uses
        Eigen-Sparse for it).  Sparse blocks are factorized with a
        sparse LU instead of a dense Cholesky.
    b_local:
        This rank's ``(n_i,)`` block of the response.
    lam:
        L1 penalty of the *global* objective (paper eq. 2 scaling).
        ``lam = 0`` gives distributed OLS.
    rho:
        ADMM penalty parameter.
    max_iter, abstol, reltol:
        Stopping configuration (Boyd §3.3 consensus criteria).
    beta0:
        Optional warm start for the consensus variable ``z``.
    adapt_rho, adapt_tau, adapt_mu:
        Residual balancing (Boyd §3.4.1).  The decision is driven by
        the globally reduced residual norms, so every rank adapts
        identically without extra communication; each adaptation
        triggers a local refactorization (see
        ``benchmarks/bench_ablation_rho.py`` for the trade-off).

    Notes
    -----
    ``p`` (the feature count) must agree across ranks; the row counts
    ``n_i`` may differ.  All collective calls must be reached by every
    rank — convergence is therefore decided on the (identical)
    consensus quantities so no rank exits early.
    """
    sparse_input = scipy.sparse.issparse(A_local)
    if sparse_input:
        A = scipy.sparse.csr_matrix(A_local, dtype=float)
    else:
        A = np.ascontiguousarray(A_local, dtype=float)
    b = np.ascontiguousarray(b_local, dtype=float)
    if A.ndim != 2:
        raise ValueError(f"A_local must be 2-D, got shape {A.shape}")
    n_i, p = A.shape
    if b.shape != (n_i,):
        raise ValueError(f"b_local shape {b.shape} incompatible with A {A.shape}")
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    if rho <= 0:
        raise ValueError(f"rho must be > 0, got {rho}")
    P = comm.size
    clock, machine = comm.clock, comm.machine

    if adapt_tau <= 1.0 or adapt_mu <= 1.0:
        raise ValueError(
            f"adapt_tau and adapt_mu must be > 1, got {adapt_tau}, {adapt_mu}"
        )

    # Local factorization of (2 A'A + rho I): once per solve, reused
    # every iteration — the paper's cached-factorization optimization.
    # Residual balancing invalidates it, so the Gram base is kept and
    # the factorization rebuilt on each rho change.
    if sparse_input:
        gram_base = (2.0 * (A.T @ A)).tocsc()
        eye = scipy.sparse.identity(p, format="csc")
        Atb2 = 2.0 * (A.T @ b)
        charge_sparse_solve(clock, machine, A.nnz, p)  # A'A
        charge_sparse_solve(clock, machine, A.nnz)  # A'b
        solve_nnz = gram_base.nnz + p

        def make_solver(rho_val):
            charge_sparse_solve(clock, machine, solve_nnz, p)  # factorization
            return scipy.sparse.linalg.splu(gram_base + rho_val * eye).solve
    else:
        gram_base = 2.0 * (A.T @ A)
        Atb2 = 2.0 * (A.T @ b)
        charge_gemm(clock, machine, p, p, n_i)  # A'A
        charge_gemv(clock, machine, p, n_i)  # A'b
        solve_nnz = 0

        def make_solver(rho_val):
            charge_cholesky(clock, machine, p)
            gram = gram_base.copy()
            gram[np.diag_indices_from(gram)] += rho_val
            chol = scipy.linalg.cho_factor(gram, lower=True)
            return lambda q: scipy.linalg.cho_solve(chol, q)

    solve_normal = make_solver(rho)

    z = np.zeros(p) if beta0 is None else np.asarray(beta0, dtype=float).copy()
    if z.shape != (p,):
        raise ValueError(f"beta0 shape {z.shape} != ({p},)")
    u = np.zeros(p)
    sqrtp = np.sqrt(p)

    converged = False
    r_norm = s_norm = np.inf
    it = 0
    for it in range(1, max_iter + 1):
        x = solve_normal(Atb2 + rho * (z - u))
        if sparse_input:
            charge_sparse_solve(clock, machine, solve_nnz)
        else:
            charge_trsv(clock, machine, p)
            charge_trsv(clock, machine, p)

        # One fused Allreduce carries the consensus sums plus the
        # residual statistics (sum x_i, sum u_i, sum ||x_i - z||^2,
        # sum ||x_i||^2, sum ||u_i||^2) — the call the paper's
        # communication bar is made of.
        xz_sq = float(np.dot(x - z, x - z))
        x_sq = float(np.dot(x, x))
        u_sq = float(np.dot(u, u))
        packed = np.concatenate([x, u, [xz_sq, x_sq, u_sq]])
        summed = comm.allreduce(packed, SUM)
        xbar = summed[:p] / P
        ubar = summed[p : 2 * p] / P
        sum_xz_sq, sum_x_sq, sum_u_sq = summed[2 * p :]

        z_old = z
        z = soft_threshold(xbar + ubar, lam / (rho * P))
        u = u + x - z

        # Consensus residuals (Boyd §7.1.1): r^2 = sum_i ||x_i - z||^2
        # uses last iteration's z; recompute the z part locally.
        r_norm = float(np.sqrt(max(sum_xz_sq, 0.0)))
        s_norm = float(rho * np.sqrt(P) * np.linalg.norm(z - z_old))
        eps_pri = sqrtp * np.sqrt(P) * abstol + reltol * max(
            np.sqrt(sum_x_sq), np.sqrt(P) * float(np.linalg.norm(z))
        )
        eps_dual = sqrtp * np.sqrt(P) * abstol + reltol * rho * np.sqrt(sum_u_sq)
        if r_norm < eps_pri and s_norm < eps_dual:
            converged = True
            break

        if adapt_rho:
            # Globally reduced residuals -> identical decision on every
            # rank, no extra collective needed.
            if r_norm > adapt_mu * s_norm:
                rho *= adapt_tau
                u /= adapt_tau
                solve_normal = make_solver(rho)
            elif s_norm > adapt_mu * r_norm:
                rho /= adapt_tau
                u *= adapt_tau
                solve_normal = make_solver(rho)

    # One soft-threshold and one fused allreduce per iteration (the
    # call the paper's communication bar is made of); no-ops unless a
    # telemetry recorder is installed on this rank.
    _tcount("consensus.solves")
    _tcount("consensus.iterations", it)
    _tcount("consensus.soft_thresholds", it)
    _tcount("consensus.allreduces", it)
    if converged:
        _tcount("consensus.converged")
    _tgauge("consensus.primal_residual", r_norm)
    _tgauge("consensus.dual_residual", s_norm)

    return ConsensusResult(
        beta=z,
        iterations=it,
        converged=converged,
        primal_residual=r_norm,
        dual_residual=s_norm,
    )
