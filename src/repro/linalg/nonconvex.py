"""Non-convex penalized regression baselines: MCP and SCAD.

The paper motivates UoI partly by contrast with non-convex penalties
(MCP, SCAD): they reduce LASSO's bias but "are extremely challenging
for implementation in the multi-nodal distributed computing paradigm"
(citing HONOR).  We implement them serially as statistical baselines
via coordinate descent with the closed-form univariate thresholds from
:mod:`repro.linalg.soft_threshold`, which is the standard algorithm
(Breheny & Huang 2011).

Objectives (matching the paper's un-halved quadratic, eq. 2):

    ||y - X b||^2 + 2 * sum_j P(b_j; lam, gamma)

where ``P`` is the MCP or SCAD penalty.  The factor 2 keeps the
per-coordinate subproblem in the canonical ``0.5 (b - x)^2 + P`` form
after dividing by the column norm.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.soft_threshold import mcp_threshold, scad_threshold

__all__ = ["mcp_regression", "scad_regression"]


def _ncvx_cd(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    threshold,
    shape_param: float,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    X = np.ascontiguousarray(X, dtype=float)
    y = np.ascontiguousarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    n, p = X.shape
    if y.shape != (n,):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")

    col_sq = np.einsum("ij,ij->j", X, X)
    beta = np.zeros(p)
    resid = y.copy()
    for _ in range(max_iter):
        max_delta = 0.0
        for j in range(p):
            if col_sq[j] == 0.0:
                continue
            old = beta[j]
            # Unpenalized univariate minimizer, then apply the
            # non-convex threshold scaled to the column norm.
            zj = (X[:, j] @ resid + col_sq[j] * old) / col_sq[j]
            new = float(threshold(zj, lam / col_sq[j], shape_param))
            if new != old:
                resid += X[:, j] * (old - new)
                beta[j] = new
                max_delta = max(max_delta, abs(new - old))
        if max_delta < tol:
            break
    return beta


def mcp_regression(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    *,
    gamma: float = 3.0,
    max_iter: int = 2000,
    tol: float = 1e-9,
) -> np.ndarray:
    """MCP-penalized regression by coordinate descent.

    Parameters
    ----------
    X, y:
        Design matrix ``(n, p)`` and response ``(n,)``.
    lam:
        Penalty level.
    gamma:
        MCP concavity parameter (> 1); larger is closer to LASSO.
    """
    return _ncvx_cd(X, y, lam, mcp_threshold, gamma, max_iter, tol)


def scad_regression(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    *,
    a: float = 3.7,
    max_iter: int = 2000,
    tol: float = 1e-9,
) -> np.ndarray:
    """SCAD-penalized regression by coordinate descent.

    Parameters
    ----------
    X, y:
        Design matrix ``(n, p)`` and response ``(n,)``.
    lam:
        Penalty level.
    a:
        SCAD shape parameter (> 2); Fan & Li recommend 3.7.
    """
    return _ncvx_cd(X, y, lam, scad_threshold, a, max_iter, tol)
