"""Ridge regression baseline.

The UoI papers benchmark feature estimation against Ridge (low
variance, but biased and never sparse).  Included here for the
statistical-comparison benchmarks.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["ridge"]


def ridge(X: np.ndarray, y: np.ndarray, lam: float) -> np.ndarray:
    """Solve ``argmin_b ||y - Xb||^2 + lam ||b||^2``.

    Normal equations ``(X'X + (lam/2)*2 ... )``: differentiating gives
    ``(2 X'X + 2 lam I) b = 2 X' y``, i.e. ``(X'X + lam I) b = X' y``.

    Parameters
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response.
    lam:
        Penalty, must be > 0 (use :func:`repro.linalg.ols` for 0).
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} incompatible with X {X.shape}")
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    p = X.shape[1]
    gram = X.T @ X
    gram[np.diag_indices_from(gram)] += lam
    return scipy.linalg.solve(gram, X.T @ y, assume_a="pos")
