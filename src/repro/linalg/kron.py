"""``vec`` / ``I ⊗ X`` machinery for the VAR-to-LASSO rearrangement.

The paper's eq. (9) rewrites the multivariate least-squares problem
``Y = X B + E`` as a single univariate-response problem

    vec Y = (I ⊗ X) vec B + vec E

where ``vec`` stacks columns.  The lifted design ``I_p ⊗ X`` is block
diagonal with ``p`` copies of ``X`` — this is the "problem-size
explosion" (≈ p³) that motivates the paper's distributed Kronecker
product: an ``(N-d) x (d p)`` data matrix becomes a
``p(N-d) x d p^2`` lifted design.

Three representations are provided:

* :func:`identity_kron` — explicit materialization (dense or
  ``scipy.sparse``), faithful to the paper's implementation, used by
  the distributed-Kronecker code path and the sparsity analysis
  (sparsity of the lifted design is ``1 - 1/p`` for dense input).
* :class:`IdentityKronOperator` — a lazy LinearOperator-style object
  computing ``(I ⊗ X) v`` and ``(I ⊗ X)' v`` without materialization.
* :func:`kron_lasso_columnwise` — the algebraic observation that the
  LASSO on ``(I ⊗ X)`` separates into ``p`` independent column
  problems; this is the "communication-avoiding" alternative the
  paper's discussion hints at, and an ablation benchmark compares the
  two.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse

__all__ = [
    "vec",
    "unvec",
    "identity_kron",
    "kron_sparsity",
    "IdentityKronOperator",
    "kron_lasso_columnwise",
]


def _as_float(a: np.ndarray) -> np.ndarray:
    """Float array preserving single precision.

    float32 stays float32 (the lifted design is ≈ p³ the data size, so
    halving its memory matters at paper scale); everything else
    normalizes to float64.  Every entry point in this module funnels
    through this, so the dtype a caller hands in is the dtype the
    whole ``I ⊗ X`` pipeline computes in — previously float32 input
    was silently upcast by ``dtype=float`` coercions and the float64
    default of ``np.eye``, doubling memory mid-pipeline.
    """
    a = np.asarray(a)
    if a.dtype == np.float32:
        return a
    return np.asarray(a, dtype=np.float64)


def vec(Y: np.ndarray) -> np.ndarray:
    """Column-stacking vectorization: ``vec(Y)[i + m*j] = Y[i, j]``."""
    Y = np.asarray(Y)
    if Y.ndim != 2:
        raise ValueError(f"vec expects a 2-D matrix, got shape {Y.shape}")
    return Y.reshape(-1, order="F").copy()


def unvec(v: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`vec`: reshape a stacked vector back to ``shape``."""
    v = np.asarray(v)
    m, p = shape
    if v.shape != (m * p,):
        raise ValueError(f"unvec: vector length {v.shape} != {m}*{p}")
    return v.reshape((m, p), order="F").copy()


def identity_kron(X: np.ndarray, p: int, *, sparse: bool = True):
    """Materialize ``I_p ⊗ X`` (the paper's lifted design).

    Parameters
    ----------
    X:
        ``(m, k)`` block to repeat on the diagonal.
    p:
        Number of diagonal blocks (the VAR dimension).
    sparse:
        Return ``scipy.sparse.csr_matrix`` (default, matching the
        paper's Eigen-Sparse implementation) or a dense ndarray.
    """
    X = _as_float(X)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if sparse:
        return scipy.sparse.block_diag([scipy.sparse.csr_matrix(X)] * p, format="csr")
    return np.kron(np.eye(p, dtype=X.dtype), X)


def kron_sparsity(p: int) -> float:
    """Sparsity of ``I_p ⊗ X`` for a dense ``X``: ``1 - 1/p`` (paper §IV-B)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return 1.0 - 1.0 / p


class IdentityKronOperator:
    """Lazy ``I_p ⊗ X`` supporting matvec / rmatvec without materialization.

    For ``v`` of length ``p*k`` arranged as ``vec(B)`` with ``B`` of
    shape ``(k, p)``, ``(I ⊗ X) v = vec(X @ B)``.
    """

    def __init__(self, X: np.ndarray, p: int) -> None:
        X = _as_float(X)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.X = X
        self.p = int(p)
        m, k = X.shape
        self.shape = (m * p, k * p)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Compute ``(I ⊗ X) v`` (in ``X``'s dtype)."""
        v = np.asarray(v, dtype=self.X.dtype)
        if v.shape != (self.shape[1],):
            raise ValueError(f"matvec: length {v.shape} != {self.shape[1]}")
        B = unvec(v, (self.X.shape[1], self.p))
        return vec(self.X @ B)

    def rmatvec(self, w: np.ndarray) -> np.ndarray:
        """Compute ``(I ⊗ X)' w`` (in ``X``'s dtype)."""
        w = np.asarray(w, dtype=self.X.dtype)
        if w.shape != (self.shape[0],):
            raise ValueError(f"rmatvec: length {w.shape} != {self.shape[0]}")
        W = unvec(w, (self.X.shape[0], self.p))
        return vec(self.X.T @ W)

    def toarray(self) -> np.ndarray:
        """Dense materialization (for tests on tiny problems)."""
        return identity_kron(self.X, self.p, sparse=False)


def kron_lasso_columnwise(
    X: np.ndarray,
    Y: np.ndarray,
    lam: float,
    solver: Callable[[np.ndarray, np.ndarray, float], np.ndarray],
) -> np.ndarray:
    """Solve the LASSO on ``(I ⊗ X, vec Y)`` column by column.

    Because ``I_p ⊗ X`` is block diagonal and the L1 penalty is
    separable, the big LASSO decomposes exactly into ``p`` independent
    problems ``min_b ||Y[:, j] - X b||^2 + lam ||b||_1``.

    Parameters
    ----------
    X:
        ``(m, k)`` common design block.
    Y:
        ``(m, p)`` multivariate response.
    lam:
        Penalty level shared by all columns.
    solver:
        Any ``solver(X, y, lam) -> beta`` (e.g.
        :func:`repro.linalg.lasso_admm` or
        :func:`repro.linalg.lasso_cd`).

    Returns
    -------
    numpy.ndarray
        ``vec B`` of length ``k * p``, identical (in exact arithmetic)
        to solving the materialized lifted problem.
    """
    X = _as_float(X)
    Y = _as_float(Y)
    if X.dtype != Y.dtype:
        # One float32 operand would silently upcast the whole solve.
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
    if Y.ndim != 2 or Y.shape[0] != X.shape[0]:
        raise ValueError(f"Y shape {Y.shape} incompatible with X {X.shape}")
    cols = [
        np.asarray(solver(X, Y[:, j], lam), dtype=X.dtype)
        for j in range(Y.shape[1])
    ]
    return np.concatenate(cols)
