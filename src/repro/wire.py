"""Shared line-JSON wire helpers: ndarray codec, blobs, typed errors.

Both socket protocols in this repo — the service front end
(:mod:`repro.service.server`) and the elastic worker transport
(:mod:`repro.engine.elastic`) — speak one-JSON-object-per-line frames.
This module is their single codec so the two can never drift:

* :func:`encode_array` / :func:`decode_array` — ndarrays cross the
  wire as ``{"__ndarray__": <base64 raw bytes>, "dtype", "shape"}``;
  raw-byte base64 means the round trip is **bitwise** (the transport
  never rounds through text floats, which is what keeps service and
  elastic-backend results bit-identical to direct fits).
* :func:`encode_arrays` / :func:`decode_arrays` — ``{name: array}``
  tables (result payloads), and :func:`encode_payload_table` /
  :func:`decode_payload_table` for the engine's nested
  ``{subproblem key: {name: array}}`` recovered/partial tables.
* :func:`encode_blob` / :func:`decode_blob` — base64-pickle escape
  hatch for Python objects with no JSON shape (engine plans crossing
  to elastic workers, exception objects carried back).  Only ever
  exchanged between processes of one trusted local run.
* Typed error mapping — :func:`error_to_wire` turns an exception into
  the canonical ``{"ok": false, "error": <type name>, "message"}``
  frame and :func:`raise_from_wire` re-raises it on the client side
  through an explicit name→class map (:func:`error_map`).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import Any, Mapping, NoReturn

import numpy as np

__all__ = [
    "encode_array",
    "decode_array",
    "encode_arrays",
    "decode_arrays",
    "encode_payload_table",
    "decode_payload_table",
    "encode_blob",
    "decode_blob",
    "error_map",
    "error_to_wire",
    "raise_from_wire",
    "LineChannel",
]


# ---------------------------------------------------------------------------
# ndarray codec
# ---------------------------------------------------------------------------
def encode_array(arr: np.ndarray) -> dict:
    """ndarray -> JSON-safe dict (base64 raw bytes: bitwise round-trip)."""
    # NOT ascontiguousarray: it promotes 0-d arrays to 1-d, and
    # tobytes() already emits C order for any layout.
    arr = np.asarray(arr)
    return {
        "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }


def decode_array(obj: Mapping[str, Any]) -> np.ndarray:
    buf = base64.b64decode(obj["__ndarray__"])
    arr = np.frombuffer(buf, dtype=np.dtype(obj["dtype"]))
    return arr.reshape(tuple(obj["shape"])).copy()


def encode_arrays(arrays: Mapping[str, np.ndarray]) -> dict:
    """``{name: array}`` -> JSON-safe dict of encoded arrays."""
    return {name: encode_array(np.asarray(a)) for name, a in arrays.items()}


def decode_arrays(obj: Mapping[str, Mapping[str, Any]]) -> dict[str, np.ndarray]:
    return {name: decode_array(enc) for name, enc in obj.items()}


def encode_payload_table(
    table: Mapping[str, Mapping[str, np.ndarray]],
) -> dict:
    """Nested ``{subproblem key: {name: array}}`` table -> JSON-safe."""
    return {key: encode_arrays(payload) for key, payload in table.items()}


def decode_payload_table(
    obj: Mapping[str, Mapping[str, Mapping[str, Any]]],
) -> dict[str, dict[str, np.ndarray]]:
    return {key: decode_arrays(payload) for key, payload in obj.items()}


# ---------------------------------------------------------------------------
# pickle blobs (plans, exceptions)
# ---------------------------------------------------------------------------
def encode_blob(obj: object) -> str:
    """Arbitrary Python object -> base64 pickle string.

    For trusted same-run process pairs only (coordinator ↔ spawned
    worker); never applied to frames from outside the run.
    """
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_blob(data: str) -> Any:
    return pickle.loads(base64.b64decode(data))


# ---------------------------------------------------------------------------
# typed errors
# ---------------------------------------------------------------------------
#: Error names every wire peer understands without registration.
_DEFAULT_ERRORS: dict[str, type[Exception]] = {
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
}


def error_map(*extra: type[Exception]) -> dict[str, type[Exception]]:
    """Name -> class map for :func:`raise_from_wire`.

    Starts from the defaults (``TimeoutError``, ``RuntimeError`` — the
    latter doubling as the fallback) and adds each ``extra`` class
    under its ``__name__``.
    """
    errors = dict(_DEFAULT_ERRORS)
    errors.update({exc_type.__name__: exc_type for exc_type in extra})
    return errors


def error_to_wire(exc: BaseException) -> dict:
    """Exception -> canonical ``{"ok": false, ...}`` error frame."""
    return {"ok": False, "error": type(exc).__name__, "message": str(exc)}


def raise_from_wire(
    response: Mapping[str, Any],
    errors: Mapping[str, type[Exception]] | None = None,
) -> NoReturn:
    """Re-raise a wire error frame as a typed exception.

    The frame's ``error`` name is looked up in ``errors`` (default:
    the built-in map); unknown names degrade to ``RuntimeError`` so a
    newer server never crashes an older client with a ``KeyError``.
    """
    table = _DEFAULT_ERRORS if errors is None else errors
    exc_type = table.get(str(response.get("error", "")), RuntimeError)
    raise exc_type(str(response.get("message", "wire error")))


# ---------------------------------------------------------------------------
# line-JSON channel
# ---------------------------------------------------------------------------
class LineChannel:
    """One-JSON-object-per-line framing over a connected socket.

    Used by the elastic worker protocol on both ends; reads and writes
    are independently locked-free (the caller serializes writes if it
    shares a channel across threads).  ``recv`` returns ``None`` at
    EOF — a peer departure, not an error.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("r", encoding="utf-8")
        self._wfile = sock.makefile("w", encoding="utf-8")

    def send(self, obj: Mapping[str, Any]) -> None:
        try:
            self._wfile.write(json.dumps(obj) + "\n")
            self._wfile.flush()
        except ValueError as exc:
            # io raises ValueError("write to closed file") when another
            # thread closed the channel mid-send; surface it as the
            # connection error it is so peers handle one shape.
            raise BrokenPipeError(str(exc)) from exc

    def recv(self) -> dict | None:
        while True:
            line = self._rfile.readline()
            if not line:
                return None
            if line.strip():
                return json.loads(line)

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - already closed
                pass
