"""Table I — performance-analysis setup.

The paper's Table I pairs every data/problem size with the core counts
used for single-node, weak-scaling and strong-scaling runs of both
algorithms.  We regenerate the pairings from the Table-I scaling rules
(cores double with size; UoI_LASSO uses twice UoI_VAR's count) and
attach the derived workload shapes (rows per core, VAR feature counts)
our models use.
"""

from __future__ import annotations

from repro.datasets.regression import rows_for_gigabytes
from repro.datasets.var_synthetic import features_for_gigabytes
from repro.experiments.base import ExperimentResult
from repro.perf.scaling import (
    WEAK_SCALING_GB,
    lasso_weak_scaling_cores,
    var_weak_scaling_cores,
)

__all__ = ["run", "LASSO_STRONG_CORES", "VAR_STRONG_CORES"]

#: Strong-scaling core sweeps (Table I, 1 TB problem).
LASSO_STRONG_CORES = [17408, 34816, 69632, 139264]
VAR_STRONG_CORES = [4352, 8704, 17408, 34816]

#: Paper's Table I weak-scaling rows for checking our generators.
PAPER_TABLE1_LASSO = {128: 4352, 256: 8704, 512: 17408, 1024: 34816,
                      2048: 69632, 4096: 139264, 8192: 278528}
PAPER_TABLE1_VAR = {128: 2176, 256: 4352, 512: 8704, 1024: 17408,
                    2048: 34816, 4096: 69632, 8192: 139264}


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Table I.  ``fast`` has no effect (pure arithmetic)."""
    lines = [
        f"{'analysis':<13}{'size (GB)':>10}{'UoI_LASSO cores':>17}"
        f"{'UoI_VAR cores':>15}{'rows/core (LASSO)':>19}{'VAR features':>14}"
    ]
    lines.append("-" * len(lines[0]))
    lines.append(f"{'single node':<13}{16:>10}{68:>17}{68:>15}"
                 f"{rows_for_gigabytes(16) // 68:>19}{features_for_gigabytes(16):>14}")
    rows = {}
    for gb in WEAK_SCALING_GB:
        lc = lasso_weak_scaling_cores(gb)
        vc = var_weak_scaling_cores(gb)
        rows[gb] = (lc, vc)
        lines.append(
            f"{'weak':<13}{gb:>10}{lc:>17}{vc:>15}"
            f"{rows_for_gigabytes(gb) // lc:>19}{features_for_gigabytes(gb):>14}"
        )
    for lc, vc in zip(LASSO_STRONG_CORES, VAR_STRONG_CORES):
        lines.append(f"{'strong (1TB)':<13}{1024:>10}{lc:>17}{vc:>15}"
                     f"{rows_for_gigabytes(1024) // lc:>19}{features_for_gigabytes(1024):>14}")
    return ExperimentResult(
        name="table1",
        title="Performance-analysis setup (data sizes vs core counts)",
        report="\n".join(lines),
        data={
            "weak": rows,
            "paper_lasso": PAPER_TABLE1_LASSO,
            "paper_var": PAPER_TABLE1_VAR,
            "lasso_strong": LASSO_STRONG_CORES,
            "var_strong": VAR_STRONG_CORES,
        },
        paper_reference=(
            "Table I: weak scaling 128GB->4,352 ... 8TB->278,528 cores "
            "(UoI_LASSO), half that for UoI_VAR; strong scaling at 1TB."
        ),
    )
