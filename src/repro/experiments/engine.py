"""Engine demo — one UoI plan, every backend, bitwise-identical bits.

The execution engine's headline invariant is that a
:class:`~repro.engine.plan.UoIPlan` is a pure description of the
computation, so *which* backend runs it cannot change the answer.
This driver makes that claim observable: it fits the same small
UoI_LASSO and UoI_VAR problems on every registered backend
(:data:`repro.engine.BACKENDS`) and reports, per backend, the
subproblem count and whether the coefficients, supports, and loss
tables match the serial reference **bitwise** — together with the
plan's dry-run enumeration (what ``repro engine`` prints).

The multiprocess backend is exercised with 2 workers and the
simulated-MPI backend with 2 standalone ranks, so the demo stays
laptop-fast while still crossing a process and a (simulated) network
boundary.
"""

from __future__ import annotations

import numpy as np

from repro.core import UoILasso, UoIVar
from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.datasets import make_sparse_regression, make_sparse_var
from repro.engine import BACKENDS, make_executor
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def _backend_kwargs(name: str) -> dict:
    if name == "multiprocess":
        return {"max_workers": 2}
    if name == "simmpi":
        return {"nranks": 2}
    return {}


def _fit_lasso(dataset, config, executor):
    model = UoILasso(config).fit(dataset.X, dataset.y, executor=executor)
    return model.coef_, model.supports_, model.losses_


def _fit_var(dataset, config, executor):
    model = UoIVar(config).fit(dataset.series, executor=executor)
    return model.vec_coef_, model.supports_, model.losses_


def run(fast: bool = True) -> ExperimentResult:
    """Cross-backend equivalence demo; ``fast`` shrinks the problem."""
    scale = 1 if fast else 2
    rng = np.random.default_rng(23)
    lasso_data = make_sparse_regression(
        64 * scale, 12, n_informative=3, snr=12.0, rng=rng
    )
    lasso_cfg = UoILassoConfig(
        n_lambdas=5,
        n_selection_bootstraps=3 * scale,
        n_estimation_bootstraps=2 * scale,
        random_state=4,
    )
    var_data = make_sparse_var(4, 50 * scale, rng=rng)
    var_cfg = UoIVarConfig(order=1, lasso=UoILassoConfig(
        n_lambdas=4,
        n_selection_bootstraps=2 * scale,
        n_estimation_bootstraps=2 * scale,
        random_state=8,
    ))

    cases = [
        ("uoi_lasso", _fit_lasso, lasso_data, lasso_cfg),
        ("uoi_var", _fit_var, var_data, var_cfg),
    ]

    lines = ["cross-backend equivalence (vs serial reference)", ""]
    data: dict = {"backends": sorted(BACKENDS), "matches": {}}
    all_match = True
    for kind, fit, dataset, config in cases:
        reference = fit(dataset, config, make_executor("serial"))
        lines.append(f"{kind}:")
        for name in sorted(BACKENDS):
            got = fit(dataset, config, make_executor(name, **_backend_kwargs(name)))
            match = all(
                np.array_equal(a, b) for a, b in zip(reference, got)
            )
            all_match &= match
            data["matches"][f"{kind}/{name}"] = match
            lines.append(
                f"  {name:<13} coef/supports/losses "
                f"{'bitwise identical' if match else 'MISMATCH'}"
            )
        lines.append("")

    data["all_bitwise_identical"] = all_match
    return ExperimentResult(
        name="engine",
        title="pluggable execution backends, one set of bits",
        report="\n".join(lines).rstrip(),
        data=data,
        paper_reference=(
            "§IV: one Map-Solve-Reduce structure behind UoI_LASSO and "
            "UoI_VAR; the engine makes the mapping layer swappable "
            "without touching the numerics."
        ),
    )
