"""Fig. 7 — UoI_VAR single-node runtime breakdown + sparse roofline.

≈16 GB lifted problem on one KNL node, B1 = B2 = 5, q = 8.  The
paper's shape: computation contributes 88% of the runtime; the
distributed Kronecker + vectorization calls constitute >98% of the
distribution bar; sparse kernel rates are 1.08 GFLOPS (spMM, AI 0.15)
and 2.08 GFLOPS (spMV, AI 0.33).  Section IV-B also gives the lifted
design's sparsity law ``1 - 1/p`` ("a data set with 95 features ...
sparsity of 98.94%"), which we verify by construction.
"""

from __future__ import annotations

from repro.experiments._functional import mini_uoi_var_run
from repro.experiments.base import ExperimentResult
from repro.linalg.kron import kron_sparsity
from repro.perf.plots import stacked_bars
from repro.perf.report import format_breakdown_table
from repro.perf.roofline import classify, paper_kernel_points
from repro.perf.scaling import UoiVarScalingParams, uoi_var_model

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 7 (modeled breakdown + sparsity + functional check)."""
    params = UoiVarScalingParams(problem_gb=16, cores=68, b1=5, b2=5, q=8)
    row = uoi_var_model(params)
    comp_share = row.get("computation") / row.total
    lines = [
        format_breakdown_table([row], title="UoI_VAR single node, 16GB, B1=B2=5, q=8 (model)")
    ]
    lines.append(stacked_bars([row]))
    lines.append(f"computation share: {comp_share:.1%} (paper: 88%)")

    lines.append("")
    lines.append(f"{'kernel':<22}{'GFLOPS':>9}{'AI':>7}{'bound':>15}")
    roofline = {}
    for pt in paper_kernel_points():
        if not pt.kernel.startswith("uoi_var"):
            continue
        verdict = classify(pt)
        roofline[pt.kernel] = verdict
        lines.append(f"{pt.kernel:<22}{pt.gflops:>9.2f}{pt.intensity:>7.2f}{verdict:>15}")

    sparsity_95 = kron_sparsity(95)
    lines.append("")
    lines.append(
        f"lifted-design sparsity for p=95: {sparsity_95:.4%} (paper: 98.94%)"
    )

    func = mini_uoi_var_run(nranks=4 if fast else 6)
    fb = func["breakdown"]
    total = sum(fb.values())
    lines.append(
        "functional mini-run (4 ranks, real distributed Kronecker): "
        + ", ".join(f"{k} {v / total:.1%}" for k, v in fb.items())
    )

    return ExperimentResult(
        name="fig7",
        title="UoI_VAR single-node runtime breakdown",
        report="\n".join(lines),
        data={
            "model": row.seconds,
            "computation_share": comp_share,
            "sparsity_95": sparsity_95,
            "roofline": roofline,
            "functional": fb,
        },
        paper_reference=(
            "Fig. 7: computation 88% of runtime; Kronecker+vectorization "
            ">98% of distribution; sparsity(95 features) = 98.94%; sparse "
            "gemm 1.08 GFLOPS @ AI 0.15, sparse gemv 2.08 @ 0.33."
        ),
    )
