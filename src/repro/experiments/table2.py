"""Table II — randomized vs conventional data distribution.

Two halves:

* **Paper scale (analytic)** — the Lustre cost model evaluated at
  Table II's exact sizes and Table I's core counts: conventional
  read/distribute vs randomized (Tier-1 parallel read + Tier-2
  one-sided shuffle).  The paper's headline — conventional read time
  explodes into hours while randomized stays under ~20 s — must
  reproduce.
* **Functional (small scale)** — both distributors actually run on the
  thread-based simulator with a small matrix, delivering *identical
  bytes* (asserted) while their modeled read/distribution clocks show
  the same ordering.
"""

from __future__ import annotations

import numpy as np

from repro.distribution import ConventionalDistributor, RandomizedDistributor
from repro.experiments.base import ExperimentResult
from repro.pfs import SimH5File, lustre
from repro.simmpi import CORI_KNL, LAPTOP, run_spmd
from repro.simmpi.clock import TimeCategory

__all__ = ["run", "PAPER_TABLE2"]

#: Paper Table II: size GB -> (conv read, conv distr, rand read, rand distr), seconds.
PAPER_TABLE2 = {
    16: (204.71, 1.276, 11.3191, 0.33),
    128: (1200.81, 17.596, 0.52, 5.718),
    256: (2204.52, 36.46, 1.46, 2.62),
    512: (5323.486, 74.274, 8.043, 3.64),
    1024: (11732.48, 158.016, 8.781, 3.774),
}

#: Core counts per Table I for each Table II size.
TABLE2_CORES = {16: 68, 128: 4352, 256: 8704, 512: 17408, 1024: 34816}


def _functional_comparison(nranks: int, seed: int) -> dict:
    """Run both distributors on real (small) data; verify equal delivery."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((64, 6))
    file = SimH5File("/table2.h5")
    file.create_dataset("data", data)
    boot = rng.integers(0, 64, size=64)

    def prog(comm):
        r = RandomizedDistributor(comm, file, "data")
        mine_r = r.sample(boot)
        r.close()
        rand_clock = comm.clock.snapshot()
        c = ConventionalDistributor(comm, file, "data")
        mine_c = c.sample(boot)
        return mine_r, mine_c, rand_clock, comm.clock.snapshot()

    res = run_spmd(nranks, prog, machine=LAPTOP)
    got_r = np.concatenate([v[0] for v in res.values])
    got_c = np.concatenate([v[1] for v in res.values])
    expected = data[boot]
    rand_io = max(v[2][TimeCategory.DATA_IO.value] for v in res.values)
    rand_dist = max(v[2][TimeCategory.DISTRIBUTION.value] for v in res.values)
    total_io = max(v[3][TimeCategory.DATA_IO.value] for v in res.values)
    total_dist = max(v[3][TimeCategory.DISTRIBUTION.value] for v in res.values)
    return {
        "randomized_correct": bool(np.allclose(got_r, expected)),
        "conventional_correct": bool(np.allclose(got_c, expected)),
        "randomized_io_s": rand_io,
        "randomized_dist_s": rand_dist,
        "conventional_io_s": total_io - rand_io,
        "conventional_dist_s": total_dist - rand_dist,
        "file_reopens": file.open_count,
    }


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Table II (modeled) + functional cross-check."""
    header = (
        f"{'GB':>6}{'cores':>8} | {'conv read':>12}{'conv dist':>11} | "
        f"{'rand read':>11}{'rand dist':>11} | {'paper conv read':>16}"
        f"{'paper rand read':>16}"
    )
    lines = [header, "-" * len(header)]
    model = {}
    for gb, cores in TABLE2_CORES.items():
        nbytes = gb * 1024**3
        conv_read = lustre.serial_chunked_read_time(CORI_KNL, nbytes)
        conv_dist = lustre.conventional_distribution_time(CORI_KNL, nbytes, cores)
        rand_read = lustre.parallel_read_time(CORI_KNL, nbytes, cores)
        rand_dist = lustre.randomized_shuffle_time(CORI_KNL, nbytes, cores)
        model[gb] = (conv_read, conv_dist, rand_read, rand_dist)
        paper = PAPER_TABLE2[gb]
        lines.append(
            f"{gb:>6}{cores:>8} | {conv_read:>12.1f}{conv_dist:>11.2f} | "
            f"{rand_read:>11.2f}{rand_dist:>11.2f} | {paper[0]:>16.1f}"
            f"{paper[2]:>16.2f}"
        )
    # Beyond-1TB claim: conventional read crosses 5 hours, randomized < 100 s.
    conv_2tb = lustre.serial_chunked_read_time(CORI_KNL, 2048 * 1024**3)
    rand_2tb = lustre.parallel_read_time(CORI_KNL, 2048 * 1024**3, 69632)
    lines.append(
        f"{'>1TB':>6}{'':>8} | {conv_2tb:>12.1f}{'':>11} | {rand_2tb:>11.2f}"
        f"{'':>11} | (paper: conv > 5 h, randomized < 100 s)"
    )

    functional = _functional_comparison(4 if fast else 8, seed=42)
    lines.append("")
    lines.append(
        "functional check (real data movement, small scale): "
        f"randomized delivered correct rows = {functional['randomized_correct']}, "
        f"conventional = {functional['conventional_correct']}; "
        f"modeled io+dist randomized {functional['randomized_io_s'] + functional['randomized_dist_s']:.2e}s "
        f"vs conventional {functional['conventional_io_s'] + functional['conventional_dist_s']:.2e}s"
    )

    return ExperimentResult(
        name="table2",
        title="Randomized vs conventional data distribution",
        report="\n".join(lines),
        data={"model": model, "paper": PAPER_TABLE2, "functional": functional},
        paper_reference=(
            "Table II: conventional read 204.7s (16GB) -> 11,732s (1TB), "
            "crossing 5h beyond 1TB; randomized read stays <= 11.3s with "
            "distribution 0.33-5.7s."
        ),
    )
