"""Fig. 8 — exploiting UoI_VAR's algorithmic parallelism.

Problem sizes 16–128 GB with ADMM cores doubling alongside,
B1 = B2 = 32, q = 16, over P_B x P_lambda grids.  The paper's key
observation: the distributed Kronecker product + vectorization runs
once per *bootstrap*, so shrinking P_B (growing P_lambda at fixed
cell count) increases the distribution time — "as the P_lambda
parallelism increases the Kronecker product and vectorization time
increases".  Computation continues to dominate at these sizes.
"""

from __future__ import annotations

from repro.experiments._functional import mini_uoi_var_run
from repro.experiments.base import ExperimentResult
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import UoiVarScalingParams, uoi_var_model

__all__ = ["run", "PAPER_GRIDS", "PAPER_SIZES"]

#: Grid shapes swept (P_B x P_lambda).
PAPER_GRIDS = [(8, 2), (4, 4), (2, 8)]
#: (GB, cores) pairs of the Fig.-8 sweep.
PAPER_SIZES = [(16, 2176), (32, 4352), (64, 8704), (128, 17408)]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 8 (modeled sweep + functional mini-run)."""
    rows = []
    dist = {}
    for gb, cores in PAPER_SIZES:
        for pb, plam in PAPER_GRIDS:
            row = uoi_var_model(
                UoiVarScalingParams(gb, cores, b1=32, b2=32, q=16, pb=pb, plam=plam)
            )
            rows.append(row)
            dist[(gb, pb, plam)] = row.get("distribution")
    lines = [format_breakdown_table(rows, title="UoI_VAR P_B x P_lambda sweep (model)")]

    monotone = all(
        dist[(gb, 8, 2)] <= dist[(gb, 4, 4)] <= dist[(gb, 2, 8)]
        for gb, _ in PAPER_SIZES
    )
    lines.append(
        f"distribution grows as P_lambda grows (P_B shrinks) at every size: {monotone}"
    )

    # Functional counterpart of the claim: at fixed cell count, the
    # P_B-parallel grid re-builds fewer lifted problems per cell than
    # the P_lambda-parallel one, so its distribution time is lower.
    pb_heavy = mini_uoi_var_run(nranks=4, n_readers=1, pb=2, plam=1, seed=8)
    plam_heavy = mini_uoi_var_run(nranks=4, n_readers=1, pb=1, plam=2, seed=8)
    d_pb = pb_heavy["breakdown"]["distribution"]
    d_plam = plam_heavy["breakdown"]["distribution"]
    lines.append(
        f"functional grids (4 ranks): distribution 2x1 = {d_pb:.3e}s vs "
        f"1x2 = {d_plam:.3e}s (P_lambda-parallel rebuilds more problems)"
    )

    return ExperimentResult(
        name="fig8",
        title="UoI_VAR algorithmic parallelism",
        report="\n".join(lines),
        data={
            "distribution": dist,
            "monotone_in_plam": monotone,
            "functional_distribution": {"pb": d_pb, "plam": d_plam},
        },
        paper_reference=(
            "Fig. 8: B1=B2=32, q=16; computation dominates; the "
            "Kronecker+vectorization (distribution) time increases as "
            "P_lambda parallelism increases / P_B decreases."
        ),
    )
