"""§VI — real-data runtime analyses (470-company S&P; 192-electrode neuro).

Two runtime anchors the paper reports:

* **Finance**: all 470 companies on the index 2013–2016, 195 weekly
  first-difference samples, ≈ 80 GB lifted problem on 2,176 cores —
  computation 376.87 s, communication 4.74 s, Kronecker +
  vectorization 16.409 s.
* **Neuroscience**: 192 electrodes x 51,111 samples (M1 + S1 spikes),
  ≈ 1.3 TB lifted problem on 81,600 cores — computation 96.9 s,
  communication 1,598.72 s, distribution 3,034.4 s.

The analytic model regenerates both rows (the Kronecker power law and
the congestion factor are *calibrated* on these two points — see
:mod:`repro.perf.scaling` — so distribution and neuro communication
match closely by construction; computation comes from the independent
sparse-streaming model).  A functional mini-run fits shrunken versions
of both datasets end-to-end so the full inference path is exercised on
data with the right statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core import UoILassoConfig, UoIVar, UoIVarConfig
from repro.datasets.finance import first_differences, make_stock_panel, weekly_closes
from repro.datasets.neuro import make_spike_counts
from repro.experiments.base import ExperimentResult
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import UoiVarScalingParams, uoi_var_model

__all__ = ["run", "PAPER_FINANCE", "PAPER_NEURO"]

#: Paper §VI measurements: (computation, communication, distribution) seconds.
PAPER_FINANCE = (376.87, 4.74, 16.409)
PAPER_NEURO = (96.9, 1598.72, 3034.4)


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate the §VI runtime rows + functional end-to-end fits."""
    fin = uoi_var_model(
        UoiVarScalingParams(
            problem_gb=80, cores=2176, n_features=470,
            b1=40, b2=5, q=8, sel_iters=15, est_iters=15,
        )
    )
    fin.label = "S&P-470/80GB/2176cores"
    neuro = uoi_var_model(
        UoiVarScalingParams(problem_gb=1331, cores=81600, n_features=192)
    )
    neuro.label = "neuro-192/1.3TB/81600cores"
    lines = [format_breakdown_table([fin, neuro], title="§VI runtimes (model)")]
    lines.append(
        f"paper finance: comp {PAPER_FINANCE[0]}, comm {PAPER_FINANCE[1]}, "
        f"kron {PAPER_FINANCE[2]} s"
    )
    lines.append(
        f"paper neuro:   comp {PAPER_NEURO[0]}, comm {PAPER_NEURO[1]}, "
        f"dist {PAPER_NEURO[2]} s"
    )

    # Functional end-to-end inference on shrunken analogs.
    rng = np.random.default_rng(21)
    n_co = 24 if fast else 60
    panel = make_stock_panel(n_co, 504, rng=rng)
    diffs = first_differences(weekly_closes(panel.prices))
    cfg = UoIVarConfig(
        order=1,
        lasso=UoILassoConfig(
            n_lambdas=8, n_selection_bootstraps=8, n_estimation_bootstraps=3,
            solver="cd", random_state=1,
        ),
    )
    fin_model = UoIVar(cfg).fit(diffs)
    fin_summary = fin_model.network_summary()

    spikes = make_spike_counts(16 if fast else 48, 600, rng=rng)
    counts = spikes.counts - spikes.counts.mean(axis=0)
    neuro_model = UoIVar(cfg).fit(counts)
    neuro_summary = neuro_model.network_summary()

    lines.append("")
    lines.append(
        f"functional finance fit ({n_co} companies): "
        f"{fin_summary['edges']} edges, density {fin_summary['density']:.3f}"
    )
    lines.append(
        f"functional neuro fit ({spikes.counts.shape[1]} electrodes): "
        f"{neuro_summary['edges']} edges, density {neuro_summary['density']:.3f}"
    )

    return ExperimentResult(
        name="realdata",
        title="§VI real-data runtime + end-to-end inference analogs",
        report="\n".join(lines),
        data={
            "finance_model": fin.seconds,
            "neuro_model": neuro.seconds,
            "paper_finance": PAPER_FINANCE,
            "paper_neuro": PAPER_NEURO,
            "finance_summary": fin_summary,
            "neuro_summary": neuro_summary,
        },
        paper_reference=(
            "§VI: finance 80GB/2,176 cores -> 376.87/4.74/16.409 s; "
            "neuro 1.3TB/81,600 cores -> 96.9/1,598.72/3,034.4 s."
        ),
    )
