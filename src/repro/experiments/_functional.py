"""Shared functional-simulation helpers for the experiment drivers.

These run the *real* distributed algorithms on the thread-based
simulator at laptop scale, returning per-category modeled time
breakdowns whose proportions can be compared with the paper's bars.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.core.parallel import distributed_uoi_lasso, distributed_uoi_var
from repro.datasets.regression import make_sparse_regression
from repro.datasets.var_synthetic import make_sparse_var
from repro.pfs import SimH5File
from repro.simmpi import CORI_KNL, run_spmd

__all__ = ["mini_uoi_lasso_run", "mini_uoi_var_run"]


def mini_uoi_lasso_run(
    *,
    nranks: int = 4,
    n: int = 96,
    p: int = 10,
    pb: int = 1,
    plam: int = 1,
    config: UoILassoConfig | None = None,
    seed: int = 0,
    checker=None,
) -> dict:
    """Execute distributed UoI_LASSO functionally; return breakdown + result.

    The returned dict has ``breakdown`` (category -> modeled seconds,
    max over ranks), ``elapsed``, ``coef`` and ``supports``.
    ``checker`` optionally attaches a
    :class:`repro.analysis.dynamic.DynamicChecker` to the run.
    """
    cfg = config or UoILassoConfig(
        n_lambdas=6,
        n_selection_bootstraps=4,
        n_estimation_bootstraps=3,
        random_state=seed,
    )
    ds = make_sparse_regression(n, p, n_informative=3, rng=np.random.default_rng(seed))
    file = SimH5File("/fig.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))

    res = run_spmd(
        nranks,
        lambda comm: distributed_uoi_lasso(comm, file, "data", cfg, pb=pb, plam=plam),
        machine=CORI_KNL,
        checker=checker,
    )
    out = res.values[0]
    return {
        "breakdown": res.breakdown(),
        "elapsed": res.elapsed,
        "coef": out.coef,
        "supports": out.supports,
        "true_support": ds.support,
    }


def mini_uoi_var_run(
    *,
    nranks: int = 4,
    p: int = 4,
    n_samples: int = 80,
    n_readers: int = 2,
    pb: int = 1,
    plam: int = 1,
    config: UoIVarConfig | None = None,
    seed: int = 0,
    checker=None,
) -> dict:
    """Execute distributed UoI_VAR functionally; return breakdown + result."""
    cfg = config or UoIVarConfig(
        order=1,
        lasso=UoILassoConfig(
            n_lambdas=5,
            n_selection_bootstraps=4,
            n_estimation_bootstraps=2,
            random_state=seed,
        ),
    )
    sv = make_sparse_var(p, n_samples, rng=np.random.default_rng(seed))

    res = run_spmd(
        nranks,
        lambda comm: distributed_uoi_var(
            comm,
            sv.series if comm.rank < n_readers else None,
            cfg,
            n_readers=n_readers,
            pb=pb,
            plam=plam,
        ),
        machine=CORI_KNL,
        checker=checker,
    )
    out = res.values[0]
    return {
        "breakdown": res.breakdown(),
        "elapsed": res.elapsed,
        "coef": out.coef,
        "supports": out.supports,
        "true_support": sv.support,
    }
