"""Fig. 9 — UoI_VAR weak scaling (B1 = 30, B2 = 20, q = 20).

The paper plots this on a log scale to expose the distribution
(distributed Kronecker + vectorization) growth: computation shows
"almost ideal weak scaling" (flat), communication rises with core
count, and distribution rises steeply — proportional to cores *and*
problem size (the ≈ p^3 explosion feeding a few reader cores) — so
that for problem sizes of 2 TB and above distribution dominates the
total runtime (the computation/distribution trade-off of the
Discussion).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.perf.plots import log_lines
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import (
    UoiVarScalingParams,
    WEAK_SCALING_GB,
    uoi_var_model,
    var_weak_scaling_cores,
)

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 9 from the analytic model."""
    rows = []
    series = {}
    for gb in WEAK_SCALING_GB:
        cores = var_weak_scaling_cores(gb)
        row = uoi_var_model(UoiVarScalingParams(gb, cores, b1=30, b2=20, q=20))
        rows.append(row)
        series[gb] = dict(row.seconds)
    lines = [format_breakdown_table(rows, title="UoI_VAR weak scaling (model)")]
    lines.append("")
    lines.append(log_lines(rows, title="log-scale view (the paper's Fig. 9 presentation)"))

    comp = [series[gb]["computation"] for gb in WEAK_SCALING_GB]
    lines.append(
        f"computation flatness: max/min = {max(comp) / min(comp):.3f} "
        "(paper: almost ideal weak scaling)"
    )
    crossover = next(
        (
            gb
            for gb in WEAK_SCALING_GB
            if series[gb]["distribution"] > series[gb]["computation"]
        ),
        None,
    )
    lines.append(
        f"distribution overtakes computation at: {crossover} GB "
        "(paper: 2TB and above)"
    )

    return ExperimentResult(
        name="fig9",
        title="UoI_VAR weak scaling",
        report="\n".join(lines),
        data={"series": series, "crossover_gb": crossover},
        paper_reference=(
            "Fig. 9 (log scale): computation flat; communication grows "
            "with cores; distribution grows with cores and problem size, "
            "dominating for >= 2TB."
        ),
    )
