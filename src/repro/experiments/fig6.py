"""Fig. 6 — UoI_LASSO strong scaling (1 TB, 17,408 -> 139,264 cores).

Shapes to reproduce: computation falls with core count — dropping
*below* the ideal trend at 139,264 cores (the per-core block gets
small enough that the Gram/factorization cost, quadratic in the local
row count, collapses; the paper attributes the superlinearity to
AVX-512 and reduced DRAM traffic on small blocks, the same mechanism
seen through the roofline); communication grows with core count.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.table1 import LASSO_STRONG_CORES
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import UoiLassoScalingParams, uoi_lasso_model

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 6 from the analytic model."""
    rows = []
    series = {}
    for cores in LASSO_STRONG_CORES:
        row = uoi_lasso_model(UoiLassoScalingParams(1024, cores))
        rows.append(row)
        series[cores] = dict(row.seconds)
    lines = [format_breakdown_table(rows, title="UoI_LASSO strong scaling, 1TB (model)")]

    base = LASSO_STRONG_CORES[0]
    lines.append(f"{'cores':>9}{'speedup(comp)':>15}{'ideal':>8}{'superlinear?':>14}")
    superlinear = {}
    for cores in LASSO_STRONG_CORES:
        ideal = cores / base
        speedup = series[base]["computation"] / series[cores]["computation"]
        superlinear[cores] = speedup > ideal
        lines.append(
            f"{cores:>9}{speedup:>15.2f}{ideal:>8.0f}{speedup > ideal!s:>14}"
        )

    return ExperimentResult(
        name="fig6",
        title="UoI_LASSO strong scaling (1TB)",
        report="\n".join(lines),
        data={"series": series, "superlinear": superlinear},
        paper_reference=(
            "Fig. 6: computation decreases with cores, going below the "
            "ideal trend at 139,264 cores (superlinear); communication "
            "increases with core count."
        ),
    )
