"""Resilience demo — crash, checkpoint, restart, bitwise recovery.

Runs a functional (downscaled) version of the Fig.-4 weak-scaling
UoI_LASSO configuration on the simulated substrate, twice:

1. **Reference** — uninterrupted, no checkpointing.
2. **Faulted** — same job with a :class:`~repro.resilience.FaultPlan`
   that kills one rank at a fraction of the reference's modeled
   runtime, checkpointing completed (bootstrap, λ) subproblems;
   :func:`~repro.resilience.run_with_recovery` restarts it against the
   same store.

The report verifies the recovered run's coefficients, supports, and
loss table are **bitwise identical** to the reference, and accounts
for virtual time lost versus subproblems recovered from checkpoint —
the quantities the ``repro faults`` subcommand prints.

``--checkpoint-dir`` persists the store across invocations;
``--resume`` skips the injected crash and simply fast-forwards through
whatever the store already holds (the restart half of a real
checkpoint/restart workflow, runnable by hand).
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core.config import UoILassoConfig
from repro.core.parallel import distributed_uoi_lasso
from repro.datasets import make_sparse_regression
from repro.experiments.base import ExperimentResult
from repro.pfs.hdf5 import SimH5File
from repro.resilience import (
    CheckpointPlan,
    CheckpointStore,
    FaultPlan,
    run_with_recovery,
    store_progress,
)
from repro.simmpi import LAPTOP, run_spmd

__all__ = ["run", "FIG4_FUNCTIONAL_CONFIG"]

#: Downscaled Fig.-4 flavor: fixed rows-per-core, the paper's B1/B2/q
#: ratios shrunk to functional-test size.
FIG4_FUNCTIONAL_CONFIG = UoILassoConfig(
    n_lambdas=6,
    n_selection_bootstraps=6,
    n_estimation_bootstraps=4,
    random_state=7,
)


def run(
    fast: bool = True,
    *,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    nranks: int = 4,
    crash_rank: int = 1,
    at_frac: float = 0.5,
    cadence: int = 1,
) -> ExperimentResult:
    """Run the crash/checkpoint/restart demo; see module docstring.

    Parameters
    ----------
    fast:
        Smaller problem (default); ``False`` doubles rows and features.
    checkpoint_dir:
        Persist the checkpoint store here (a temporary directory is
        used — and discarded — when omitted).
    resume:
        Do not inject a crash; resume from ``checkpoint_dir`` as a
        restarted job would.
    nranks, crash_rank, at_frac, cadence:
        World size, the rank to kill, the kill time as a fraction of
        the reference run's modeled time, and the checkpoint cadence.
    """
    if not (0 <= crash_rank < nranks):
        raise ValueError(f"crash_rank {crash_rank} out of range for {nranks} ranks")
    rows_per_rank, p = (48, 10) if fast else (96, 20)
    n = rows_per_rank * nranks
    cfg = FIG4_FUNCTIONAL_CONFIG
    ds = make_sparse_regression(
        n, p, n_informative=max(3, p // 4), snr=15.0,
        rng=np.random.default_rng(cfg.random_state),
    )
    file = SimH5File("/resilience.h5")
    file.create_dataset("data", np.column_stack([ds.y, ds.X]))
    pb = 2 if nranks % 2 == 0 else 1

    def job(comm, checkpoint=None):
        return distributed_uoi_lasso(
            comm, file, "data", cfg, pb=pb, checkpoint=checkpoint
        )

    # Reference: uninterrupted, no checkpoint overhead.
    ref_res = run_spmd(nranks, job, machine=LAPTOP)
    reference = ref_res.values[0]
    t_clean = ref_res.elapsed

    tmp = None
    if checkpoint_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-resilience-")
        checkpoint_dir = tmp.name
    try:
        store = CheckpointStore(checkpoint_dir)
        plan = CheckpointPlan(store, cadence=cadence)
        faults = FaultPlan()
        if not resume:
            faults.crash(crash_rank, at_time=at_frac * t_clean)
        outcome = run_with_recovery(
            nranks, job, machine=LAPTOP, fault_plan=faults, checkpoint=plan
        )
        recovered_result = outcome.result.values[0]
        progress = store_progress(store)
    finally:
        if tmp is not None:
            tmp.cleanup()

    bitwise = (
        recovered_result.coef.tobytes() == reference.coef.tobytes()
        and np.array_equal(recovered_result.supports, reference.supports)
        and recovered_result.losses.tobytes() == reference.losses.tobytes()
        and np.array_equal(recovered_result.winners, reference.winners)
    )

    lines = [
        f"config: n={n} p={p} q={cfg.n_lambdas} "
        f"B1={cfg.n_selection_bootstraps} B2={cfg.n_estimation_bootstraps} "
        f"nranks={nranks} pb={pb} cadence={cadence}",
        f"reference (uninterrupted) modeled time: {t_clean:.4g}s",
        "",
        outcome.render(),
        "",
        f"checkpoint store: {progress}",
        f"recovered result bitwise-identical to reference: {bitwise}",
    ]
    return ExperimentResult(
        name="resilience",
        title="fault injection + checkpoint/restart recovery",
        report="\n".join(lines),
        data={
            "bitwise_identical": bitwise,
            "clean_elapsed": t_clean,
            "lost_time": outcome.lost_time,
            "final_elapsed": outcome.final_elapsed,
            "n_restarts": outcome.n_restarts,
            "recovered_subproblems": outcome.recovered_subproblems,
            "completed_subproblems": outcome.completed_subproblems,
            "recovery_fraction": outcome.recovery_fraction,
            "pre_crash_records": outcome.checkpointed_before_restart,
            "store_records": progress,
        },
        paper_reference=(
            "Not a paper artifact: the paper's 4k-278k-core runs assume "
            "failure-free execution; this subsystem adds the "
            "checkpoint/restart such runs need in practice, preserving "
            "the algorithm's seeded determinism across restarts."
        ),
    )
