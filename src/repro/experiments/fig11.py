"""Fig. 11 — Granger causal graph of 50 S&P companies.

The paper fits a first-order VAR with UoI_VAR (B1 = 40, B2 = 5 —
"selected to create a strong pressure toward sparse parameter
estimates") to first differences of weekly closes of 50 randomly
chosen S&P-500 companies over 2013–2014 (104 weeks), and draws the
nonzero coefficients as a directed graph: "quite sparse, with fewer
than 40 edges" out of 2,500 possible.

The original closes are proprietary; we run the identical pipeline on
the synthetic sector-factor panel of :mod:`repro.datasets.finance`
(same shape: 50 companies x 2 trading years), which also plants a
ground-truth lead-lag network so selection quality is measurable —
something the paper's figure cannot check.
"""

from __future__ import annotations

import numpy as np

from repro.core import UoILassoConfig, UoIVar, UoIVarConfig
from repro.datasets.finance import first_differences, make_stock_panel, weekly_closes
from repro.experiments.base import ExperimentResult
from repro.metrics.selection import selection_report
from repro.var.granger import edge_list

__all__ = ["run", "fit_sp50"]


def fit_sp50(
    *,
    n_companies: int = 50,
    n_days: int = 504,
    b1: int = 40,
    b2: int = 5,
    q: int = 16,
    seed: int = 11,
    solver: str = "cd",
    rule: str = "1se",
):
    """Run the paper's Fig.-11 pipeline; returns (model, panel, diffs)."""
    panel = make_stock_panel(
        n_companies, n_days, rng=np.random.default_rng(seed)
    )
    weekly = weekly_closes(panel.prices)
    diffs = first_differences(weekly)
    cfg = UoIVarConfig(
        order=1,
        lasso=UoILassoConfig(
            n_lambdas=q,
            # The paper chooses hyperparameters "to create a strong
            # pressure toward sparse parameter estimates"; a 1e-2 floor
            # keeps the path in the sparse regime.
            lambda_min_ratio=1e-2,
            n_selection_bootstraps=b1,
            n_estimation_bootstraps=b2,
            solver=solver,
            # With only 5 estimation bootstraps, argmin winners are
            # noisy; the 1-SE rule supplies the rest of the paper's
            # "strong pressure toward sparse parameter estimates".
            selection_rule=rule,
            random_state=seed,
        ),
    )
    model = UoIVar(cfg).fit(diffs)
    return model, panel, diffs


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 11 on the synthetic panel.

    ``fast`` shrinks the panel and bootstrap counts (the full
    50-company, B1 = 40 pipeline runs via ``fast=False``).
    """
    if fast:
        # Shrunken panel; at these bootstrap counts the 1-SE rule is
        # too blunt, so fast mode uses plain argmin winners.
        b1, b2, q, n_co, rule = 8, 3, 10, 30, "min"
    else:
        b1, b2, q, n_co, rule = 40, 5, 16, 50, "1se"
    model, panel, diffs = fit_sp50(n_companies=n_co, b1=b1, b2=b2, q=q, rule=rule)
    summary = model.network_summary()
    graph = model.granger_graph(labels=panel.tickers)
    edges = edge_list(model.coefs_, labels=panel.tickers)

    true_mask = panel.lead_lag != 0
    np.fill_diagonal(true_mask, False)
    est_mask = model.coefs_[0] != 0
    est_off = est_mask & ~np.eye(est_mask.shape[0], dtype=bool)
    rep = selection_report(true_mask, est_off)

    lines = [
        f"panel: {diffs.shape[0]} weekly first-differences x "
        f"{diffs.shape[1]} companies; VAR(1), B1={b1}, B2={b2}",
        f"edges: {summary['edges']} of {summary['possible_edges']} possible "
        f"(paper: fewer than 40 of 2,500)",
        f"density {summary['density']:.3f}, max in-degree "
        f"{summary['max_in_degree']}, max out-degree {summary['max_out_degree']}",
        f"vs planted network: precision {rep.precision:.2f}, recall "
        f"{rep.recall:.2f} (tp={rep.tp}, fp={rep.fp}, fn={rep.fn})",
        "",
        "top edges (source -> target, |weight|):",
    ]
    for src, dst, w in edges[:15]:
        lines.append(f"  {src:>6} -> {dst:<6} {w:.4f}")

    return ExperimentResult(
        name="fig11",
        title="Granger causal graph of 50 companies (synthetic panel)",
        report="\n".join(lines),
        data={
            "summary": summary,
            "edges": edges,
            "selection": rep,
            "graph_nodes": graph.number_of_nodes(),
        },
        paper_reference=(
            "Fig. 11: VAR(1) on weekly first differences of 50 companies, "
            "B1=40, B2=5; sparse graph with < 40 edges out of 2,500; "
            "node size ~ degree, edge width ~ estimate magnitude."
        ),
    )
