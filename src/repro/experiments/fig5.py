"""Fig. 5 — T_min / T_max of one MPI_Allreduce across the weak-scaling sweep.

The paper plots the fastest and slowest observed time of a single
ADMM ``MPI_Allreduce`` (20,101-feature consensus buffer, uniform array
size across ranks) at every weak-scaling configuration; the growing
T_max/T_min gap quantifies communication-performance variability at
scale, "however, despite this we observe good scalability".

We regenerate the plot data from the machine model's lognormal
variability (sigma = ``CORI_KNL.net_noise``) applied to the alpha-beta
base cost, with the same congestion scaling as the runtime model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.perf.scaling import (
    WEAK_SCALING_GB,
    congestion_factor,
    lasso_weak_scaling_cores,
)
from repro.simmpi import CORI_KNL, timing

__all__ = ["run"]

#: Consensus message: x and u vectors plus residual stats (see
#: repro.linalg.consensus), 20,101 features.
ALLREDUCE_BYTES = (2 * 20_101 + 3) * 8


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 5's T_min/T_max series."""
    rng = np.random.default_rng(55)
    lines = [
        f"{'GB':>6}{'cores':>9}{'T_min (s)':>12}{'T_max (s)':>12}{'max/min':>9}"
    ]
    series = {}
    for gb in WEAK_SCALING_GB:
        cores = lasso_weak_scaling_cores(gb)
        tmin, tmax = timing.allreduce_minmax(
            CORI_KNL, ALLREDUCE_BYTES, cores, rng, samples=64
        )
        cong = congestion_factor(cores)
        tmin, tmax = tmin * cong, tmax * cong
        series[gb] = (tmin, tmax)
        lines.append(
            f"{gb:>6}{cores:>9}{tmin:>12.2e}{tmax:>12.2e}{tmax / tmin:>9.2f}"
        )
    gaps = [tmax / tmin for tmin, tmax in series.values()]
    lines.append(
        f"\nvariability (T_max/T_min) ranges {min(gaps):.2f}-{max(gaps):.2f}; "
        "absolute times grow with core count."
    )
    return ExperimentResult(
        name="fig5",
        title="MPI_Allreduce T_min/T_max variability (weak-scaling points)",
        report="\n".join(lines),
        data={"series": series, "message_bytes": ALLREDUCE_BYTES},
        paper_reference=(
            "Fig. 5: T_max/T_min gap of one MPI_Allreduce at each weak-"
            "scaling point shows communication variability; scalability "
            "remains good despite it."
        ),
    )
