"""Fig. 4 — UoI_LASSO weak scaling.

Problem size per core fixed (128 GB on 4,352 cores doubling to 8 TB on
278,528 cores; 20,101 features throughout).  The paper's shape:
computation is nearly flat ("nearly ideal weak scaling with slight
increase for 8TB"), communication grows with core count and is
dominated (99%) by the ADMM ``MPI_Allreduce``, and the Discussion
notes that for large data sets runtime becomes communication-bound.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import (
    UoiLassoScalingParams,
    WEAK_SCALING_GB,
    lasso_weak_scaling_cores,
    uoi_lasso_model,
)

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 4 from the analytic model."""
    rows = []
    series = {}
    for gb in WEAK_SCALING_GB:
        cores = lasso_weak_scaling_cores(gb)
        row = uoi_lasso_model(UoiLassoScalingParams(gb, cores))
        rows.append(row)
        series[gb] = dict(row.seconds)
    lines = [format_breakdown_table(rows, title="UoI_LASSO weak scaling (model)")]

    comp = [series[gb]["computation"] for gb in WEAK_SCALING_GB]
    comm = [series[gb]["communication"] for gb in WEAK_SCALING_GB]
    lines.append(
        f"computation flatness: max/min = {max(comp) / min(comp):.3f} "
        "(paper: nearly ideal weak scaling)"
    )
    lines.append(
        f"communication growth 128GB -> 8TB: x{comm[-1] / comm[0]:.1f} "
        "(paper: grows with core count; dominates at large scale)"
    )
    crossover = next(
        (gb for gb in WEAK_SCALING_GB if series[gb]["communication"] > series[gb]["computation"]),
        None,
    )
    lines.append(f"communication overtakes computation at: {crossover} GB")

    return ExperimentResult(
        name="fig4",
        title="UoI_LASSO weak scaling",
        report="\n".join(lines),
        data={"series": series, "crossover_gb": crossover},
        paper_reference=(
            "Fig. 4: computation near-ideal (flat), communication scales "
            "with core count (99% MPI_Allreduce); runtime becomes "
            "communication-determined for large data sets."
        ),
    )
