"""Experiment drivers — one module per paper table/figure.

Each module exposes ``run(fast: bool = True) -> ExperimentResult``:
the structured data behind the paper artifact plus a rendered text
report whose rows can be compared line-by-line against the paper.
``fast=True`` (the default, used by the benchmark harness) keeps
functional-simulation components small enough for a laptop; the
analytic components always evaluate at the paper's full scale.

=========  ==========================================================
module     reproduces
=========  ==========================================================
table1     Table I — performance-analysis setup
table2     Table II — conventional vs randomized distribution
fig2       Fig. 2 — UoI_LASSO single-node breakdown + roofline
fig3       Fig. 3 — UoI_LASSO P_B x P_lambda parallelism
fig4       Fig. 4 — UoI_LASSO weak scaling
fig5       Fig. 5 — Allreduce T_min / T_max variability
fig6       Fig. 6 — UoI_LASSO strong scaling
fig7       Fig. 7 — UoI_VAR single-node breakdown + sparse roofline
fig8       Fig. 8 — UoI_VAR algorithmic parallelism
fig9       Fig. 9 — UoI_VAR weak scaling
fig10      Fig. 10 — UoI_VAR strong scaling
fig11      Fig. 11 — S&P-50 Granger causal graph
realdata   §VI — 470-company and 192-electrode runtime analyses
statcompare extra — UoI vs LASSO/Ridge/MCP/SCAD statistical quality
=========  ==========================================================
"""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
