"""Fig. 3 — exploiting UoI_LASSO's algorithmic parallelism.

The paper sweeps P_B x P_lambda grids {16x2, 8x4, 4x8, 2x16} with
B1 = B2 = q = 48 on 16/32/64/128 GB datasets whose core counts double
alongside (2,176 ... 17,408), so each cell's ADMM core count doubles
too (68 ... 544).  Observations to reproduce: runtimes are similar
across grid shapes (within a few percent — the paper's winner, 2x16,
is marginally ahead), and communication ticks up at the larger
ADMM-core counts (272, 544).

This driver evaluates the analytic model on all 16 paper
configurations and backs it with functional mini-runs of the real
distributed algorithm over four small grids.
"""

from __future__ import annotations

from repro.experiments._functional import mini_uoi_lasso_run
from repro.experiments.base import ExperimentResult
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import UoiLassoScalingParams, uoi_lasso_model

__all__ = ["run", "PAPER_GRIDS", "PAPER_SIZES"]

#: The paper's four P_B x P_lambda configurations.
PAPER_GRIDS = [(16, 2), (8, 4), (4, 8), (2, 16)]
#: (GB, total cores) pairs of the Fig.-3 sweep.
PAPER_SIZES = [(16, 2176), (32, 4352), (64, 8704), (128, 17408)]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 3 (modeled sweep + functional grid runs)."""
    rows = []
    model = {}
    for gb, cores in PAPER_SIZES:
        for pb, plam in PAPER_GRIDS:
            row = uoi_lasso_model(
                UoiLassoScalingParams(gb, cores, b1=48, b2=48, q=48, pb=pb, plam=plam)
            )
            row.extra["admm_cores"] = str(cores // (pb * plam))
            rows.append(row)
            model[(gb, pb, plam)] = row.total
    lines = [format_breakdown_table(rows, title="P_B x P_lambda sweep (model)")]

    # Functional: same world size, four grid shapes, identical answers.
    func = {}
    coef_ref = None
    grids = [(1, 1), (2, 1), (1, 2), (2, 2)]
    for pb, plam in grids:
        out = mini_uoi_lasso_run(nranks=4, pb=pb, plam=plam, seed=3)
        func[(pb, plam)] = out["breakdown"]
        if coef_ref is None:
            coef_ref = out["coef"]
        agreement = float(abs(out["coef"] - coef_ref).max())
        lines.append(
            f"functional {pb}x{plam} grid (4 ranks): elapsed "
            f"{out['elapsed']:.3e}s, max coef deviation vs 1x1 = {agreement:.2e}"
        )

    return ExperimentResult(
        name="fig3",
        title="UoI_LASSO P_B x P_lambda algorithmic parallelism",
        report="\n".join(lines),
        data={"model_totals": model, "functional": func},
        paper_reference=(
            "Fig. 3: 16x2...2x16 grids with B1=B2=q=48; runtimes similar "
            "across shapes (2x16 marginally best); communication rises at "
            "ADMM_cores = 272 and 544."
        ),
    )
