"""Fig. 2 — UoI_LASSO single-node runtime breakdown + roofline.

The paper's Fig. 2 runs a ≈16 GB dataset on one KNL node (68 cores)
with B1 = B2 = 5, q = 8 and reports a stacked breakdown: ~90%
computation, <10% communication (99% of it the ADMM Allreduce), small
Distribution and Data-I/O bars.  Alongside, Section IV-A.1 reports the
Intel-Advisor roofline points (gemm 30.83 GFLOPS @ AI 3.59, gemv 1.12
@ 0.32, trsv 0.011 @ 0.075, all DRAM-bound).

This driver prints (a) the analytic single-node breakdown at the exact
paper configuration, (b) the roofline classification of every kernel,
and (c) a functional mini-run breakdown demonstrating the same
computation-dominant proportions from real execution.
"""

from __future__ import annotations

from repro.experiments._functional import mini_uoi_lasso_run
from repro.experiments.base import ExperimentResult
from repro.perf.plots import stacked_bars
from repro.perf.report import format_breakdown_table
from repro.perf.roofline import classify, paper_kernel_points, roofline_attainable
from repro.perf.scaling import UoiLassoScalingParams, uoi_lasso_model

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 2 (modeled breakdown + roofline + functional check)."""
    params = UoiLassoScalingParams(data_gb=16, cores=68, b1=5, b2=5, q=8)
    row = uoi_lasso_model(params)
    total = row.total
    comp_share = row.get("computation") / total

    lines = [format_breakdown_table([row], title="single node, 16GB, B1=B2=5, q=8 (model)")]
    lines.append(stacked_bars([row]))
    lines.append(f"computation share: {comp_share:.1%} (paper: ~90%)")
    lines.append("")
    lines.append(f"{'kernel':<22}{'GFLOPS':>9}{'AI':>7}{'roof @ AI':>11}{'bound':>15}")
    roofline = {}
    for pt in paper_kernel_points():
        if not pt.kernel.startswith("uoi_lasso"):
            continue
        verdict = classify(pt)
        roof = roofline_attainable(pt.intensity)
        roofline[pt.kernel] = verdict
        lines.append(
            f"{pt.kernel:<22}{pt.gflops:>9.3f}{pt.intensity:>7.2f}"
            f"{roof:>11.1f}{verdict:>15}"
        )

    func = mini_uoi_lasso_run(nranks=4 if fast else 8)
    fb = func["breakdown"]
    func_total = sum(fb.values())
    lines.append("")
    lines.append(
        "functional mini-run (4 ranks, real execution): "
        + ", ".join(f"{k} {v / func_total:.1%}" for k, v in fb.items())
    )

    return ExperimentResult(
        name="fig2",
        title="UoI_LASSO single-node runtime breakdown",
        report="\n".join(lines),
        data={
            "model": row.seconds,
            "computation_share": comp_share,
            "roofline": roofline,
            "functional": fb,
        },
        paper_reference=(
            "Fig. 2: ~90% computation, <10% communication (99% from "
            "MPI_Allreduce); kernels all DRAM-memory-bound."
        ),
    )
