"""Shared result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    name:
        Paper artifact id (e.g. ``"table2"``, ``"fig9"``).
    title:
        Human-readable headline.
    report:
        Rendered text tables, printable as-is next to the paper.
    data:
        Structured values for assertions (tests) and downstream use.
    paper_reference:
        The paper's corresponding numbers/claims, for side-by-side
        reading in EXPERIMENTS.md.
    """

    name: str
    title: str
    report: str
    data: dict[str, Any] = field(default_factory=dict)
    paper_reference: str = ""

    def render(self) -> str:
        """Full printable block: title, report, paper reference."""
        parts = [f"=== {self.name}: {self.title} ===", self.report]
        if self.paper_reference:
            parts.append(f"[paper] {self.paper_reference}")
        return "\n".join(parts)
