"""Fig. 10 — UoI_VAR strong scaling (1 TB, 4,352 -> 34,816 cores).

Shapes to reproduce: computation falls almost ideally with core count
(the sparse per-core slice shrinks proportionally); communication does
not scale ideally but "minimally affects the total runtime" relative
to computation at the smaller core counts; the distributed Kronecker
distribution *grows* with the number of cores, as in weak scaling.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.table1 import VAR_STRONG_CORES
from repro.perf.report import format_breakdown_table
from repro.perf.scaling import UoiVarScalingParams, uoi_var_model

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Fig. 10 from the analytic model."""
    rows = []
    series = {}
    for cores in VAR_STRONG_CORES:
        row = uoi_var_model(UoiVarScalingParams(1024, cores, b1=30, b2=20, q=20))
        rows.append(row)
        series[cores] = dict(row.seconds)
    lines = [format_breakdown_table(rows, title="UoI_VAR strong scaling, 1TB (model)")]

    base = VAR_STRONG_CORES[0]
    lines.append(f"{'cores':>9}{'speedup(comp)':>15}{'ideal':>8}{'distribution':>14}")
    for cores in VAR_STRONG_CORES:
        speedup = series[base]["computation"] / series[cores]["computation"]
        lines.append(
            f"{cores:>9}{speedup:>15.2f}{cores / base:>8.0f}"
            f"{series[cores]['distribution']:>14.1f}"
        )
    dist_growing = all(
        series[VAR_STRONG_CORES[i]]["distribution"]
        < series[VAR_STRONG_CORES[i + 1]]["distribution"]
        for i in range(len(VAR_STRONG_CORES) - 1)
    )
    lines.append(f"distribution grows with cores: {dist_growing}")

    return ExperimentResult(
        name="fig10",
        title="UoI_VAR strong scaling (1TB)",
        report="\n".join(lines),
        data={"series": series, "distribution_growing": dist_growing},
        paper_reference=(
            "Fig. 10: computation almost ideal strong scaling; "
            "communication non-ideal but minor; Kronecker distribution "
            "grows with core count."
        ),
    )
