"""Statistical-quality comparison: UoI vs LASSO / Ridge / MCP / SCAD.

Not a numbered figure, but the paper's central premise (Section I):
UoI methods deliver "low false-positive and low false-negative feature
selection along with low bias and low variance estimation", superior
to LASSO and comparable or better than the non-convex penalties (SCAD,
MCP) — *while remaining distributable*.  This driver measures all of
that on planted-truth synthetic data: selection precision/recall and
coefficient bias for each method at its best-on-held-out penalty.
"""

from __future__ import annotations

import numpy as np

from repro.core import UoILasso, UoILassoConfig
from repro.datasets.regression import make_sparse_regression
from repro.experiments.base import ExperimentResult
from repro.linalg import cv_lasso, lambda_grid, lasso_cd, mcp_regression, ridge, scad_regression
from repro.metrics.estimation import estimation_report
from repro.metrics.selection import selection_report

__all__ = ["run", "compare_methods"]


def _best_on_holdout(fit_fn, X_tr, y_tr, X_ho, y_ho, lams) -> np.ndarray:
    """Fit a path, return the estimate with the lowest held-out MSE."""
    best, best_loss = None, np.inf
    for lam in lams:
        beta = fit_fn(X_tr, y_tr, float(lam))
        loss = float(np.mean((y_ho - X_ho @ beta) ** 2))
        if loss < best_loss:
            best, best_loss = beta, loss
    return best


def compare_methods(
    *,
    n: int = 160,
    p: int = 40,
    k: int = 6,
    snr: float = 8.0,
    n_lambdas: int = 12,
    b1: int = 12,
    b2: int = 8,
    seed: int = 0,
) -> dict[str, dict]:
    """Run every method on one planted problem; return per-method metrics."""
    rng = np.random.default_rng(seed)
    ds = make_sparse_regression(n, p, n_informative=k, snr=snr, rng=rng)
    n_tr = int(0.75 * n)
    X_tr, y_tr = ds.X[:n_tr], ds.y[:n_tr]
    X_ho, y_ho = ds.X[n_tr:], ds.y[n_tr:]
    lams = lambda_grid(X_tr, y_tr, num=n_lambdas)

    estimates: dict[str, np.ndarray] = {}
    uoi = UoILasso(
        UoILassoConfig(
            n_lambdas=n_lambdas,
            n_selection_bootstraps=b1,
            n_estimation_bootstraps=b2,
            solver="cd",
            selection_rule="1se",
            random_state=seed,
        )
    ).fit(ds.X, ds.y)
    estimates["UoI_LASSO"] = uoi.coef_
    estimates["LASSO"] = _best_on_holdout(
        lambda X, y, lam: lasso_cd(X, y, lam), X_tr, y_tr, X_ho, y_ho, lams
    )
    estimates["MCP"] = _best_on_holdout(
        lambda X, y, lam: mcp_regression(X, y, lam), X_tr, y_tr, X_ho, y_ho, lams
    )
    estimates["SCAD"] = _best_on_holdout(
        lambda X, y, lam: scad_regression(X, y, lam), X_tr, y_tr, X_ho, y_ho, lams
    )
    estimates["Ridge"] = _best_on_holdout(
        lambda X, y, lam: ridge(X, y, max(lam, 1e-6)), X_tr, y_tr, X_ho, y_ho, lams
    )
    estimates["CV-LASSO"] = cv_lasso(
        ds.X, ds.y, n_lambdas=n_lambdas, k=5, rule="1se",
        rng=np.random.default_rng(seed + 7),
    ).beta

    out = {}
    for name, beta in estimates.items():
        sel = selection_report(ds.support, beta)
        est = estimation_report(ds.beta, beta)
        out[name] = {"selection": sel, "estimation": est, "beta": beta}
    out["_truth"] = {"beta": ds.beta, "support": ds.support}
    return out


def run(fast: bool = True) -> ExperimentResult:
    """Run the method comparison (averaged over trials unless ``fast``)."""
    trials = 1 if fast else 5
    agg: dict[str, list] = {}
    for t in range(trials):
        res = compare_methods(seed=100 + t)
        for name, vals in res.items():
            if name.startswith("_"):
                continue
            agg.setdefault(name, []).append(vals)

    lines = [
        f"{'method':<12}{'precision':>10}{'recall':>8}{'FP':>5}{'FN':>5}"
        f"{'coef MSE':>10}{'bias':>8}"
    ]
    summary = {}
    for name, runs in agg.items():
        prec = float(np.mean([r["selection"].precision for r in runs]))
        rec = float(np.mean([r["selection"].recall for r in runs]))
        fp = float(np.mean([r["selection"].fp for r in runs]))
        fn = float(np.mean([r["selection"].fn for r in runs]))
        mse = float(np.mean([r["estimation"].mse for r in runs]))
        bias = float(np.mean([r["estimation"].bias for r in runs]))
        summary[name] = {
            "precision": prec, "recall": rec, "fp": fp, "fn": fn,
            "mse": mse, "bias": bias,
        }
        lines.append(
            f"{name:<12}{prec:>10.2f}{rec:>8.2f}{fp:>5.1f}{fn:>5.1f}"
            f"{mse:>10.2e}{bias:>8.3f}"
        )
    lines.append(
        "\nexpected shape: UoI_LASSO precision >= LASSO precision (fewer "
        "false positives) at comparable recall; UoI bias < LASSO bias "
        "(OLS re-estimation removes shrinkage)."
    )

    return ExperimentResult(
        name="statcompare",
        title="Selection/estimation quality: UoI vs LASSO/MCP/SCAD/Ridge",
        report="\n".join(lines),
        data={"summary": summary},
        paper_reference=(
            "Section I: UoI gives low-FP/low-FN selection and low-bias/"
            "low-variance estimation vs LASSO, SCAD, MCP, Ridge ([10],[11])."
        ),
    )
