"""Statistical evaluation metrics.

The UoI framework's selling points are *selection* quality (low false
positives and false negatives — eq. 3's intersection) and *estimation*
quality (low bias, low variance — eq. 4's union average).  These
modules quantify both so the statistical-comparison benchmarks can
reproduce the paper's claims against LASSO / Ridge / MCP / SCAD.
"""

from repro.metrics.selection import (
    SelectionReport,
    selection_report,
    false_positive_rate,
    false_negative_rate,
)
from repro.metrics.graph import (
    adjacency_hamming,
    degree_profile_distance,
    edge_jaccard,
)
from repro.metrics.estimation import (
    mean_squared_error,
    coefficient_bias,
    r_squared,
    estimation_report,
    EstimationReport,
)

__all__ = [
    "SelectionReport",
    "selection_report",
    "false_positive_rate",
    "false_negative_rate",
    "edge_jaccard",
    "adjacency_hamming",
    "degree_profile_distance",
    "mean_squared_error",
    "coefficient_bias",
    "r_squared",
    "estimation_report",
    "EstimationReport",
]
