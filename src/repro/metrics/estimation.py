"""Coefficient-estimation and prediction metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean_squared_error",
    "coefficient_bias",
    "r_squared",
    "EstimationReport",
    "estimation_report",
]


def mean_squared_error(true: np.ndarray, estimated: np.ndarray) -> float:
    """Mean squared difference between two same-shape arrays."""
    true = np.asarray(true, dtype=float)
    estimated = np.asarray(estimated, dtype=float)
    if true.shape != estimated.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {estimated.shape}")
    return float(np.mean((true - estimated) ** 2))


def coefficient_bias(true: np.ndarray, estimated: np.ndarray) -> float:
    """Mean signed error on the *true support* — LASSO's shrinkage bias
    lives here; UoI's OLS re-estimation removes most of it."""
    true = np.asarray(true, dtype=float).reshape(-1)
    estimated = np.asarray(estimated, dtype=float).reshape(-1)
    if true.shape != estimated.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {estimated.shape}")
    mask = true != 0
    if not mask.any():
        return 0.0
    # Signed toward zero: positive bias means magnitudes are shrunk.
    return float(np.mean((np.abs(true) - np.abs(estimated))[mask]))


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0.0 for a constant truth."""
    y_true = np.asarray(y_true, dtype=float).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=float).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    denom = float(np.sum((y_true - y_true.mean()) ** 2))
    if denom == 0.0:
        return 0.0
    return 1.0 - float(np.sum((y_true - y_pred) ** 2)) / denom


@dataclass(frozen=True)
class EstimationReport:
    """Coefficient-quality summary.

    Attributes
    ----------
    mse:
        Mean squared coefficient error.
    bias:
        Shrinkage bias on the true support (positive = shrunk).
    max_abs_error:
        Worst single-coefficient error.
    """

    mse: float
    bias: float
    max_abs_error: float


def estimation_report(true: np.ndarray, estimated: np.ndarray) -> EstimationReport:
    """Bundle the coefficient-quality metrics for one estimate."""
    true = np.asarray(true, dtype=float)
    estimated = np.asarray(estimated, dtype=float)
    return EstimationReport(
        mse=mean_squared_error(true, estimated),
        bias=coefficient_bias(true, estimated),
        max_abs_error=float(np.max(np.abs(true - estimated))) if true.size else 0.0,
    )
