"""Support-recovery (model selection) metrics.

Given a true support and an estimated support (boolean masks of equal
length, or coefficient vectors thresholded at zero), compute the
confusion counts and the derived rates the UoI papers report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SelectionReport",
    "selection_report",
    "false_positive_rate",
    "false_negative_rate",
]


def _as_mask(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.dtype == bool:
        return x.reshape(-1)
    return (x != 0).reshape(-1)


@dataclass(frozen=True)
class SelectionReport:
    """Confusion counts and rates for one support estimate.

    Attributes
    ----------
    tp, fp, tn, fn:
        Confusion counts over features.
    precision, recall, f1:
        Standard derived scores (1.0 conventions when undefined on an
        empty side).
    exact:
        Whether the estimated support equals the truth exactly.
    """

    tp: int
    fp: int
    tn: int
    fn: int
    precision: float
    recall: float
    f1: float
    exact: bool


def selection_report(true: np.ndarray, estimated: np.ndarray) -> SelectionReport:
    """Compare an estimated support against the truth.

    Both arguments may be boolean masks or coefficient vectors (any
    nonzero counts as selected).  Shapes must match after flattening.
    """
    t = _as_mask(true)
    e = _as_mask(estimated)
    if t.shape != e.shape:
        raise ValueError(f"shape mismatch: true {t.shape} vs estimated {e.shape}")
    tp = int(np.sum(t & e))
    fp = int(np.sum(~t & e))
    tn = int(np.sum(~t & ~e))
    fn = int(np.sum(t & ~e))
    precision = tp / (tp + fp) if (tp + fp) else 1.0
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return SelectionReport(
        tp=tp,
        fp=fp,
        tn=tn,
        fn=fn,
        precision=precision,
        recall=recall,
        f1=f1,
        exact=bool(np.array_equal(t, e)),
    )


def false_positive_rate(true: np.ndarray, estimated: np.ndarray) -> float:
    """FP / (FP + TN): fraction of true zeros wrongly selected."""
    r = selection_report(true, estimated)
    denom = r.fp + r.tn
    return r.fp / denom if denom else 0.0


def false_negative_rate(true: np.ndarray, estimated: np.ndarray) -> float:
    """FN / (FN + TP): fraction of true features missed."""
    r = selection_report(true, estimated)
    denom = r.fn + r.tp
    return r.fn / denom if denom else 0.0
