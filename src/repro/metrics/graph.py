"""Network-level comparison metrics for inferred Granger graphs.

Beyond per-edge confusion counts
(:mod:`repro.metrics.selection`), network inference is judged on
graph-level structure: edge-set overlap, degree-profile similarity,
and raw adjacency disagreement.  Used by the application examples to
score recovered networks against the planted ground truth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_jaccard", "adjacency_hamming", "degree_profile_distance"]


def _as_adjacency(W: np.ndarray) -> np.ndarray:
    W = np.asarray(W)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        raise ValueError(f"adjacency must be square, got {W.shape}")
    return W != 0


def edge_jaccard(
    true: np.ndarray,
    estimated: np.ndarray,
    *,
    include_diagonal: bool = False,
) -> float:
    """Jaccard similarity of the two directed edge sets.

    ``|E_true ∩ E_est| / |E_true ∪ E_est|``; 1.0 when both graphs are
    empty (vacuously identical).
    """
    a = _as_adjacency(true)
    b = _as_adjacency(estimated)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if not include_diagonal:
        off = ~np.eye(a.shape[0], dtype=bool)
        a, b = a & off, b & off
    union = int(np.sum(a | b))
    if union == 0:
        return 1.0
    return float(np.sum(a & b)) / union


def adjacency_hamming(true: np.ndarray, estimated: np.ndarray) -> int:
    """Number of entries where the two adjacency patterns disagree."""
    a = _as_adjacency(true)
    b = _as_adjacency(estimated)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.sum(a != b))


def degree_profile_distance(true: np.ndarray, estimated: np.ndarray) -> float:
    """L1 distance between sorted (in+out)-degree sequences, normalized.

    Insensitive to node relabeling; 0.0 for identical degree profiles.
    Normalized by the total true degree (falls back to the estimated
    total, then to 1).
    """
    a = _as_adjacency(true)
    b = _as_adjacency(estimated)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    off = ~np.eye(a.shape[0], dtype=bool)
    a, b = a & off, b & off
    deg_a = np.sort(a.sum(axis=0) + a.sum(axis=1))
    deg_b = np.sort(b.sum(axis=0) + b.sum(axis=1))
    denom = max(int(deg_a.sum()), int(deg_b.sum()), 1)
    return float(np.abs(deg_a - deg_b).sum()) / denom
