"""Typed fit requests and their lifecycle state.

A :class:`JobSpec` is the service's admission currency: which
estimator family (``"lasso"`` / ``"var"``), the data arrays, the
config bundle, the engine backend, and multi-tenant bookkeeping
(tenant for fair-share ordering, an optional client-supplied
idempotency key for duplicate-suppressed submits).  ``build_plan``
turns it into the exact :class:`~repro.engine.plans.LassoPlan` /
:class:`~repro.engine.plans.VarPlan` the direct estimators construct,
which is why service results are bitwise identical to
``UoILasso.fit`` / ``UoIVar.fit``.

A :class:`Job` tracks one admitted spec through the lifecycle
``queued -> running -> done | failed | cancelled``, with per-stage
progress counters and an append-only snapshot list fed by the
scheduler's engine hook (that is what ``stream_progress`` replays).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.analysis.dynamic import instrumented_condition
from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.engine.plan import UoIPlan

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "JOB_KINDS",
    "JobCancelled",
    "AdmissionError",
    "UnknownJobError",
    "JobSpec",
    "Job",
    "StreamJobPlan",
    "outputs_to_arrays",
]

#: Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Admissible estimator families.  ``"stream"`` is the rolling-window
#: UoI_VAR job: its series is replayed tick-by-tick through
#: :func:`repro.stream.refit.run_rolling` (one engine plan *per
#: window*, warm-started from the previous one) rather than fit as a
#: single batch plan.
JOB_KINDS = ("lasso", "var", "stream")


class JobCancelled(RuntimeError):
    """Raised inside a solo run to abort it, and by ``results`` of a
    cancelled job."""


class AdmissionError(ValueError):
    """A submit was rejected (bad spec, or ``verify_plan`` findings)."""

    def __init__(self, message: str, findings: list | None = None) -> None:
        super().__init__(message)
        self.findings = list(findings) if findings else []


class UnknownJobError(KeyError):
    """The job id is not (or no longer) registered with the service."""


@dataclass(frozen=True)
class JobSpec:
    """One fit request.

    Attributes
    ----------
    kind:
        ``"lasso"`` (needs ``data["X"]``, ``data["y"]``) or ``"var"``
        (needs ``data["series"]``).
    data:
        The input arrays, by name.
    config:
        :class:`UoILassoConfig` / :class:`UoIVarConfig`; ``None`` uses
        the family's defaults.
    backend:
        Engine backend name (see :data:`repro.engine.BACKENDS`).
    tenant:
        Fair-share accounting bucket.
    idempotency_key:
        Client-supplied dedup token: a second submit with the same
        ``(tenant, key)`` returns the original job id, and store
        records are scoped by it (see :attr:`Job.store_key`) so a
        restarted service resumes the job's completed subproblems.
    label:
        Free-form display label.
    """

    kind: str
    data: Mapping[str, np.ndarray]
    config: Any = None
    backend: str = "serial"
    tenant: str = "default"
    idempotency_key: str | None = None
    label: str | None = None

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise AdmissionError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )
        needed = ("X", "y") if self.kind == "lasso" else ("series",)
        missing = [name for name in needed if name not in self.data]
        if missing:
            raise AdmissionError(
                f"{self.kind} job is missing data array(s) {missing}"
            )
        if self.kind == "stream" and self.config is not None:
            from repro.stream.refit import StreamConfig

            if not isinstance(self.config, StreamConfig):
                raise AdmissionError(
                    "stream job config must be a StreamConfig, got "
                    f"{type(self.config).__name__}"
                )

    def build_plan(self) -> UoIPlan:
        """The exact engine plan a direct estimator fit would run.

        Stream jobs get a :class:`StreamJobPlan` stub instead: the
        rolling run builds one real :class:`VarPlan` per window at
        execution time, so admission only pins the window schedule.
        """
        self.validate()
        from repro.engine.plans import LassoPlan, VarPlan

        try:
            if self.kind == "lasso":
                config = self.config or UoILassoConfig()
                return LassoPlan(
                    config,
                    np.asarray(self.data["X"]),
                    np.asarray(self.data["y"]),
                )
            if self.kind == "stream":
                return StreamJobPlan(
                    self.config, np.asarray(self.data["series"])
                )
            config = self.config or UoIVarConfig()
            return VarPlan(config, np.asarray(self.data["series"]))
        except AdmissionError:
            raise
        except (ValueError, TypeError) as exc:
            raise AdmissionError(f"invalid {self.kind} job: {exc}") from exc

    def spec_digest(self) -> str:
        """Content hash of everything that determines the fit.

        Covers the estimator family, backend, config and the data
        array bytes — two specs share a digest iff they would run the
        identical computation, which is what makes the digest safe to
        embed in :attr:`Job.store_key`: a stored payload can only ever
        be served back to a spec that would have recomputed it.
        """
        h = hashlib.sha256()
        h.update(self.kind.encode())
        h.update(b"\0")
        h.update(self.backend.encode())
        h.update(b"\0")
        h.update(repr(self.config).encode())
        for name in sorted(self.data):
            a = np.ascontiguousarray(np.asarray(self.data[name]))
            h.update(b"\0")
            h.update(name.encode())
            h.update(str(a.dtype).encode())
            h.update(str(a.shape).encode())
            h.update(a.tobytes())
        return h.hexdigest()

    def compat_key(self) -> tuple:
        """Batching compatibility: family + backend + data shapes.

        Jobs sharing a compat key may ride one shared engine run; the
        result attribution (and the numerics) never depend on *what*
        is batched, only the orchestration overhead does.
        """
        shapes = tuple(
            (name, tuple(np.shape(self.data[name])))
            for name in sorted(self.data)
        )
        return (self.kind, self.backend, shapes)


class StreamJobPlan(UoIPlan):
    """Lifecycle stub for a streaming job.

    A stream job is not one engine run: the scheduler drives
    :func:`repro.stream.refit.run_rolling`, which constructs (and
    verifies, under ``verify``) one real
    :class:`~repro.engine.plans.VarPlan` per window.  This stub exists
    so the :class:`Job` machinery has a plan-shaped object at
    admission: :meth:`describe` reports the window schedule as the
    ``"stream"`` stage's subproblem total, which is what progress
    snapshots count one-per-window against.
    """

    stages = ("stream",)
    kind = "stream"

    def __init__(self, config: Any, series: np.ndarray) -> None:
        from repro.stream.refit import StreamConfig, expected_windows

        series = np.asarray(series, dtype=float)
        if series.ndim != 2:
            raise AdmissionError(
                f"stream job series must be 2-D, got shape {series.shape}"
            )
        self.config = config if config is not None else StreamConfig()
        self.n_ticks, self.p = series.shape
        self.n_windows = expected_windows(self.config, self.n_ticks)
        if self.n_windows < 1:
            raise AdmissionError(
                f"stream job series is too short: {self.n_ticks} ticks "
                f"never prime a {self.config.window}-sample window"
            )

    def meta(self) -> dict:
        return {
            "kind": "stream",
            "n_ticks": self.n_ticks,
            "p": self.p,
            "windows": self.n_windows,
            "window": self.config.window,
            "cadence": self.config.cadence,
            "warm": self.config.warm,
        }

    def describe(self) -> dict:
        return {
            "kind": "stream",
            "stages": {
                "stream": {"chains": 1, "subproblems": self.n_windows}
            },
            "subproblems": self.n_windows,
        }


def outputs_to_arrays(outputs: Any) -> dict[str, np.ndarray]:
    """Flatten a :class:`~repro.engine.plan.PlanOutputs` to named arrays."""
    out = {
        "coef": np.asarray(outputs.coef),
        "supports": np.asarray(outputs.supports),
        "losses": np.asarray(outputs.losses),
        "winners": np.asarray(outputs.winners),
        "lambdas": np.asarray(outputs.lambdas),
    }
    for name, value in getattr(outputs, "extra", {}).items():
        out[f"extra_{name}"] = np.asarray(value)
    return out


def _job_condition() -> threading.Condition:
    """Per-job condition, observable under ``REPRO_THREAD_CHECK``."""
    return instrumented_condition("service.job.cond")


@dataclass
class Job:
    """One admitted request moving through the lifecycle.

    All mutable fields are guarded by ``cond`` (scheduler writes,
    clients read/wait); ``done_event`` additionally latches terminal
    states for cheap blocking waits, and ``cancel_event`` is the
    cooperative cancellation signal a running solo job polls at every
    subproblem boundary.
    """

    id: str
    spec: JobSpec
    plan: UoIPlan
    seq: int
    state: str = QUEUED
    error: str | None = None
    result: Any = None
    batch_size: int = 1
    #: stage -> [done, total] counters.
    progress: dict[str, list[int]] = field(default_factory=dict)
    #: Append-only progress snapshots (what ``stream_progress`` replays).
    snapshots: list[dict] = field(default_factory=list)
    enqueued_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None
    cond: threading.Condition = field(default_factory=_job_condition)
    done_event: threading.Event = field(default_factory=threading.Event)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    _store_key: str | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        desc = self.plan.describe()
        self.progress = {
            stage: [0, info["subproblems"]]
            for stage, info in desc["stages"].items()
        }

    @property
    def store_key(self) -> str:
        """Results-store key prefix: ``<tenant>/<token>/<spec digest>``.

        The token is the client's idempotency key when given (stable
        across resubmits, which is what store-backed resume keys on)
        or the job id otherwise.  The tenant scopes the key so two
        tenants sharing an idempotency key can never read each other's
        records, and the spec digest pins the key to the exact
        computation — a restarted service whose job ids restart at
        ``j1``, or a client reusing a key for a different fit, maps to
        a fresh prefix instead of being served a foreign payload.
        """
        if self._store_key is None:
            self._store_key = (
                f"{self.spec.tenant}/"
                f"{self.spec.idempotency_key or self.id}/"
                f"{self.spec.spec_digest()[:16]}"
            )
        return self._store_key

    def note_subproblem(self, stage: str, *, recovered: bool) -> None:
        """Record one completed subproblem (scheduler hook path)."""
        with self.cond:
            counters = self.progress.setdefault(stage, [0, 0])
            counters[0] += 1
            self.snapshots.append(
                {
                    "job": self.id,
                    "stage": stage,
                    "done": counters[0],
                    "total": counters[1],
                    "recovered": bool(recovered),
                }
            )
            self.cond.notify_all()

    def finish(
        self, state: str, *, result: Any = None, error: str | None = None
    ) -> None:
        """Transition to a terminal state and wake every waiter."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self.cond:
            self.state = state
            self.result = result
            self.error = error
            self.cond.notify_all()
        self.done_event.set()

    def status(self) -> dict:
        """JSON-serializable status view."""
        with self.cond:
            return {
                "id": self.id,
                "state": self.state,
                "kind": self.spec.kind,
                "backend": self.spec.backend,
                "tenant": self.spec.tenant,
                "label": self.spec.label,
                "idempotency_key": self.spec.idempotency_key,
                "batch_size": self.batch_size,
                "progress": {
                    stage: {"done": done, "total": total}
                    for stage, (done, total) in self.progress.items()
                },
                "error": self.error,
                "enqueued_at": self.enqueued_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
            }
