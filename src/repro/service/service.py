"""The service front end: admission, registry, and the client API.

:class:`Service` owns the scheduler, the job registry, the
idempotency table and (optionally) the replicated results store and a
telemetry recorder.  Its public surface is exactly what the wire
protocol mirrors — ``submit`` / ``status`` / ``results`` / ``cancel``
/ ``stream_progress`` — so the in-process :class:`ServiceClient` and
the socket client in :mod:`repro.service.server` are interchangeable.

Admission is strict: ``submit`` validates the spec, builds the same
engine plan a direct ``UoILasso.fit`` / ``UoIVar.fit`` would run, and
rejects the job with :class:`AdmissionError` (carrying the PLAN4xx
findings) unless :func:`repro.analysis.planver.verify_plan` comes
back clean.  A spec with an ``idempotency_key`` already seen for that
tenant is not re-admitted — the original job id is returned.
"""

from __future__ import annotations

from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from repro.analysis.dynamic import instrumented_lock
from repro.analysis.planver import verify_plan
from repro.service.jobs import (
    CANCELLED,
    FAILED,
    TERMINAL_STATES,
    AdmissionError,
    Job,
    JobCancelled,
    JobSpec,
    UnknownJobError,
)
from repro.service.scheduler import Scheduler
from repro.service.store import ReplicatedResultsStore
from repro.telemetry.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Executor

__all__ = ["Service", "ServiceClient"]


class Service:
    """Multi-tenant UoI fitting service (in-process core).

    Parameters
    ----------
    workers / batching / max_batch / verify / executor_factory:
        Forwarded to :class:`~repro.service.scheduler.Scheduler`.
        Jobs submitted with ``backend="elastic"`` (or
        ``"processpool-elastic"``) run on the process-wide shared
        out-of-process worker fleet unless ``executor_factory``
        overrides the mapping.
    store_root:
        Directory for a :class:`ReplicatedResultsStore`; ``None``
        disables durability (an explicit ``store`` instance wins).
    recorder:
        Telemetry recorder; ``None`` creates a private one so
        :meth:`export_manifest` always has data.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        batching: bool = True,
        max_batch: int = 4,
        store_root: str | None = None,
        store: ReplicatedResultsStore | None = None,
        recorder: Recorder | None = None,
        verify: bool = False,
        executor_factory: Callable[[str], "Executor"] | None = None,
    ) -> None:
        if store is None and store_root is not None:
            store = ReplicatedResultsStore(store_root)
        self.store = store
        self.recorder = recorder if recorder is not None else Recorder()
        self.scheduler = Scheduler(
            workers=workers,
            batching=batching,
            max_batch=max_batch,
            store=store,
            recorder=self.recorder,
            verify=verify,
            executor_factory=executor_factory,
        )
        self._lock = instrumented_lock("service.service.lock")
        self._jobs: dict[str, Job] = {}
        self._by_idempotency: dict[tuple[str, str], str] = {}
        self._seq = 0
        self._closed = False

    # ----------------------------------------------------------- helpers
    def _job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    # --------------------------------------------------------------- API
    def submit(self, spec: JobSpec) -> str:
        """Admit a job; returns its id.

        Duplicate-suppressed: a spec whose ``(tenant,
        idempotency_key)`` was already submitted returns the original
        job id without enqueueing anything.  Raises
        :class:`AdmissionError` if the spec is invalid or its plan
        fails PLAN4xx verification.
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        dedup = (
            (spec.tenant, spec.idempotency_key)
            if spec.idempotency_key is not None
            else None
        )
        if dedup is not None:
            with self._lock:
                existing = self._by_idempotency.get(dedup)
            if existing is not None:
                return existing
        plan = spec.build_plan()
        # Stream jobs admit a schedule stub, not an engine plan — their
        # real per-window VarPlans are built (and, under verify=True,
        # PLAN4xx-verified) as the rolling run executes.
        if spec.kind != "stream":
            findings = verify_plan(plan)
            if findings:
                raise AdmissionError(
                    f"plan failed verification with {len(findings)} finding(s)",
                    findings,
                )
        with self._lock:
            if dedup is not None:
                # second check under the lock: two racing duplicate
                # submits must still agree on one job id.
                existing = self._by_idempotency.get(dedup)
                if existing is not None:
                    return existing
            self._seq += 1
            job = Job(id=f"j{self._seq}", spec=spec, plan=plan, seq=self._seq)
            self._jobs[job.id] = job
            if dedup is not None:
                self._by_idempotency[dedup] = job.id
        self.scheduler.submit(job)
        return job.id

    def status(self, job_id: str) -> dict:
        """JSON-serializable lifecycle/progress snapshot."""
        return self._job(job_id).status()

    def jobs(self) -> list[dict]:
        """Status of every registered job, in submit order."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
        return [job.status() for job in jobs]

    def results(self, job_id: str, timeout: float | None = None) -> Any:
        """Block until terminal; return the job's ``PlanOutputs``.

        Raises :class:`TimeoutError` if the deadline passes,
        :class:`JobCancelled` for a cancelled job, and
        :class:`RuntimeError` (with the recorded error string) for a
        failed one.
        """
        job = self._job(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job_id} not finished within {timeout}s")
        if job.state == CANCELLED:
            raise JobCancelled(job_id)
        if job.state == FAILED:
            raise RuntimeError(f"job {job_id} failed: {job.error}")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel: immediate while queued, cooperative while running."""
        return self.scheduler.cancel(self._job(job_id))

    def stream_progress(
        self, job_id: str, *, poll: float = 0.5
    ) -> Iterator[dict]:
        """Yield progress snapshots as they land, then a final
        ``{"final": True, "state": ...}`` event once terminal."""
        job = self._job(job_id)
        sent = 0
        while True:
            with job.cond:
                while sent >= len(job.snapshots) and (
                    job.state not in TERMINAL_STATES
                ):
                    job.cond.wait(poll)
                pending = job.snapshots[sent:]
                state = job.state
                error = job.error
            for snapshot in pending:
                yield snapshot
            sent += len(pending)
            if state in TERMINAL_STATES:
                yield {
                    "job": job.id,
                    "final": True,
                    "state": state,
                    "error": error,
                }
                return

    # --------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Stop the workers; queued jobs are cancelled, waiters wake."""
        if self._closed:
            return
        self._closed = True
        self.scheduler.shutdown(cancel_pending=True)

    def __enter__(self) -> "Service":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.shutdown()

    # --------------------------------------------------------- telemetry
    def export_manifest(self, path: str) -> str:
        """Write the service run's telemetry manifest (JSONL, same
        schema :func:`repro.telemetry.export.read_manifest` parses)."""
        from repro.telemetry.export import write_manifest

        recorder = self.recorder
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
        states: dict[str, int] = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1

        class _ManifestShim:
            plan_kind = "service"
            backend = "mixed"
            label = "service"
            tid = 0
            plan_meta: dict = {}
            plan_counts = {"jobs": len(jobs)}

            def __init__(self) -> None:
                self.recorder = recorder

            def summary(self) -> dict:
                return {
                    "kind": "service",
                    "jobs": len(jobs),
                    "states": states,
                    "counters": recorder.counter_values(),
                }

        return write_manifest(_ManifestShim(), path)


class ServiceClient:
    """In-process client: the same verbs the socket client speaks.

    Exists so tests, benchmarks and the demo driver can target one
    client API and swap the transport (in-process vs line-JSON socket)
    without touching call sites.
    """

    def __init__(self, service: Service) -> None:
        self._service = service

    def submit(
        self,
        kind: str,
        data: Mapping[str, np.ndarray],
        *,
        config: Any = None,
        backend: str = "serial",
        tenant: str = "default",
        idempotency_key: str | None = None,
        label: str | None = None,
    ) -> str:
        spec = JobSpec(
            kind=kind,
            data=dict(data),
            config=config,
            backend=backend,
            tenant=tenant,
            idempotency_key=idempotency_key,
            label=label,
        )
        return self._service.submit(spec)

    def status(self, job_id: str) -> dict:
        return self._service.status(job_id)

    def results(self, job_id: str, timeout: float | None = None) -> Any:
        return self._service.results(job_id, timeout)

    def cancel(self, job_id: str) -> bool:
        return self._service.cancel(job_id)

    def stream_progress(self, job_id: str, **kwargs: Any) -> Iterator[dict]:
        return self._service.stream_progress(job_id, **kwargs)
