"""repro.service — multi-tenant UoI fitting as a service.

The service turns the engine's plan/executor split into a shared
facility: clients submit typed :class:`~repro.service.jobs.JobSpec`
fit requests (LASSO or VAR, any engine backend); admission builds and
verifies the exact plan a direct estimator fit would run; a
fair-share scheduler multiplexes jobs over a bounded worker pool and
batches compatible jobs into shared engine runs
(:class:`~repro.service.batch.BatchPlan`) without changing a single
bit of any result; and a replicated, idempotent results store
(:class:`~repro.service.store.ReplicatedResultsStore`) makes finished
subproblems durable across service restarts.

Transports: the in-process :class:`~repro.service.service.ServiceClient`
and the line-JSON socket pair
:class:`~repro.service.server.ServiceServer` /
:class:`~repro.service.server.SocketServiceClient` (``repro serve``).

See ``docs/service.md`` for the architecture and guarantees.
"""

from repro.service.batch import MEMBER_SEP, BatchPlan
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    AdmissionError,
    Job,
    JobCancelled,
    JobSpec,
    UnknownJobError,
    outputs_to_arrays,
)
from repro.service.scheduler import JobBatchHook, Scheduler
from repro.service.server import (
    ServiceServer,
    SocketServiceClient,
    run_demo,
)
from repro.service.service import Service, ServiceClient
from repro.service.store import (
    LamportClock,
    ReplicaNode,
    ReplicatedResultsStore,
    WriteOp,
    parse_op_id,
)

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "JOB_KINDS",
    "MEMBER_SEP",
    "AdmissionError",
    "BatchPlan",
    "Job",
    "JobBatchHook",
    "JobCancelled",
    "JobSpec",
    "LamportClock",
    "ReplicaNode",
    "ReplicatedResultsStore",
    "Scheduler",
    "Service",
    "ServiceClient",
    "ServiceServer",
    "SocketServiceClient",
    "UnknownJobError",
    "WriteOp",
    "outputs_to_arrays",
    "parse_op_id",
    "run_demo",
]
