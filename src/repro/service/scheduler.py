"""Multi-tenant job scheduler over the execution engine.

The :class:`Scheduler` multiplexes admitted jobs over a bounded pool
of worker threads:

* **Fair-share ordering** — when a worker frees up, the next lead job
  comes from the tenant with the fewest jobs started so far (ties
  broken by submit order), so one chatty tenant cannot starve the
  rest of the queue.
* **Cross-job batching** — compatible queued jobs (same estimator
  family, backend and data shapes; see
  :meth:`~repro.service.jobs.JobSpec.compat_key`) ride the lead job's
  engine run as one :class:`~repro.service.batch.BatchPlan`, and the
  per-subproblem results are attributed back to their owners by key
  prefix.  Batched results are bitwise identical to solo runs; only
  the orchestration overhead is shared.
* **Progress + durability** — one :class:`JobBatchHook` per run feeds
  each owner job's progress snapshots, raises cooperative
  cancellation for solo runs, and (when a
  :class:`~repro.service.store.ReplicatedResultsStore` is attached)
  persists every solved ``(job, subproblem)`` payload and serves
  recovered ones, so a restarted service resumes a resubmitted job
  (same idempotency key) from the store instead of recomputing.

Telemetry: with a recorder attached, every job gets a queue-wait span
(``distribution``) and a run span (``computation``), plus
queue-depth / running-jobs gauges and lifecycle counters.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.analysis.dynamic import instrumented_condition
from repro.engine import BACKEND_ALIASES, EngineHook, make_executor, run_plan
from repro.engine.plan import Subproblem
from repro.service.batch import BatchPlan
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    outputs_to_arrays,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import Executor
    from repro.service.store import ReplicatedResultsStore
    from repro.telemetry.recorder import Recorder

__all__ = ["Scheduler", "JobBatchHook"]

#: Span/gauge categories (string values of repro.telemetry CATEGORIES).
_COMPUTATION = "computation"
_DISTRIBUTION = "distribution"


class JobBatchHook(EngineHook):
    """Engine hook demultiplexing one (possibly batched) run to its jobs.

    ``lookup`` serves recovered payloads from the results store under
    the owner's ``"<store key>|<subproblem key>"`` record, and — for
    solo runs — raises :class:`JobCancelled` at the next subproblem
    boundary once the owner's cancel flag is set (a batched run never
    aborts: siblings' work would be lost; the cancelled member's
    results are discarded at attribution instead).
    """

    def __init__(
        self,
        jobs: dict[str, Job],
        *,
        store: "ReplicatedResultsStore | None" = None,
        solo: bool = False,
    ) -> None:
        self.jobs = dict(jobs)
        self.store = store
        self.solo = solo

    def _owner(self, task: Subproblem) -> tuple[Job, str]:
        member_id, inner_key = BatchPlan.split_key(task.key)
        return self.jobs[member_id], inner_key

    def lookup(self, task: Subproblem) -> dict[str, np.ndarray] | None:
        job, inner_key = self._owner(task)
        if self.solo and job.cancel_event.is_set():
            raise JobCancelled(job.id)
        if self.store is None:
            return None
        return self.store.get(f"{job.store_key}|{inner_key}")

    def on_subproblem_done(
        self,
        task: Subproblem,
        payload: dict[str, np.ndarray],
        *,
        recovered: bool,
    ) -> None:
        job, inner_key = self._owner(task)
        if self.store is not None and not recovered:
            self.store.put(f"{job.store_key}|{inner_key}", payload)
        job.note_subproblem(task.stage, recovered=recovered)
        if self.solo and job.cancel_event.is_set():
            raise JobCancelled(job.id)


class Scheduler:
    """Bounded worker pool with fair-share ordering and batching.

    Parameters
    ----------
    workers:
        Worker-thread count (each runs one engine run at a time).
    batching:
        Allow compatible queued jobs to share the lead job's run.
    max_batch:
        Upper bound on jobs per shared run.
    store:
        Optional :class:`ReplicatedResultsStore`: per-subproblem
        payloads and final results are persisted (idempotent,
        replicated), and resubmitted jobs resume from it.
    recorder:
        Optional :class:`~repro.telemetry.recorder.Recorder` for
        per-job spans, queue gauges and lifecycle counters.
    verify:
        Wrap executors in plan verification
        (:class:`~repro.engine.executors.VerifyingExecutor`).
    executor_factory:
        Optional ``backend_name -> Executor`` override.  The default
        builds a fresh in-process executor per run via
        :func:`~repro.engine.make_executor`, except ``elastic`` (or
        its ``processpool-elastic`` alias), which resolves to the
        process-wide shared worker fleet
        (:func:`~repro.engine.elastic.shared_elastic_executor`) so
        jobs scale out to out-of-process workers without paying a
        fleet spawn per batch.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        batching: bool = True,
        max_batch: int = 4,
        store: "ReplicatedResultsStore | None" = None,
        recorder: "Recorder | None" = None,
        verify: bool = False,
        executor_factory: "Callable[[str], Executor] | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.batching = batching
        self.max_batch = max_batch
        self.store = store
        self.recorder = recorder
        self.verify = verify
        self.executor_factory = executor_factory
        self._cv = instrumented_condition("service.scheduler.cv")
        self._queue: list[Job] = []
        self._started_per_tenant: dict[str, int] = {}
        self._running = 0
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-w{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------- time
    def _now(self) -> float:
        if self.recorder is not None:
            return self.recorder.now()
        return time.monotonic()

    def _gauge(self, name: str, value: float) -> None:
        if self.recorder is not None:
            self.recorder.gauge(name, value)

    def _count(self, name: str, delta: float = 1.0) -> None:
        if self.recorder is not None:
            self.recorder.count(name, delta)

    # ---------------------------------------------------------- ingress
    def submit(self, job: Job) -> None:
        """Enqueue an admitted job (called by the service front end)."""
        with self._cv:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            job.enqueued_at = self._now()
            self._queue.append(job)
            self._gauge("service.queue_depth", len(self._queue))
            self._count("service.jobs_submitted")
            self._cv.notify()

    def cancel(self, job: Job) -> bool:
        """Cancel a job: immediate while queued, cooperative while
        running (solo runs abort at the next subproblem; batched
        members finish but their results are discarded).  Returns
        False once the job is already terminal."""
        with self._cv:
            if job.state == QUEUED:
                try:
                    self._queue.remove(job)
                except ValueError:  # pragma: no cover - shutdown race
                    pass
                else:
                    self._gauge("service.queue_depth", len(self._queue))
                    self._finish(job, CANCELLED)
                    return True
        # Not claimable from the queue: running, terminal, or mid-
        # transition.  _finish() runs outside _cv, so re-check the
        # state under the job's own condition (which _finish holds) —
        # otherwise a job observed RUNNING here could already be
        # terminal by the time the cancel flag lands, breaking the
        # returns-False-once-terminal contract.
        with job.cond:
            if job.state in TERMINAL_STATES:
                return False
            job.cancel_event.set()
            return True

    def queue_depth(self) -> int:
        with self._cv:
            return len(self._queue)

    def shutdown(self, *, cancel_pending: bool = True) -> None:
        """Stop the workers; optionally cancel still-queued jobs so
        their waiters unblock.  Running jobs finish their current run."""
        with self._cv:
            self._shutdown = True
            pending = list(self._queue) if cancel_pending else []
            if cancel_pending:
                self._queue.clear()
                self._gauge("service.queue_depth", 0)
            self._cv.notify_all()
        for job in pending:
            self._finish(job, CANCELLED)
        for t in self._threads:
            t.join()

    # -------------------------------------------------------- scheduling
    def _claim_batch(self) -> list[Job]:
        """Pick the next lead job (fair share) plus compatible riders.

        Caller holds ``_cv``.  Fair share: the tenant with the fewest
        started jobs goes first, ties broken by submit order; riders
        are taken in queue order regardless of tenant (they cost the
        lead nothing — the run is shared).
        """
        lead = min(
            self._queue,
            key=lambda job: (
                self._started_per_tenant.get(job.spec.tenant, 0),
                job.seq,
            ),
        )
        batch = [lead]
        # Stream jobs always run solo: their run is a whole rolling
        # re-fit loop, not one engine plan a rider could share.
        if (
            self.batching
            and self.max_batch > 1
            and lead.spec.kind != "stream"
        ):
            compat = lead.spec.compat_key()
            for job in self._queue:
                if len(batch) >= self.max_batch:
                    break
                if job is lead:
                    continue
                if job.spec.compat_key() == compat:
                    batch.append(job)
        now = self._now()
        for job in batch:
            self._queue.remove(job)
            self._started_per_tenant[job.spec.tenant] = (
                self._started_per_tenant.get(job.spec.tenant, 0) + 1
            )
            with job.cond:
                job.state = RUNNING
                job.started_at = now
                job.batch_size = len(batch)
        self._running += len(batch)
        self._gauge("service.queue_depth", len(self._queue))
        self._gauge("service.running_jobs", self._running)
        return batch

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._shutdown:
                    self._cv.wait()
                if not self._queue and self._shutdown:
                    return
                batch = self._claim_batch()
            try:
                self._run_batch(batch)
            finally:
                with self._cv:
                    self._running -= len(batch)
                    self._gauge("service.running_jobs", self._running)

    # --------------------------------------------------------- execution
    def _make_executor(self, backend: str) -> "Executor":
        """Executor for one batch run (see ``executor_factory``).

        The elastic backend shares one process-wide worker fleet
        across all jobs and worker threads: runs serialize on the
        fleet's lock, but workers joining or leaving mid-job scale
        every queued tenant up or down at once.
        """
        if self.executor_factory is not None:
            executor = self.executor_factory(backend)
        elif BACKEND_ALIASES.get(backend, backend) == "elastic":
            from repro.engine.elastic import shared_elastic_executor

            executor = shared_elastic_executor()
        else:
            return make_executor(backend, verify=self.verify)
        if self.verify:
            from repro.engine.executors import VerifyingExecutor

            executor = VerifyingExecutor(executor)
        return executor

    def _run_batch(self, batch: list[Job]) -> None:
        if batch[0].spec.kind == "stream":
            self._run_stream_job(batch[0])
            return
        solo = len(batch) == 1
        plan = BatchPlan([(job.id, job.plan) for job in batch])
        hook = JobBatchHook(
            {job.id: job for job in batch}, store=self.store, solo=solo
        )
        backend = batch[0].spec.backend
        self._count("service.batches")
        if not solo:
            self._count("service.batched_jobs", len(batch))
        try:
            executor = self._make_executor(backend)
            outputs = run_plan(plan, executor, [hook])
        except JobCancelled:
            self._finish(batch[0], CANCELLED)
            return
        except BaseException as exc:  # noqa: B036 - worker must survive
            error = self._format_error(exc)
            for job in batch:
                if job.cancel_event.is_set():
                    self._finish(job, CANCELLED)
                else:
                    self._finish(job, FAILED, error=error)
            return
        # Attribution must never escape the worker loop: an exception
        # here (missing output key, store I/O failure) would otherwise
        # kill the worker thread and strand the batch's remaining jobs
        # in RUNNING forever.  Each job fails individually instead.
        for job in batch:
            if job.cancel_event.is_set():
                self._finish(job, CANCELLED)
                continue
            try:
                result = outputs[job.id]
                if self.store is not None:
                    self.store.put(
                        f"{job.store_key}/result", outputs_to_arrays(result)
                    )
            except BaseException as exc:  # noqa: B036 - worker must survive
                self._finish(job, FAILED, error=self._format_error(exc))
                continue
            self._finish(job, DONE, result=result)

    def _run_stream_job(self, job: Job) -> None:
        """Drive one streaming job's rolling re-fit loop.

        The series is replayed tick-by-tick through
        :func:`repro.stream.refit.run_rolling`; each fitted window is
        one progress subproblem, and cooperative cancellation is
        checked at every window boundary (mid-window work completes —
        a window is the streaming unit of atomicity, like a
        subproblem is the batch one).  Under ``verify``, the
        :class:`~repro.engine.executors.VerifyingExecutor` wrapper
        runs PLAN4xx verification on every per-window (warm-started)
        plan before its first stage.
        """
        from repro.stream.refit import StreamConfig, run_rolling

        spec = job.spec
        config = spec.config if spec.config is not None else StreamConfig()
        series = np.asarray(spec.data["series"], dtype=float)
        self._count("service.stream_jobs")

        def on_window(fit: object) -> None:
            job.note_subproblem("stream", recovered=False)
            self._count("service.stream_windows")
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)

        try:
            executor = self._make_executor(spec.backend)
            outputs = run_rolling(
                iter(series),
                config,
                p=series.shape[1],
                executor=executor,
                on_window=on_window,
            )
        except JobCancelled:
            self._finish(job, CANCELLED)
            return
        except BaseException as exc:  # noqa: B036 - worker must survive
            if job.cancel_event.is_set():
                self._finish(job, CANCELLED)
            else:
                self._finish(job, FAILED, error=self._format_error(exc))
            return
        if job.cancel_event.is_set():
            self._finish(job, CANCELLED)
            return
        try:
            if self.store is not None:
                self.store.put(
                    f"{job.store_key}/result", outputs_to_arrays(outputs)
                )
        except BaseException as exc:  # noqa: B036 - worker must survive
            self._finish(job, FAILED, error=self._format_error(exc))
            return
        self._finish(job, DONE, result=outputs)

    @staticmethod
    def _format_error(exc: BaseException) -> str:
        notes = "; ".join(getattr(exc, "__notes__", ()))
        error = f"{type(exc).__name__}: {exc}"
        if notes:
            error += f" [{notes}]"
        return error

    def _finish(
        self,
        job: Job,
        state: str,
        *,
        result: object = None,
        error: str | None = None,
    ) -> None:
        now = self._now()
        job.finished_at = now
        job.finish(state, result=result, error=error)
        self._count(f"service.jobs_{state}")
        if self.recorder is not None:
            enq = job.enqueued_at if job.enqueued_at is not None else now
            start = job.started_at if job.started_at is not None else now
            self.recorder.add_span(
                f"job:{job.id}:queued",
                _DISTRIBUTION,
                enq,
                start,
                type="job_queued",
                job=job.id,
                tenant=job.spec.tenant,
                kind=job.spec.kind,
            )
            self.recorder.add_span(
                f"job:{job.id}:run",
                _COMPUTATION,
                start,
                now,
                type="job_run",
                job=job.id,
                tenant=job.spec.tenant,
                kind=job.spec.kind,
                backend=job.spec.backend,
                state=state,
                batch_size=job.batch_size,
            )
