"""Replicated, idempotent results store for the UoI service.

The service's durable half: fit results and per-subproblem payloads
land in a :class:`ReplicatedResultsStore` — a set of *shards* (keys
hash-partitioned) each held by ``replication`` :class:`ReplicaNode`
peers, every peer backed by one atomic checksummed
:class:`~repro.resilience.checkpoint.CheckpointStore`.  The
replication protocol follows the distributed-database exemplar in
SNIPPETS.md (multi-leader LWW with logical clocks):

* **op_id** — every replicated write carries a unique identifier
  ``"<node>:<seq>"`` minted by the originating node from a local
  monotone sequence.
* **Version vectors** — each node keeps ``last_seen``, the highest
  counter applied per origin (plus an internal gap set so deliveries
  reordered *within* one origin are still each applied exactly once).
  An op whose counter was already applied is ignored, which makes
  :meth:`ReplicaNode.apply` **idempotent**: replaying a write stream —
  duplicates, reorderings and all — onto a fresh node reconstructs
  identical state.
* **LWW by Lamport clock** — nodes stamp writes from a
  :class:`LamportClock`; a key's visible value is the op with the
  largest ``(timestamp, origin)`` pair, a total order, so conflict
  resolution is deterministic and order-independent.  Deletions
  propagate as *tombstones* (ops with no arrays) under the same rule.

Replica state persists in two layers, so a crashed node reopens
exactly where it stopped — this is what crash-safe job resume in
:mod:`repro.service.scheduler` leans on:

* **Op journal** — every applied op appends one metadata line to
  ``OPLOG.jsonl`` (O(1) per op), and its arrays land in the node's
  :class:`CheckpointStore` under an op-scoped record
  (``__op__/<origin>:<seq>``).  The journal *is* the node's write
  stream: anti-entropy replay to a recovering peer works across
  restarts, not just within one process lifetime.
* **Snapshot** — the derived state (version vector, per-key winner
  index, clock) is written to a ``REPLICA.json`` sidecar with the
  same atomic write-rename protocol as the checkpoint manifest, every
  :data:`SNAPSHOT_EVERY` applies rather than on each one (a per-op
  full-index rewrite would cost O(total keys) per write).  Reopening
  loads the snapshot and replays the journal suffix it does not
  cover, reconstructing identical state after a crash at any point.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.analysis.dynamic import instrumented_lock, instrumented_rlock
from repro.resilience.checkpoint import CheckpointStore

__all__ = [
    "LamportClock",
    "WriteOp",
    "ReplicaNode",
    "ReplicatedResultsStore",
    "parse_op_id",
]

REPLICA_STATE_NAME = "REPLICA.json"
OPLOG_NAME = "OPLOG.jsonl"
TOPOLOGY_NAME = "STORE.json"
STATE_FORMAT = 2
#: Applies between REPLICA.json snapshots (journal suffix replay
#: covers the gap on reopen).
SNAPSHOT_EVERY = 64


def _op_record_key(origin: str, seq: int) -> str:
    """CheckpointStore record key holding one op's array payload."""
    return f"__op__/{origin}:{seq}"


def parse_op_id(op_id: str) -> tuple[str, int]:
    """Split ``"<node>:<seq>"`` into its origin and counter."""
    origin, sep, seq = op_id.rpartition(":")
    if not sep or not origin:
        raise ValueError(f"malformed op_id {op_id!r} (expected '<node>:<seq>')")
    return origin, int(seq)


class LamportClock:
    """Logical clock: ``tick`` for local events, ``observe`` on receive."""

    def __init__(self, time: int = 0) -> None:
        self._time = int(time)
        self._lock = instrumented_lock("service.store.clock")

    @property
    def time(self) -> int:
        with self._lock:
            return self._time

    def tick(self) -> int:
        """Advance for a local event; returns the new timestamp."""
        with self._lock:
            self._time += 1
            return self._time

    def observe(self, ts: int) -> int:
        """Merge a remote timestamp (``max`` rule); returns the clock."""
        with self._lock:
            self._time = max(self._time, int(ts))
            return self._time


@dataclass(frozen=True)
class WriteOp:
    """One replicated write (``arrays=None`` is a delete tombstone)."""

    op_id: str
    key: str
    ts: int
    arrays: dict[str, np.ndarray] | None = field(repr=False, default=None)

    @property
    def origin(self) -> str:
        return parse_op_id(self.op_id)[0]

    @property
    def seq(self) -> int:
        return parse_op_id(self.op_id)[1]


def _digest_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """Stable content hash of a record's arrays (name/dtype/shape/bytes)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


class ReplicaNode:
    """One replica: a CheckpointStore plus the replication metadata.

    All mutations are serialized by an internal lock (worker threads
    of the service share the nodes).  Every applied op durably appends
    one line to the ``OPLOG.jsonl`` journal and saves its arrays under
    an op-scoped store record; the derived state snapshot
    (``REPLICA.json``) is rewritten every :data:`SNAPSHOT_EVERY`
    applies.  Reopening the directory loads the snapshot, replays the
    journal suffix it does not cover, and resumes with the same
    version vector, winner index and write stream.
    """

    def __init__(self, root: str | os.PathLike, name: str) -> None:
        self.name = name
        self.root = Path(root)
        self.store = CheckpointStore(self.root)
        self._lock = instrumented_rlock("service.store.replica")
        #: applied op metadata in arrival order (mirrors OPLOG.jsonl);
        #: each entry is {"op_id", "key", "ts", "deleted"}.
        self._journal: list[dict] = []
        self._next_seq = 1
        self._last_seen: dict[str, int] = {}
        self._missing: dict[str, set[int]] = {}
        #: key -> winning op metadata {"ts", "origin", "seq", "deleted"}.
        self._index: dict[str, dict] = {}
        self.clock = LamportClock()
        self._since_snapshot = 0
        covered = 0
        state_path = self.root / REPLICA_STATE_NAME
        if state_path.exists():
            with open(state_path, "r", encoding="utf-8") as fh:
                state = json.load(fh)
            if state.get("format") != STATE_FORMAT:
                raise ValueError(
                    f"unsupported replica state format "
                    f"{state.get('format')!r} in {state_path}"
                )
            self._next_seq = int(state["next_seq"])
            self._last_seen = {k: int(v) for k, v in state["last_seen"].items()}
            self._missing = {
                k: set(int(s) for s in v) for k, v in state["missing"].items()
            }
            self._index = dict(state["index"])
            self.clock = LamportClock(int(state["clock"]))
            covered = int(state.get("journal", 0))
        self._journal = self._read_journal()
        for entry in self._journal[covered:]:
            self._replay_entry(entry)
        if not state_path.exists():
            # Pin the format sidecar up front so a reopen can always
            # tell a fresh node from an incompatible one.
            self._save_state()

    # ------------------------------------------------------------ state
    def _read_journal(self) -> list[dict]:
        """Parse OPLOG.jsonl, tolerating one torn trailing line."""
        path = self.root / OPLOG_NAME
        if not path.exists():
            return []
        entries: list[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one partial
                    # final line; everything before it is intact.
                    break
        return entries

    def _append_journal(self, entry: dict) -> None:
        with open(self.root / OPLOG_NAME, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()

    def _replay_entry(self, entry: dict) -> None:
        """Re-derive state from one journal line (reopen path)."""
        origin, seq = parse_op_id(entry["op_id"])
        if self._applied(origin, seq):  # pragma: no cover - stale journal
            return
        self._mark_applied(origin, seq)
        self.clock.observe(entry["ts"])
        if origin == self.name:
            self._next_seq = max(self._next_seq, seq + 1)
        self._update_index(
            entry["key"], entry["ts"], origin, seq, entry["deleted"]
        )

    def _update_index(
        self, key: str, ts: int, origin: str, seq: int, deleted: bool
    ) -> None:
        cur = self._index.get(key)
        if cur is None or (ts, origin) > (cur["ts"], cur["origin"]):
            self._index[key] = {
                "ts": ts,
                "origin": origin,
                "seq": seq,
                "deleted": deleted,
            }

    def _save_state(self) -> None:
        state = {
            "format": STATE_FORMAT,
            "name": self.name,
            "next_seq": self._next_seq,
            "clock": self.clock.time,
            "journal": len(self._journal),
            "last_seen": dict(sorted(self._last_seen.items())),
            "missing": {
                k: sorted(v) for k, v in sorted(self._missing.items()) if v
            },
            "index": {k: self._index[k] for k in sorted(self._index)},
        }
        tmp = self.root / (REPLICA_STATE_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=1, sort_keys=True)
        os.replace(tmp, self.root / REPLICA_STATE_NAME)
        self._since_snapshot = 0

    @property
    def last_seen(self) -> dict[str, int]:
        """The version vector: highest counter applied per origin."""
        with self._lock:
            return dict(self._last_seen)

    def _applied(self, origin: str, seq: int) -> bool:
        watermark = self._last_seen.get(origin, 0)
        if seq > watermark:
            return False
        return seq not in self._missing.get(origin, ())

    def _mark_applied(self, origin: str, seq: int) -> None:
        watermark = self._last_seen.get(origin, 0)
        if seq > watermark:
            if seq > watermark + 1:
                self._missing.setdefault(origin, set()).update(
                    range(watermark + 1, seq)
                )
            self._last_seen[origin] = seq
        else:
            gaps = self._missing.get(origin)
            if gaps is not None:
                gaps.discard(seq)
                if not gaps:
                    del self._missing[origin]

    # ------------------------------------------------------------ writes
    def local_write(
        self, key: str, arrays: dict[str, np.ndarray] | None
    ) -> WriteOp:
        """Originate a write (or a tombstone) on this node; returns the op.

        The returned op is what peers :meth:`apply`; applying it again
        anywhere — including here — is a suppressed duplicate.
        """
        with self._lock:
            ts = self.clock.tick()
            seq = self._next_seq
            self._next_seq += 1
            op = WriteOp(f"{self.name}:{seq}", key, ts, arrays)
            self.apply(op)
            return op

    def apply(self, op: WriteOp) -> bool:
        """Apply one replicated op; returns False for duplicates.

        Idempotency: the ``(origin, seq)`` of ``op.op_id`` is checked
        against the version vector first — an already-applied op is
        ignored.  Visibility: the op wins its key iff its
        ``(ts, origin)`` exceeds the current winner's (LWW).
        """
        origin, seq = parse_op_id(op.op_id)
        with self._lock:
            if self._applied(origin, seq):
                return False
            deleted = op.arrays is None
            # Durability order: arrays first (an orphan record is
            # harmless), then the journal line (the commit point — a
            # crash before it means the op was simply never applied
            # and replication will redeliver it).
            if not deleted:
                self.store.save(_op_record_key(origin, seq), op.arrays)
            entry = {
                "op_id": op.op_id,
                "key": op.key,
                "ts": op.ts,
                "deleted": deleted,
            }
            self._append_journal(entry)
            self._journal.append(entry)
            self._mark_applied(origin, seq)
            self.clock.observe(op.ts)
            self._update_index(op.key, op.ts, origin, seq, deleted)
            self._since_snapshot += 1
            if self._since_snapshot >= SNAPSHOT_EVERY:
                self._save_state()
            return True

    # ------------------------------------------------------------- reads
    @property
    def log(self) -> list[WriteOp]:
        """Applied ops in arrival order — the node's write stream.

        Materialized from the durable journal (arrays load from the
        op-scoped store records), so it survives process restarts and
        anti-entropy replay to a recovering peer still ships the full
        history after a reopen.
        """
        with self._lock:
            return [self._materialize(entry) for entry in self._journal]

    def _materialize(self, entry: dict) -> WriteOp:
        arrays = None
        if not entry["deleted"]:
            origin, seq = parse_op_id(entry["op_id"])
            arrays = self.store.load(_op_record_key(origin, seq))
        return WriteOp(entry["op_id"], entry["key"], entry["ts"], arrays)

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """The key's visible arrays, or None (absent / tombstoned)."""
        with self._lock:
            entry = self._index.get(key)
            if entry is None or entry["deleted"]:
                return None
            return self.store.load(
                _op_record_key(entry["origin"], entry["seq"])
            )

    def keys(self) -> list[str]:
        """Visible (non-tombstoned) keys, sorted."""
        with self._lock:
            return sorted(
                k for k, e in self._index.items() if not e["deleted"]
            )

    def state_digest(self) -> str:
        """Content hash of the node's replicated state.

        Covers the version vector, the per-key winner metadata and the
        winning array bytes — everything replication is responsible
        for — and deliberately *not* the op log, whose order is
        delivery-dependent.  Two nodes converged iff digests match.
        """
        with self._lock:
            h = hashlib.sha256()
            h.update(
                json.dumps(
                    {
                        "last_seen": dict(sorted(self._last_seen.items())),
                        "missing": {
                            k: sorted(v)
                            for k, v in sorted(self._missing.items())
                            if v
                        },
                        "index": {k: self._index[k] for k in sorted(self._index)},
                    },
                    sort_keys=True,
                ).encode()
            )
            for key in sorted(self._index):
                entry = self._index[key]
                if not entry["deleted"]:
                    arrays = self.store.load(
                        _op_record_key(entry["origin"], entry["seq"])
                    )
                    h.update(_digest_arrays(arrays).encode())
            return h.hexdigest()


class ReplicatedResultsStore:
    """Sharded, replicated, idempotent store of named array records.

    Parameters
    ----------
    root:
        Directory holding the shard/replica tree (created if missing;
        reopening an existing root must match its pinned topology).
    nshards:
        Number of key-hash partitions.
    replication:
        Replica nodes per shard; every write is applied to all of them.

    Writes originate on a shard's primary (replica 0), which mints the
    ``op_id``, and fan out to the peers via :meth:`ReplicaNode.apply`.
    Reads try the primary first and fall back to peers, so a wiped
    replica degrades reads to its siblings instead of failing them.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        nshards: int = 2,
        replication: int = 2,
    ) -> None:
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        topo_path = self.root / TOPOLOGY_NAME
        topo = {"format": STATE_FORMAT, "nshards": nshards, "replication": replication}
        if topo_path.exists():
            with open(topo_path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if existing != topo:
                raise ValueError(
                    f"store {self.root} has topology {existing!r}, "
                    f"reopened with {topo!r}: resharding is not supported"
                )
        else:
            tmp = self.root / (TOPOLOGY_NAME + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(topo, fh, indent=1, sort_keys=True)
            os.replace(tmp, topo_path)
        self.nshards = nshards
        self.replication = replication
        self.nodes: list[list[ReplicaNode]] = [
            [
                ReplicaNode(
                    self.root / f"shard{s}" / f"replica{r}", name=f"s{s}r{r}"
                )
                for r in range(replication)
            ]
            for s in range(nshards)
        ]

    # ---------------------------------------------------------- routing
    def shard_of(self, key: str) -> int:
        """Stable hash partition of ``key`` (sha1, not PYTHONHASHSEED)."""
        digest = hashlib.sha1(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.nshards

    def replicas(self, key: str) -> list[ReplicaNode]:
        return self.nodes[self.shard_of(key)]

    # ------------------------------------------------------------ writes
    def put(self, key: str, arrays: dict[str, np.ndarray]) -> str:
        """Replicated write; returns the op's ``op_id``."""
        if arrays is None:
            raise ValueError("put() needs arrays; use delete() for tombstones")
        replicas = self.replicas(key)
        op = replicas[0].local_write(key, dict(arrays))
        for peer in replicas[1:]:
            peer.apply(op)
        return op.op_id

    def delete(self, key: str) -> str:
        """Replicated tombstone; returns the op's ``op_id``."""
        replicas = self.replicas(key)
        op = replicas[0].local_write(key, None)
        for peer in replicas[1:]:
            peer.apply(op)
        return op.op_id

    # ------------------------------------------------------------- reads
    def get(self, key: str) -> dict[str, np.ndarray] | None:
        for node in self.replicas(key):
            value = node.get(key)
            if value is not None:
                return value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> list[str]:
        out: set[str] = set()
        for shard in self.nodes:
            out.update(shard[0].keys())
        return sorted(out)

    # ------------------------------------------------------ replication
    def write_stream(self, shard: int | None = None) -> list[WriteOp]:
        """The applied-op stream of each shard's primary.

        This is what anti-entropy would ship to a recovering peer;
        :meth:`replay` consumes it.  ``shard=None`` concatenates every
        shard's stream.
        """
        shards = range(self.nshards) if shard is None else (shard,)
        out: list[WriteOp] = []
        for s in shards:
            with self.nodes[s][0]._lock:
                out.extend(self.nodes[s][0].log)
        return out

    def replay(self, ops: Iterable[WriteOp]) -> int:
        """Apply a write stream to every replica of each op's shard.

        Duplicates are suppressed by the version vectors and conflicts
        resolve LWW, so replaying a stream — in any order, any number
        of times — onto a fresh store with the same topology
        reconstructs identical state (see :meth:`state_digest`).
        Returns the number of ops newly applied on the primaries.
        """
        applied = 0
        for op in ops:
            replicas = self.replicas(op.key)
            if replicas[0].apply(op):
                applied += 1
            for peer in replicas[1:]:
                peer.apply(op)
        return applied

    def state_digest(self) -> str:
        """Combined content hash over every replica (topology-ordered)."""
        h = hashlib.sha256()
        for shard in self.nodes:
            for node in shard:
                h.update(node.name.encode())
                h.update(node.state_digest().encode())
        return h.hexdigest()

    def converged(self) -> bool:
        """True iff every shard's replicas carry identical state."""
        for shard in self.nodes:
            digests = {node.state_digest() for node in shard}
            if len(digests) > 1:
                return False
        return True
