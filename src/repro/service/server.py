"""Line-JSON socket transport for the service, plus the demo driver.

One request (or one stream subscription) per connection; every frame
is a single JSON line.  ndarrays cross the wire as
``{"__ndarray__": <base64 bytes>, "dtype": ..., "shape": ...}`` so
results decode bitwise — the transport never rounds through text
floats.  The verbs mirror :class:`~repro.service.service.Service`:

``submit`` / ``status`` / ``jobs`` / ``results`` / ``cancel`` →
one ``{"ok": ...}`` response line; ``stream`` → one
``{"ok": true, "event": ...}`` line per progress snapshot, ending
with the event carrying ``"final": true``; errors →
``{"ok": false, "error": <type>, "message": ...}``.

:func:`run_demo` is the acceptance driver used by ``repro serve
--demo`` and CI: it boots a server, pushes concurrent mixed
LASSO/VAR jobs through socket clients, and checks every result is
bitwise identical to a direct ``UoILasso.fit`` / ``UoIVar.fit``.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
from types import TracebackType
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.config import UoILassoConfig, UoIVarConfig
from repro.service.jobs import (
    AdmissionError,
    JobCancelled,
    JobSpec,
    UnknownJobError,
    outputs_to_arrays,
)
from repro.service.service import Service

# The ndarray codec and typed error mapping are shared with the
# elastic worker transport (repro.engine.elastic) via repro.wire —
# one codec, so the two line-JSON protocols can never drift.
from repro.wire import (
    decode_array,
    decode_arrays as _decode_arrays,
    encode_array,
    encode_arrays as _encode_arrays,
    error_map,
    error_to_wire,
    raise_from_wire,
)

__all__ = [
    "ServiceServer",
    "SocketServiceClient",
    "encode_array",
    "decode_array",
    "config_from_wire",
    "run_demo",
]


def config_from_wire(kind: str, cfg: Mapping[str, Any] | None) -> Any:
    """Config kwargs dict -> the family's config dataclass.

    For ``"var"``, a nested ``"lasso"`` dict becomes the inner
    :class:`UoILassoConfig`; for ``"stream"``, a nested ``"var"`` dict
    (itself possibly nesting ``"lasso"``) becomes the inner
    :class:`UoIVarConfig` of a
    :class:`~repro.stream.refit.StreamConfig`.
    """
    if cfg is None:
        return None
    cfg = dict(cfg)

    def _var_config(var_cfg: dict) -> UoIVarConfig:
        lasso = var_cfg.pop("lasso", None)
        if isinstance(lasso, Mapping):
            var_cfg["lasso"] = UoILassoConfig(**lasso)
        return UoIVarConfig(**var_cfg)

    try:
        if kind == "var":
            return _var_config(cfg)
        if kind == "stream":
            from repro.stream.refit import StreamConfig

            var = cfg.pop("var", None)
            if isinstance(var, Mapping):
                cfg["var"] = _var_config(dict(var))
            return StreamConfig(**cfg)
        return UoILassoConfig(**cfg)
    except TypeError as exc:
        raise AdmissionError(f"invalid {kind} config: {exc}") from exc


def config_to_wire(config: Any) -> dict | None:
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return dict(config)


# ---------------------------------------------------------------------------
# server
# ---------------------------------------------------------------------------
class ServiceServer:
    """Threaded line-JSON TCP front end over a :class:`Service`.

    One handler thread per connection; a connection carries either a
    single request/response exchange or one progress stream.  Binding
    ``port=0`` picks an ephemeral port (see :attr:`address`).
    """

    def __init__(
        self, service: Service, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(32)
        self.address: tuple[str, int] = self._sock.getsockname()[:2]
        self._stopped = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-svc-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------ accept
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            rfile = conn.makefile("r", encoding="utf-8")
            wfile = conn.makefile("w", encoding="utf-8")
            line = rfile.readline()
            if not line.strip():
                return

            def send(obj: dict) -> None:
                wfile.write(json.dumps(obj) + "\n")
                wfile.flush()

            try:
                request = json.loads(line)
                self._dispatch(request, send)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-stream
            except Exception as exc:  # noqa: BLE001 - wire boundary
                try:
                    send(error_to_wire(exc))
                except OSError:
                    pass

    def _dispatch(self, request: dict, send: Any) -> None:
        op = request.get("op")
        svc = self.service
        if op == "ping":
            send({"ok": True, "pong": True})
        elif op == "submit":
            kind = request["kind"]
            spec = JobSpec(
                kind=kind,
                data=_decode_arrays(request.get("data", {})),
                config=config_from_wire(kind, request.get("config")),
                backend=request.get("backend", "serial"),
                tenant=request.get("tenant", "default"),
                idempotency_key=request.get("idempotency_key"),
                label=request.get("label"),
            )
            send({"ok": True, "job_id": svc.submit(spec)})
        elif op == "status":
            send({"ok": True, "status": svc.status(request["job_id"])})
        elif op == "jobs":
            send({"ok": True, "jobs": svc.jobs()})
        elif op == "results":
            outputs = svc.results(request["job_id"], request.get("timeout"))
            send(
                {
                    "ok": True,
                    "outputs": _encode_arrays(outputs_to_arrays(outputs)),
                }
            )
        elif op == "cancel":
            send({"ok": True, "cancelled": svc.cancel(request["job_id"])})
        elif op == "stream":
            for event in svc.stream_progress(request["job_id"]):
                send({"ok": True, "event": event})
        else:
            send(
                {
                    "ok": False,
                    "error": "UnknownOp",
                    "message": f"unknown op {op!r}",
                }
            )

    # --------------------------------------------------------- lifecycle
    def stop(self) -> None:
        self._stopped.set()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------
class SocketServiceClient:
    """Line-JSON client; same verbs as the in-process ServiceClient.

    Connection-per-request keeps the client trivially thread-safe and
    lets a long ``results`` wait or a progress stream never block
    other calls.
    """

    #: Exceptions re-raised by error type name from the wire
    #: (the shared defaults plus the service's own types).
    _ERRORS: dict[str, type[Exception]] = error_map(
        AdmissionError, UnknownJobError, JobCancelled
    )

    def __init__(self, host: str, port: int, *, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _raise(self, response: dict) -> None:
        raise_from_wire(response, self._ERRORS)

    def _call(self, request: dict) -> dict:
        with self._connect() as conn:
            wfile = conn.makefile("w", encoding="utf-8")
            rfile = conn.makefile("r", encoding="utf-8")
            wfile.write(json.dumps(request) + "\n")
            wfile.flush()
            line = rfile.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            self._raise(response)
        return response

    # --------------------------------------------------------------- API
    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def submit(
        self,
        kind: str,
        data: Mapping[str, np.ndarray],
        *,
        config: Any = None,
        backend: str = "serial",
        tenant: str = "default",
        idempotency_key: str | None = None,
        label: str | None = None,
    ) -> str:
        response = self._call(
            {
                "op": "submit",
                "kind": kind,
                "data": _encode_arrays(data),
                "config": config_to_wire(config),
                "backend": backend,
                "tenant": tenant,
                "idempotency_key": idempotency_key,
                "label": label,
            }
        )
        return response["job_id"]

    def status(self, job_id: str) -> dict:
        return self._call({"op": "status", "job_id": job_id})["status"]

    def jobs(self) -> list[dict]:
        return self._call({"op": "jobs"})["jobs"]

    def results(
        self, job_id: str, timeout: float | None = None
    ) -> dict[str, np.ndarray]:
        """Named result arrays (``coef``, ``supports``, ...), decoded
        bitwise from the wire."""
        response = self._call(
            {"op": "results", "job_id": job_id, "timeout": timeout}
        )
        return _decode_arrays(response["outputs"])

    def cancel(self, job_id: str) -> bool:
        return bool(self._call({"op": "cancel", "job_id": job_id})["cancelled"])

    def stream_progress(self, job_id: str) -> Iterator[dict]:
        with self._connect() as conn:
            wfile = conn.makefile("w", encoding="utf-8")
            rfile = conn.makefile("r", encoding="utf-8")
            wfile.write(json.dumps({"op": "stream", "job_id": job_id}) + "\n")
            wfile.flush()
            for line in rfile:
                if not line.strip():
                    continue
                response = json.loads(line)
                if not response.get("ok"):
                    self._raise(response)
                event = response["event"]
                yield event
                if event.get("final"):
                    return


# ---------------------------------------------------------------------------
# demo / acceptance driver
# ---------------------------------------------------------------------------
def demo_workload(seed: int = 7) -> dict[str, Any]:
    """Small deterministic mixed workload: one LASSO and one VAR
    problem plus deliberately modest configs (the demo exercises
    concurrency, not solver scale)."""
    rng = np.random.default_rng(seed)
    n, p = 48, 8
    X = rng.normal(size=(n, p))
    beta = np.zeros(p)
    beta[:3] = (1.5, -2.0, 1.0)
    y = X @ beta + 0.1 * rng.normal(size=n)
    series = np.zeros((60, 3))
    series[0] = rng.normal(size=3)
    A = np.array([[0.5, 0.2, 0.0], [0.0, 0.4, 0.0], [0.0, 0.3, 0.5]])
    for t in range(1, 60):
        series[t] = A @ series[t - 1] + 0.1 * rng.normal(size=3)
    lasso_cfg = UoILassoConfig(
        n_lambdas=6,
        n_selection_bootstraps=6,
        n_estimation_bootstraps=6,
        max_iter=120,
        random_state=seed,
    )
    var_cfg = UoIVarConfig(
        order=1,
        lasso=UoILassoConfig(
            n_lambdas=4,
            n_selection_bootstraps=4,
            n_estimation_bootstraps=4,
            max_iter=120,
            random_state=seed,
        ),
    )
    return {
        "lasso": {"data": {"X": X, "y": y}, "config": lasso_cfg},
        "var": {"data": {"series": series}, "config": var_cfg},
    }


def run_demo(
    n_jobs: int = 8,
    *,
    workers: int = 2,
    batching: bool = True,
    max_batch: int = 4,
    backend: str = "serial",
    store_root: str | None = None,
    telemetry_dir: str | None = None,
    seed: int = 7,
) -> dict[str, Any]:
    """Drive ``n_jobs`` concurrent mixed LASSO/VAR jobs through socket
    clients and verify bitwise identity against direct fits.

    Returns a summary dict (``jobs``, ``identical``, per-job states,
    ``manifest`` path when ``telemetry_dir`` is given).  CI runs this
    via ``repro serve --demo 8``.
    """
    from repro.core.uoi_lasso import UoILasso
    from repro.core.uoi_var import UoIVar

    workload = demo_workload(seed)

    # Reference results, computed once per family by direct estimator
    # fits — the service must reproduce these bitwise.
    ref_lasso = UoILasso(workload["lasso"]["config"]).fit(
        workload["lasso"]["data"]["X"], workload["lasso"]["data"]["y"]
    )
    ref_var = UoIVar(workload["var"]["config"]).fit(
        workload["var"]["data"]["series"]
    )
    reference = {
        "lasso": {
            "coef": np.asarray(ref_lasso.coef_),
            "supports": np.asarray(ref_lasso.supports_),
            "losses": np.asarray(ref_lasso.losses_),
            "winners": np.asarray(ref_lasso.winners_),
            "lambdas": np.asarray(ref_lasso.lambdas_),
        },
        "var": {
            "coef": np.asarray(ref_var.vec_coef_),
            "supports": np.asarray(ref_var.supports_),
            "losses": np.asarray(ref_var.losses_),
            "winners": np.asarray(ref_var.winners_),
            "lambdas": np.asarray(ref_var.lambdas_),
        },
    }

    service = Service(
        workers=workers,
        batching=batching,
        max_batch=max_batch,
        store_root=store_root,
    )
    results: list[dict] = [{} for _ in range(n_jobs)]

    def drive(i: int) -> None:
        kind = "lasso" if i % 2 == 0 else "var"
        client = SocketServiceClient(*server.address)
        entry = workload[kind]
        try:
            job_id = client.submit(
                kind,
                entry["data"],
                config=entry["config"],
                tenant=f"tenant{i % 3}",
                backend=backend,
                label=f"demo-{i}",
            )
            events = sum(1 for _ in client.stream_progress(job_id))
            outputs = client.results(job_id, timeout=300.0)
            identical = all(
                np.array_equal(outputs[name], reference[kind][name])
                for name in reference[kind]
            )
            results[i] = {
                "job_id": job_id,
                "kind": kind,
                "state": client.status(job_id)["state"],
                "events": events,
                "identical": identical,
            }
        except Exception as exc:  # noqa: BLE001 - demo must report, not die
            results[i] = {"kind": kind, "error": f"{type(exc).__name__}: {exc}"}

    with service, ServiceServer(service) as server:
        threads = [
            threading.Thread(target=drive, args=(i,), name=f"demo-client-{i}")
            for i in range(n_jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        manifest = None
        if telemetry_dir is not None:
            manifest = service.export_manifest(
                f"{telemetry_dir}/service_manifest.jsonl"
            )
    summary = {
        "jobs": n_jobs,
        "done": sum(1 for r in results if r.get("state") == "done"),
        "identical": all(r.get("identical") for r in results),
        "errors": [r["error"] for r in results if "error" in r],
        "per_job": results,
        "manifest": manifest,
    }
    return summary
