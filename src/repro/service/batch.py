"""Cross-job batching: many member plans composed into one engine run.

:class:`BatchPlan` is the scheduler's shared-run currency — a
:class:`~repro.engine.plan.UoIPlan` whose chains are the concatenation
of its members' chains, with every checkpoint key prefixed by the
owning member's id (``"<member>|<key>"``).  Because chains are never
merged *across* members, each member's ``run_chain`` and ``reduce``
see byte-for-byte the inputs a solo run would hand them: a batched
fit is bitwise identical to running each job alone, on any backend.
The batching win is purely orchestration — one executor invocation
(one process-pool spin-up per stage, one fully-packed chain list)
amortized over every member instead of paid per job.

The prefix also restores the engine's global invariants for the
composite: PLAN401 key uniqueness holds across members by
construction, and :meth:`BatchPlan.reduce` demultiplexes the stage's
result table back to each member in fixed member order, so float
summation order inside every member is untouched.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from repro.engine.plan import Subproblem, UoIPlan

__all__ = ["BatchPlan", "MEMBER_SEP"]

#: Separator between a member id and the member-local checkpoint key.
MEMBER_SEP = "|"


class BatchPlan(UoIPlan):
    """Composite plan attributing each (member, subproblem) to its owner.

    Parameters
    ----------
    members:
        ``(member_id, plan)`` pairs.  Ids must be unique, free of
        ``"|"``, and all plans must declare the same stage sequence
        (the scheduler only batches compatible jobs, which guarantees
        this).

    ``finalize`` returns ``{member_id: member.finalize()}``.

    The composite intentionally does *not* expose ``B1``/``B2``/``q``:
    its (bootstrap, λ) grid is the disjoint union of the members', so
    per-member coverage is what `verify_plan` proves (each member plan
    is verified at admission); the composite contributes key
    uniqueness and chain ordering.
    """

    kind = "service_batch"

    def __init__(self, members: list[tuple[str, UoIPlan]]) -> None:
        if not members:
            raise ValueError("BatchPlan needs at least one member")
        seen: set[str] = set()
        stages: tuple[str, ...] | None = None
        for member_id, plan in members:
            if MEMBER_SEP in member_id:
                raise ValueError(
                    f"member id {member_id!r} must not contain {MEMBER_SEP!r}"
                )
            if member_id in seen:
                raise ValueError(f"duplicate member id {member_id!r}")
            seen.add(member_id)
            if stages is None:
                stages = tuple(plan.stages)
            elif tuple(plan.stages) != stages:
                raise ValueError(
                    f"member {member_id!r} stages {plan.stages!r} differ "
                    f"from the batch's {stages!r}: jobs are not compatible"
                )
        self.members = list(members)
        self.stages = stages if stages is not None else ()
        self._by_id = dict(members)

    # -------------------------------------------------------------- API
    def meta(self) -> dict:
        return {
            "kind": self.kind,
            "members": {mid: plan.meta() for mid, plan in self.members},
        }

    def member(self, member_id: str) -> UoIPlan:
        return self._by_id[member_id]

    @staticmethod
    def split_key(key: str) -> tuple[str, str]:
        """``"<member>|<inner key>"`` -> ``(member, inner key)``."""
        member_id, sep, inner = key.partition(MEMBER_SEP)
        if not sep:
            raise ValueError(f"key {key!r} carries no member prefix")
        return member_id, inner

    def chains(self, stage: str) -> list[list[Subproblem]]:
        out: list[list[Subproblem]] = []
        for member_id, plan in self.members:
            for chain in plan.chains(stage):
                out.append(
                    [
                        dataclasses.replace(
                            task,
                            key=f"{member_id}{MEMBER_SEP}{task.key}",
                            chain=len(out),
                        )
                        for task in chain
                    ]
                )
        return out

    def run_chain(
        self,
        stage: str,
        tasks: list[Subproblem],
        recovered: dict[str, dict[str, np.ndarray]],
        emit: Callable[[Subproblem, dict[str, np.ndarray]], None],
    ) -> None:
        # A chain belongs to exactly one member (chains are concatenated,
        # never merged), so the whole task list demultiplexes at once.
        member_id, _ = self.split_key(tasks[0].key)
        plan = self._by_id[member_id]
        inner_tasks = []
        outer_by_inner_key: dict[str, Subproblem] = {}
        for task in tasks:
            tid, inner_key = self.split_key(task.key)
            if tid != member_id:
                raise ValueError(
                    f"chain mixes members {member_id!r} and {tid!r}"
                )
            inner = dataclasses.replace(task, key=inner_key)
            inner_tasks.append(inner)
            outer_by_inner_key[inner_key] = task
        inner_recovered = {
            self.split_key(key)[1]: payload for key, payload in recovered.items()
        }

        def inner_emit(
            task: Subproblem, payload: dict[str, np.ndarray]
        ) -> None:
            emit(outer_by_inner_key[task.key], payload)

        plan.run_chain(stage, inner_tasks, inner_recovered, inner_emit)

    def reduce(
        self, stage: str, results: dict[str, dict[str, np.ndarray]]
    ) -> None:
        split: dict[str, dict[str, dict[str, np.ndarray]]] = {
            member_id: {} for member_id, _ in self.members
        }
        for key, payload in results.items():
            member_id, inner_key = self.split_key(key)
            split[member_id][inner_key] = payload
        # Fixed member order: each member consumes exactly the table a
        # solo run would, so its reduction arithmetic is bit-identical.
        for member_id, plan in self.members:
            plan.reduce(stage, split[member_id])

    def finalize(self) -> dict[str, Any]:
        return {member_id: plan.finalize() for member_id, plan in self.members}

    def estimate_flops(self) -> dict[str, float]:
        out = {stage: 0.0 for stage in self.stages}
        for _, plan in self.members:
            for stage, flops in plan.estimate_flops().items():
                out[stage] = out.get(stage, 0.0) + flops
        return out
