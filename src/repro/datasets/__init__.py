"""Synthetic dataset generators.

The paper evaluates on (a) synthetic regression/VAR data spanning
16 GB–8 TB problem sizes, (b) S&P-500 stock closes (50- and
470-company subsets, 2013–2016) and (c) a non-human-primate reaching
dataset (192 electrodes, 51,111 samples).  The real datasets are not
redistributable, so :mod:`repro.datasets.finance` and
:mod:`repro.datasets.neuro` generate statistically analogous panels
with the *same shapes and dependence structure* — including a planted
ground-truth Granger network, which the originals cannot offer —
while :mod:`repro.datasets.regression` and
:mod:`repro.datasets.var_synthetic` reproduce the synthetic families.
"""

from repro.datasets.regression import make_sparse_regression
from repro.datasets.var_synthetic import make_sparse_var, random_sparse_coefs
from repro.datasets.finance import (
    make_stock_panel,
    weekly_closes,
    first_differences,
    sp50_tickers,
    synthetic_tickers,
)
from repro.datasets.neuro import make_spike_counts
from repro.datasets.io import (
    make_regression_file,
    make_var_file,
    write_regression_file,
    write_var_file,
    INPUT_DATASET,
    SERIES_DATASET,
    TRUTH_DATASET,
)

__all__ = [
    "make_sparse_regression",
    "make_sparse_var",
    "random_sparse_coefs",
    "make_stock_panel",
    "weekly_closes",
    "first_differences",
    "sp50_tickers",
    "synthetic_tickers",
    "make_spike_counts",
    "make_regression_file",
    "make_var_file",
    "write_regression_file",
    "write_var_file",
    "INPUT_DATASET",
    "SERIES_DATASET",
    "TRUTH_DATASET",
]
