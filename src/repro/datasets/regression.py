"""Sparse linear-regression data (the UoI_LASSO synthetic family).

The paper's UoI_LASSO experiments use dense Gaussian designs with
"Samples" in rows and "Features" in columns (20,101 features held
constant across the 16 GB–8 TB sweep).  This generator reproduces that
family at any size, with a planted sparse coefficient vector so
selection accuracy is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparseRegression", "make_sparse_regression", "rows_for_gigabytes"]

#: The feature count the paper fixes for all UoI_LASSO scaling runs.
PAPER_LASSO_FEATURES = 20_101


@dataclass
class SparseRegression:
    """A generated regression problem with ground truth.

    Attributes
    ----------
    X:
        ``(n, p)`` design matrix.
    y:
        ``(n,)`` response.
    beta:
        ``(p,)`` true coefficients (sparse).
    support:
        Boolean mask of the true support.
    noise_std:
        The noise level actually used.
    """

    X: np.ndarray
    y: np.ndarray
    beta: np.ndarray
    support: np.ndarray
    noise_std: float


def make_sparse_regression(
    n_samples: int,
    n_features: int,
    *,
    n_informative: int | None = None,
    snr: float = 10.0,
    coef_scale: float = 2.0,
    rng: np.random.Generator | None = None,
) -> SparseRegression:
    """Generate ``y = X beta + eps`` with a sparse planted ``beta``.

    Parameters
    ----------
    n_samples, n_features:
        Problem shape.
    n_informative:
        Size of the true support (default: ``max(1, p // 20)``).
    snr:
        Signal-to-noise ratio ``var(X beta) / var(eps)``; the noise
        standard deviation is derived from it.
    coef_scale:
        Magnitude scale of nonzero coefficients; signs alternate so
        the signal is not one-sided.
    rng:
        Randomness source (fresh default generator when ``None``).
    """
    if n_samples < 1 or n_features < 1:
        raise ValueError("n_samples and n_features must be >= 1")
    if snr <= 0:
        raise ValueError("snr must be > 0")
    rng = rng if rng is not None else np.random.default_rng()
    k = max(1, n_features // 20) if n_informative is None else n_informative
    if not (1 <= k <= n_features):
        raise ValueError(f"n_informative must be in [1, {n_features}], got {k}")

    X = rng.standard_normal((n_samples, n_features))
    beta = np.zeros(n_features)
    idx = rng.choice(n_features, size=k, replace=False)
    signs = np.where(np.arange(k) % 2 == 0, 1.0, -1.0)
    magnitudes = coef_scale * (0.5 + rng.random(k))
    beta[idx] = signs * magnitudes

    signal = X @ beta
    signal_var = float(signal.var()) if n_samples > 1 else float(signal[0] ** 2)
    noise_std = float(np.sqrt(max(signal_var, 1e-12) / snr))
    y = signal + noise_std * rng.standard_normal(n_samples)
    return SparseRegression(
        X=X, y=y, beta=beta, support=beta != 0.0, noise_std=noise_std
    )


def rows_for_gigabytes(gigabytes: float, n_features: int = PAPER_LASSO_FEATURES) -> int:
    """Sample count giving a float64 data matrix of ``gigabytes`` GB.

    Used by the scaling drivers to translate the paper's "data set
    size is the problem size" convention into matrix shapes.
    """
    if gigabytes <= 0:
        raise ValueError("gigabytes must be > 0")
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    return max(1, int(gigabytes * 1024**3 / (8 * n_features)))
