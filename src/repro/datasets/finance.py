"""Synthetic S&P-500-like stock panel (substitute for the paper's §VI data).

The paper analyzes daily closes of S&P-500 companies (2013–2018): a
50-company subset for the Granger-graph illustration (Fig. 11: weekly
closes, first differences, VAR(1), B1 = 40, B2 = 5, < 40 edges) and a
470-company subset for the runtime study (195 weekly samples).  The
raw data are proprietary, so this module generates a statistically
analogous panel:

* log-returns with a **sector factor structure** (companies in the
  same sector co-move, like real equities);
* a **planted sparse lead-lag (Granger) network**: a few companies'
  returns predict a few others' next-week returns — this is the
  ground truth that the original data cannot provide;
* geometric price accumulation, weekly aggregation and first
  differencing identical to the paper's preprocessing.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

__all__ = [
    "StockPanel",
    "make_stock_panel",
    "weekly_closes",
    "first_differences",
    "iter_ticks",
    "sp50_tickers",
    "synthetic_tickers",
]

#: Fifty familiar large-cap tickers used to label the Fig.-11-style
#: graph (labels only — all price paths are synthetic).
_SP50 = [
    "AAPL", "MSFT", "GOOG", "AMZN", "BRK.B", "JPM", "JNJ", "XOM", "WMT", "PG",
    "BAC", "CVX", "KO", "PFE", "CSCO", "INTC", "VZ", "T", "MRK", "PEP",
    "ORCL", "DIS", "IBM", "HD", "MCD", "NKE", "UNH", "MMM", "BA", "CAT",
    "GE", "GS", "AXP", "MS", "C", "WFC", "USB", "MO", "COST", "SBUX",
    "TXN", "QCOM", "AMGN", "GILD", "UPS", "FDX", "LMT", "HON", "DE", "F",
]


def sp50_tickers() -> list[str]:
    """The 50 ticker labels used by the Fig.-11-style example."""
    return list(_SP50)


def synthetic_tickers(n: int) -> list[str]:
    """``n`` ticker-like labels (real-looking for the first 50, generated after)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    out = list(_SP50[:n])
    i = 0
    while len(out) < n:
        q, r = divmod(i, 26)
        out.append(f"SY{chr(65 + r)}{q}")
        i += 1
    return out


@dataclass
class StockPanel:
    """A generated price panel with its ground-truth lead-lag network.

    Attributes
    ----------
    prices:
        ``(n_days, n_companies)`` daily closes.
    tickers:
        Company labels.
    lead_lag:
        ``(n_companies, n_companies)`` true next-day return
        coefficients: entry ``[i, j]`` is the weight of company ``j``'s
        lagged return in company ``i``'s return (the planted Granger
        edges are its nonzero off-diagonal entries).
    sectors:
        Sector index per company.
    """

    prices: np.ndarray
    tickers: list[str]
    lead_lag: np.ndarray
    sectors: np.ndarray


def make_stock_panel(
    n_companies: int = 50,
    n_days: int = 504,
    *,
    n_sectors: int = 8,
    n_edges: int | None = None,
    edge_strength: float = 0.35,
    daily_vol: float = 0.015,
    sector_vol: float = 0.006,
    market_vol: float = 0.008,
    lag_days: int = 5,
    rng: np.random.Generator | None = None,
) -> StockPanel:
    """Generate a synthetic daily-close panel.

    Parameters
    ----------
    n_companies:
        Panel width (50 for the Fig.-11 analog, 470 for the runtime
        study).
    n_days:
        Trading days (504 ≈ the two years 2013–2014; 1008 ≈ 2013–2016).
    n_sectors:
        Number of co-moving sectors.
    n_edges:
        Planted lead-lag edges (default ``max(4, n_companies // 3)``
        — sparse, like the paper's inferred graph).
    edge_strength:
        Magnitude scale of planted edges (kept modest so the return
        process stays comfortably stationary).
    daily_vol, sector_vol, market_vol:
        Idiosyncratic / sector / market volatility components.
    lag_days:
        Horizon of the planted lead-lag, in trading days.  The default
        of one trading week matches the paper's pipeline (weekly
        closes, VAR(1) on first differences): a lag-5-day dependence
        survives weekly aggregation as a lag-1-week Granger edge,
        whereas a 1-day dependence would be averaged away.
    rng:
        Randomness source.
    """
    if n_companies < 2:
        raise ValueError("n_companies must be >= 2")
    if n_days < 10:
        raise ValueError("n_days must be >= 10")
    if n_sectors < 1:
        raise ValueError("n_sectors must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    n_edges = max(4, n_companies // 3) if n_edges is None else n_edges

    sectors = rng.integers(0, n_sectors, size=n_companies)
    lead_lag = np.zeros((n_companies, n_companies))
    targets = rng.choice(n_companies, size=n_edges, replace=True)
    for i in targets:
        j = int(rng.integers(0, n_companies))
        if j == i:
            j = (j + 1) % n_companies
        lead_lag[i, j] = edge_strength * float(rng.uniform(0.6, 1.4)) * float(
            rng.choice([-1.0, 1.0])
        )

    if lag_days < 1:
        raise ValueError("lag_days must be >= 1")
    returns = np.zeros((n_days, n_companies))
    market = market_vol * rng.standard_normal(n_days)
    sector_noise = sector_vol * rng.standard_normal((n_days, n_sectors))
    idio = daily_vol * rng.standard_normal((n_days, n_companies))
    for t in range(n_days):
        r = market[t] + sector_noise[t, sectors] + idio[t]
        if t >= lag_days:
            r = r + lead_lag @ returns[t - lag_days]
        returns[t] = r

    base = rng.uniform(20.0, 400.0, size=n_companies)
    prices = base * np.exp(np.cumsum(returns, axis=0))
    return StockPanel(
        prices=prices,
        tickers=synthetic_tickers(n_companies),
        lead_lag=lead_lag,
        sectors=sectors,
    )


def weekly_closes(prices: np.ndarray, *, days_per_week: int = 5) -> np.ndarray:
    """Aggregate daily closes to weekly closes (last close of each week)."""
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 2:
        raise ValueError(f"prices must be 2-D, got {prices.shape}")
    if days_per_week < 1:
        raise ValueError("days_per_week must be >= 1")
    n_weeks = prices.shape[0] // days_per_week
    if n_weeks < 1:
        raise ValueError("not enough days for one week")
    idx = np.arange(1, n_weeks + 1) * days_per_week - 1
    return prices[idx]


def iter_ticks(
    n_companies: int = 50,
    *,
    n_days: int = 504,
    days_per_week: int = 5,
    seed: int = 0,
    **panel_kwargs,
) -> Iterator[np.ndarray]:
    """Replay a seeded stock panel as a stream of weekly-return rows.

    The streaming analogue of the Fig.-11 preprocessing: generate the
    panel with ``default_rng(seed)``, aggregate to weekly closes, first
    difference, then yield one ``(n_companies,)`` row per week in
    order.  The concatenation of all yielded rows equals
    ``first_differences(weekly_closes(panel.prices))`` for the same
    seed, bitwise, so a stream consumer can be checked against the
    batch pipeline exactly.  The replay is finite — it ends with the
    panel (``n_days // days_per_week - 1`` rows).

    Extra keyword arguments are forwarded to :func:`make_stock_panel`.
    """
    panel = make_stock_panel(
        n_companies, n_days, rng=np.random.default_rng(seed), **panel_kwargs
    )
    series = first_differences(
        weekly_closes(panel.prices, days_per_week=days_per_week)
    )
    for row in series:
        yield row.copy()


def first_differences(series: np.ndarray) -> np.ndarray:
    """First differences along time — the paper's stationarizing step."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 2 or series.shape[0] < 2:
        raise ValueError(f"series must be 2-D with >= 2 rows, got {series.shape}")
    return np.diff(series, axis=0)
