"""Synthetic multi-electrode spike-count panel (substitute for the
paper's non-human-primate reaching data, §VI).

The original recording (O'Doherty et al.) has M1 and S1 spike trains
from 192 electrodes over 51,111 samples of one session.  It is several
gigabytes and not bundled here, so this generator produces a panel of
the same shape and character: a latent sparse stable VAR drives
per-electrode firing rates (log-link), and spike counts are Poisson
draws — giving integer-count time series with genuine directed
interactions whose ground truth is known.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.var_synthetic import random_sparse_coefs
from repro.var.model import VARProcess

__all__ = ["SpikePanel", "make_spike_counts"]

#: The paper's session shape: 192 electrodes, 51,111 samples.
PAPER_ELECTRODES = 192
PAPER_SAMPLES = 51_111


@dataclass
class SpikePanel:
    """A generated spike-count panel with ground truth.

    Attributes
    ----------
    counts:
        ``(n_samples, n_electrodes)`` integer spike counts.
    rates:
        The latent firing rates behind the counts.
    coefs:
        True latent VAR coefficient matrices (the ground-truth
        directed network between electrodes).
    regions:
        Region label per electrode (``"M1"`` or ``"S1"``, split
        half/half like the source recording).
    """

    counts: np.ndarray
    rates: np.ndarray
    coefs: list[np.ndarray]
    regions: list[str]


def make_spike_counts(
    n_electrodes: int = PAPER_ELECTRODES,
    n_samples: int = 2_000,
    *,
    order: int = 1,
    density: float = 0.03,
    base_rate: float = 2.0,
    coupling_radius: float = 0.6,
    rng: np.random.Generator | None = None,
) -> SpikePanel:
    """Generate Poisson spike counts driven by a latent sparse VAR.

    Parameters
    ----------
    n_electrodes:
        Panel width (192 matches the paper's session).
    n_samples:
        Panel length (use ``PAPER_SAMPLES`` for the full-size shape;
        the default keeps examples fast).
    order:
        Latent VAR order.
    density:
        Fraction of nonzero cross-electrode couplings.
    base_rate:
        Mean spikes per bin at baseline.
    coupling_radius:
        Spectral radius of the latent dynamics (stability margin).
    rng:
        Randomness source.
    """
    if n_electrodes < 2:
        raise ValueError("n_electrodes must be >= 2")
    if n_samples < order + 1:
        raise ValueError("n_samples must exceed order")
    if base_rate <= 0:
        raise ValueError("base_rate must be > 0")
    rng = rng if rng is not None else np.random.default_rng()

    coefs = random_sparse_coefs(
        n_electrodes,
        order,
        density=density,
        target_radius=coupling_radius,
        rng=rng,
    )
    latent = VARProcess(
        coefs, noise_cov=0.04 * np.eye(n_electrodes)
    ).simulate(n_samples, rng)
    # Log-link keeps rates positive; clip the exponent so a wild latent
    # excursion cannot overflow the Poisson sampler.
    rates = base_rate * np.exp(np.clip(latent, -3.0, 3.0))
    counts = rng.poisson(rates)
    half = n_electrodes // 2
    regions = ["M1"] * half + ["S1"] * (n_electrodes - half)
    return SpikePanel(counts=counts, rates=rates, coefs=coefs, regions=regions)
