"""Writers for the paper's on-disk dataset layouts.

The paper's pipeline starts from HDF5 files: UoI_LASSO reads one
``InputData ∈ R^{n x (p+1)}`` matrix (response in column 0, "Samples"
in rows, "Features" in columns), and UoI_VAR reads a small
``(N, p)`` time-series matrix.  These helpers generate those files on
the simulated filesystem — including ground truth stored as side
datasets, which examples and tests use to score inference — and are
the canonical way to feed the distributed drivers.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.regression import SparseRegression, make_sparse_regression
from repro.datasets.var_synthetic import SparseVAR, make_sparse_var
from repro.pfs.hdf5 import SimH5File
from repro.pfs.lustre import STRIPE_THRESHOLD_BYTES

__all__ = [
    "write_regression_file",
    "write_var_file",
    "make_regression_file",
    "make_var_file",
    "INPUT_DATASET",
    "TRUTH_DATASET",
    "SERIES_DATASET",
]

#: Dataset names used throughout the repository.
INPUT_DATASET = "data"
TRUTH_DATASET = "truth/beta"
SERIES_DATASET = "series"


def _pick_stripes(nbytes: int, stripe_count: int | None) -> int | None:
    if stripe_count is not None:
        return stripe_count
    # Mirror the site policy: large files striped wide, small ones not.
    return None if nbytes >= STRIPE_THRESHOLD_BYTES else 1


def write_regression_file(
    ds: SparseRegression,
    path: str = "/input.h5",
    *,
    stripe_count: int | None = None,
) -> SimH5File:
    """Write a generated regression problem in the paper's layout.

    The main dataset (``"data"``) is ``(n, 1 + p)`` with ``y`` in
    column 0; the planted coefficients are stored under
    ``"truth/beta"`` so downstream consumers can score recovery.
    """
    data = np.column_stack([ds.y, ds.X])
    file = SimH5File(path, stripe_count=_pick_stripes(data.nbytes, stripe_count))
    file.create_dataset(INPUT_DATASET, data)
    file.create_dataset(TRUTH_DATASET, ds.beta.reshape(1, -1))
    return file


def write_var_file(
    sv: SparseVAR,
    path: str = "/series.h5",
    *,
    stripe_count: int | None = None,
) -> SimH5File:
    """Write a generated VAR problem: the raw series + true coefficients.

    The series goes under ``"series"``; each true ``A_j`` is stored
    under ``"truth/A1"``, ``"truth/A2"``, ...
    """
    file = SimH5File(
        path, stripe_count=_pick_stripes(sv.series.nbytes, stripe_count)
    )
    file.create_dataset(SERIES_DATASET, sv.series)
    for j, A in enumerate(sv.process.coefs, start=1):
        file.create_dataset(f"truth/A{j}", A)
    return file


def make_regression_file(
    n_samples: int,
    n_features: int,
    *,
    path: str = "/input.h5",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> tuple[SimH5File, SparseRegression]:
    """Generate + write a regression problem; returns ``(file, truth)``.

    Keyword arguments are forwarded to
    :func:`repro.datasets.make_sparse_regression`.
    """
    ds = make_sparse_regression(n_samples, n_features, rng=rng, **kwargs)
    return write_regression_file(ds, path), ds


def make_var_file(
    p: int,
    n_samples: int | None = None,
    *,
    path: str = "/series.h5",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> tuple[SimH5File, SparseVAR]:
    """Generate + write a VAR problem; returns ``(file, truth)``.

    Keyword arguments are forwarded to
    :func:`repro.datasets.make_sparse_var`.
    """
    sv = make_sparse_var(p, n_samples, rng=rng, **kwargs)
    return write_var_file(sv, path), sv
