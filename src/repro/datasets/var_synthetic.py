"""Random sparse stable VAR generators (the UoI_VAR synthetic family).

The paper's UoI_VAR data sets range from 356 features (128 GB lifted
problem) to 1,000 features (8 TB), with the number of samples "twice
the size of the features".  These helpers plant a random sparse edge
structure, rescale it to a target companion spectral radius (so the
process is stable by construction) and simulate the series.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.var.model import VARProcess, spectral_radius

__all__ = [
    "random_sparse_coefs",
    "make_sparse_var",
    "SparseVAR",
    "iter_ticks",
    "features_for_gigabytes",
]


def random_sparse_coefs(
    p: int,
    order: int,
    *,
    density: float = 0.1,
    target_radius: float = 0.7,
    include_diagonal: bool = True,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Random sparse ``[A_1 ... A_d]`` rescaled to a stable spectral radius.

    Parameters
    ----------
    p:
        Process dimension.
    order:
        VAR order ``d``.
    density:
        Fraction of off-diagonal entries that are nonzero (per lag).
    target_radius:
        Companion spectral radius after rescaling; must be in (0, 1).
    include_diagonal:
        Give every node a self-edge in ``A_1`` (autocorrelation),
        typical of real series.
    rng:
        Randomness source.
    """
    if p < 1 or order < 1:
        raise ValueError("p and order must be >= 1")
    if not (0 <= density <= 1):
        raise ValueError("density must lie in [0, 1]")
    if not (0 < target_radius < 1):
        raise ValueError("target_radius must lie in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()

    coefs = []
    for lag in range(order):
        A = np.zeros((p, p))
        mask = rng.random((p, p)) < density
        np.fill_diagonal(mask, False)
        vals = rng.uniform(0.3, 1.0, size=mask.sum()) * rng.choice(
            [-1.0, 1.0], size=mask.sum()
        )
        A[mask] = vals
        if include_diagonal and lag == 0:
            np.fill_diagonal(A, rng.uniform(0.3, 0.9, size=p))
        coefs.append(A)

    radius = spectral_radius(coefs)
    if radius > 0:
        scale = target_radius / radius
        # Lag-j blocks scale like s^j under a companion similarity
        # transform, preserving the sparsity pattern exactly.
        coefs = [A * scale ** (j + 1) for j, A in enumerate(coefs)]
    return coefs


@dataclass
class SparseVAR:
    """A generated VAR problem with ground truth.

    Attributes
    ----------
    process:
        The true :class:`~repro.var.model.VARProcess`.
    series:
        Simulated ``(n_samples, p)`` observations.
    support:
        ``(d, p, p)`` boolean mask of true nonzero coefficients.
    """

    process: VARProcess
    series: np.ndarray
    support: np.ndarray


def make_sparse_var(
    p: int,
    n_samples: int | None = None,
    *,
    order: int = 1,
    density: float = 0.1,
    target_radius: float = 0.7,
    noise_std: float = 1.0,
    rng: np.random.Generator | None = None,
) -> SparseVAR:
    """Generate a sparse stable VAR and simulate it.

    ``n_samples`` defaults to ``2 * p``, the paper's convention for
    its synthetic UoI_VAR data sets.
    """
    rng = rng if rng is not None else np.random.default_rng()
    n_samples = 2 * p if n_samples is None else n_samples
    if n_samples < order + 1:
        raise ValueError(f"n_samples must exceed order; got {n_samples} <= {order}")
    coefs = random_sparse_coefs(
        p, order, density=density, target_radius=target_radius, rng=rng
    )
    proc = VARProcess(coefs, noise_cov=noise_std**2 * np.eye(p))
    series = proc.simulate(n_samples, rng)
    return SparseVAR(process=proc, series=series, support=proc.support())


def iter_ticks(
    p: int,
    *,
    order: int = 1,
    density: float = 0.1,
    target_radius: float = 0.7,
    noise_std: float = 1.0,
    seed: int = 0,
    burn_in: int = 200,
) -> Iterator[np.ndarray]:
    """Endless stream of samples from a seeded sparse stable VAR.

    The streaming analogue of :func:`make_sparse_var`: the coefficient
    draw and the per-step noise come from one ``default_rng(seed)``
    stream consumed in the same order as ``VARProcess.simulate``, so
    the first ``n`` ticks equal a length-``n`` batch simulation with
    the same seed, bitwise — stream consumers and batch fits can be
    cross-checked exactly.  Each yielded row is a fresh ``(p,)`` array
    owned by the caller.
    """
    if burn_in < 0:
        raise ValueError("burn_in must be >= 0")
    rng = np.random.default_rng(seed)
    coefs = random_sparse_coefs(
        p, order, density=density, target_radius=target_radius, rng=rng
    )
    proc = VARProcess(coefs, noise_cov=noise_std**2 * np.eye(p))
    window = np.zeros((order, p))  # window[j] = X_{t-1-j}
    t = 0
    while True:
        x = proc.intercept + rng.standard_normal(p) @ proc._chol.T
        for j in range(order):
            x = x + proc.coefs[j] @ window[j]
        window = np.vstack([x, window[:-1]])
        t += 1
        if t > burn_in:
            yield x.copy()


def features_for_gigabytes(gigabytes: float, *, order: int = 1) -> int:
    """Feature count whose *lifted* VAR problem is ``gigabytes`` GB.

    The lifted design ``(I_p ⊗ X)`` has ``≈ p^2`` rows by ``d p^2``
    columns of float64, i.e. ``8 d p^4`` bytes — the "≈ p^3 relative
    to the data" explosion.  Inverting gives
    ``p = (bytes / (8 d)) ** (1/4)``, which hits the paper's anchors:
    128 GB → 361 (paper: 356) and 8 TB → 1024 (paper: 1000).
    """
    if gigabytes <= 0:
        raise ValueError("gigabytes must be > 0")
    if order < 1:
        raise ValueError("order must be >= 1")
    return max(2, int(round((gigabytes * 1024**3 / (8.0 * order)) ** 0.25)))
