"""Kernel flop counts and virtual-clock charging.

The functional simulator runs real numpy arithmetic, but the *modeled*
compute time must reflect the paper's machine (KNL with MKL/Eigen), not
this box.  Each helper below computes the standard flop count of a
kernel and divides by the corresponding measured rate from the
:class:`~repro.simmpi.machine.MachineModel` — the same rates the
paper's Intel-Advisor analysis reports — then charges the result to a
rank's clock under :attr:`TimeCategory.COMPUTE`.
"""

from __future__ import annotations

from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.machine import MachineModel

__all__ = [
    "gemm_flops",
    "gemv_flops",
    "cholesky_flops",
    "trsv_flops",
    "spmm_flops",
    "spmv_flops",
    "charge_gemm",
    "charge_gemv",
    "charge_cholesky",
    "charge_trsv",
    "charge_sparse_solve",
    "charge_axpy",
]


def _check_dims(*dims: int) -> None:
    for d in dims:
        if d < 0:
            raise ValueError(f"matrix dimensions must be >= 0, got {dims}")


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flops of C(m,n) = A(m,k) @ B(k,n): ``2 m n k``."""
    _check_dims(m, n, k)
    return 2.0 * m * n * k


def gemv_flops(m: int, n: int) -> float:
    """Flops of y(m) = A(m,n) @ x(n): ``2 m n``."""
    _check_dims(m, n)
    return 2.0 * m * n


def cholesky_flops(n: int) -> float:
    """Flops of a Cholesky factorization of an n x n SPD matrix: ``n^3/3``."""
    _check_dims(n)
    return n**3 / 3.0


def trsv_flops(n: int) -> float:
    """Flops of one triangular solve with an n x n factor: ``n^2``."""
    _check_dims(n)
    return float(n) ** 2


def spmm_flops(nnz: int, n: int) -> float:
    """Flops of sparse(m,k; nnz) @ dense(k,n): ``2 nnz n``."""
    _check_dims(nnz, n)
    return 2.0 * nnz * n


def spmv_flops(nnz: int) -> float:
    """Flops of a sparse mat-vec with ``nnz`` stored entries: ``2 nnz``."""
    _check_dims(nnz)
    return 2.0 * nnz


def _charge(clock: RankClock, flops: float, gflops_rate: float) -> float:
    seconds = flops / (gflops_rate * 1e9)
    clock.charge(TimeCategory.COMPUTE, seconds)
    return seconds


def charge_gemm(clock: RankClock, machine: MachineModel, m: int, n: int, k: int) -> float:
    """Charge a dense gemm at the machine's measured gemm rate."""
    return _charge(clock, gemm_flops(m, n, k), machine.gemm_gflops)


def charge_gemv(clock: RankClock, machine: MachineModel, m: int, n: int) -> float:
    """Charge a dense gemv at the machine's measured gemv rate."""
    return _charge(clock, gemv_flops(m, n), machine.gemv_gflops)


def charge_cholesky(clock: RankClock, machine: MachineModel, n: int) -> float:
    """Charge a Cholesky factorization (costed at the gemm rate — MKL
    potrf is blocked into gemm-like panels)."""
    return _charge(clock, cholesky_flops(n), machine.gemm_gflops)


def charge_trsv(clock: RankClock, machine: MachineModel, n: int) -> float:
    """Charge one triangular solve at the machine's (poor) trsv rate."""
    return _charge(clock, trsv_flops(n), machine.trsv_gflops)


def charge_sparse_solve(
    clock: RankClock, machine: MachineModel, nnz: int, ncols: int = 1
) -> float:
    """Charge a sparse product with ``nnz`` entries against ``ncols`` vectors."""
    rate = machine.sp_gemv_gflops if ncols == 1 else machine.sp_gemm_gflops
    return _charge(clock, spmm_flops(nnz, ncols), rate)


def charge_axpy(clock: RankClock, machine: MachineModel, n: int) -> float:
    """Charge a vector update (axpy / soft-threshold sweep): memory bound,
    costed at the machine's memory bandwidth (3 x 8 bytes per element)."""
    _check_dims(n)
    seconds = 24.0 * n / (machine.mem_bw_gbs * 1e9)
    clock.charge(TimeCategory.COMPUTE, seconds)
    return seconds
