"""Text-mode stacked bar charts of runtime breakdowns.

The paper's Figures 2, 3, 7 and 8 are stacked bars of the four runtime
categories.  These helpers render :class:`BreakdownRow` collections as
proportional ASCII bars so terminal output can be eyeballed against
the publication — linear scale for single-node style figures, log
scale for the weak/strong-scaling figures the paper plots
logarithmically (Fig. 9).
"""

from __future__ import annotations

import math

from repro.perf.report import BreakdownRow, CATEGORY_ORDER

__all__ = ["stacked_bars", "log_lines", "CATEGORY_GLYPHS"]

#: One glyph per category, matching the tracer's timeline letters.
CATEGORY_GLYPHS = {
    "computation": "C",
    "communication": "M",
    "distribution": "D",
    "data_io": "I",
}


def stacked_bars(
    rows: list[BreakdownRow],
    *,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render rows as horizontal stacked bars (linear scale).

    Bars are scaled to the largest row total; each category occupies a
    share of the bar proportional to its share of that row's runtime.
    """
    if not rows:
        raise ValueError("stacked_bars needs at least one row")
    if width < 10:
        raise ValueError("width must be >= 10")
    biggest = max(row.total for row in rows)
    if biggest <= 0:
        raise ValueError("all rows have zero total time")
    label_w = max(len(r.label) for r in rows)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{glyph}={name}" for name, glyph in CATEGORY_GLYPHS.items()
    )
    lines.append(legend)
    for row in rows:
        bar_len = max(1, round(width * row.total / biggest))
        bar = ""
        for cat in CATEGORY_ORDER:
            share = row.get(cat) / row.total if row.total else 0.0
            bar += CATEGORY_GLYPHS[cat] * round(share * bar_len)
        bar = (bar + CATEGORY_GLYPHS["computation"])[:bar_len] if bar else ""
        lines.append(f"{row.label:>{label_w}} |{bar:<{width}}| {row.total:.4g}s")
    return "\n".join(lines)


def log_lines(
    rows: list[BreakdownRow],
    *,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render each category as a log-scale position chart (Fig.-9 style).

    One line per (row, category): the marker position encodes
    ``log10(seconds)`` between the smallest and largest nonzero values
    in the table, which is how the paper plots UoI_VAR's weak scaling
    to make the distribution growth visible.
    """
    if not rows:
        raise ValueError("log_lines needs at least one row")
    if width < 10:
        raise ValueError("width must be >= 10")
    vals = [
        row.get(cat)
        for row in rows
        for cat in CATEGORY_ORDER
        if row.get(cat) > 0
    ]
    if not vals:
        raise ValueError("all categories are zero")
    lo, hi = math.log10(min(vals)), math.log10(max(vals))
    span = hi - lo if hi > lo else 1.0
    label_w = max(len(r.label) for r in rows)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"log10 scale: {min(vals):.3g}s ... {max(vals):.3g}s  "
        + "  ".join(f"{g}={n}" for n, g in CATEGORY_GLYPHS.items())
    )
    for row in rows:
        cells = [" "] * width
        for cat in CATEGORY_ORDER:
            v = row.get(cat)
            if v <= 0:
                continue
            pos = int((math.log10(v) - lo) / span * (width - 1))
            glyph = CATEGORY_GLYPHS[cat]
            # Later categories overwrite earlier ones only on exact
            # collisions; nudge right to keep both visible when free.
            if cells[pos] != " " and pos + 1 < width and cells[pos + 1] == " ":
                pos += 1
            cells[pos] = glyph
        lines.append(f"{row.label:>{label_w}} |{''.join(cells)}|")
    return "\n".join(lines)
