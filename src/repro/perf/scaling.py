"""Analytic weak/strong-scaling models at the paper's core counts.

The functional simulator (:mod:`repro.simmpi`) *executes* the
distributed algorithms at up to a few dozen ranks; this module
evaluates the **same cost formulas** — kernel flop counts divided by
the paper's measured KNL rates, the alpha-beta collective models from
:mod:`repro.simmpi.timing`, and the Lustre model from
:mod:`repro.pfs.lustre` — at the paper's configurations (68 to 278,528
cores, 16 GB to 8 TB), producing the rows behind Table I/II and
Figures 4, 5, 6, 9 and 10.

Calibration provenance:

* compute rates: the paper's Intel-Advisor measurements (Section IV);
* filesystem: fitted to Table II (see :mod:`repro.pfs.lustre`);
* the distributed-Kronecker distribution time follows
  ``t = 1.19 s/TB * lifted_TB * P^0.67`` — a two-parameter power law
  that *exactly* reproduces both of the paper's real-data
  measurements (470-company S&P: 80 GB on 2,176 cores -> 16.4 s;
  192-electrode neuro: 1.3 TB on 81,600 cores -> 3,034 s);
* collective congestion: alpha-beta allreduce costs are inflated by
  ``1 + (P / 7000)^2``, an empirical large-job contention factor
  calibrated so the neuroscience run's measured communication
  (1,598.7 s at 81,600 cores) is reproduced.

Per-solve ADMM iteration counts are model parameters (defaults chosen
from the functional runs' observed warm-started iteration counts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.regression import rows_for_gigabytes, PAPER_LASSO_FEATURES
from repro.datasets.var_synthetic import features_for_gigabytes
from repro.perf.report import BreakdownRow
from repro.pfs import lustre
from repro.simmpi import timing
from repro.simmpi.machine import MachineModel, CORI_KNL

__all__ = [
    "UoiLassoScalingParams",
    "UoiVarScalingParams",
    "uoi_lasso_model",
    "uoi_var_model",
    "congestion_factor",
    "kron_distribution_time",
    "WEAK_SCALING_GB",
    "lasso_weak_scaling_cores",
    "var_weak_scaling_cores",
]

#: Data sizes of the paper's weak-scaling sweeps (Table I), in GB.
WEAK_SCALING_GB = [128, 256, 512, 1024, 2048, 4096, 8192]


def lasso_weak_scaling_cores(gigabytes: float) -> int:
    """Table I's UoI_LASSO core count for a weak-scaling data size."""
    return int(round(4352 * gigabytes / 128))


def var_weak_scaling_cores(gigabytes: float) -> int:
    """Table I's UoI_VAR core count for a weak-scaling problem size."""
    return int(round(2176 * gigabytes / 128))


def congestion_factor(cores: int) -> float:
    """Empirical large-job collective contention multiplier.

    ``1 + (P / 7000)^2``, calibrated on the paper's neuroscience run:
    B1 = 30, B2 = 20, q = 20 at 81,600 cores measured 1,598.7 s of
    communication, i.e. ~66 ms per consensus Allreduce of the 590 KB
    lifted coefficient vector — ~137x the uncongested alpha-beta cost
    (transfer + local reduction arithmetic).
    The same factor leaves small-job communication (e.g. the
    470-company run on 2,176 cores: 4.7 s) essentially uninflated, and
    makes communication the dominant term for the largest UoI_LASSO
    configurations, which is the trade-off the paper's Discussion
    reports ("for large data sets, the runtime of the code is
    determined by communication via MPI_Allreduce").
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return 1.0 + (cores / 7000.0) ** 2


def kron_distribution_time(lifted_bytes: float, cores: int) -> float:
    """Distributed Kronecker + vectorization time (see module docstring).

    ``1.19 s/TB * lifted_TB * cores^0.67`` — exact on both of the
    paper's real-data points.
    """
    if lifted_bytes < 0:
        raise ValueError("lifted_bytes must be >= 0")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    tb = lifted_bytes / 1024**4
    return 1.19 * tb * cores**0.67


@dataclass(frozen=True)
class UoiLassoScalingParams:
    """Workload description of one UoI_LASSO scaling configuration.

    Attributes
    ----------
    data_gb:
        Dataset size ("the data set size is the problem size").
    cores:
        Total MPI processes, all dedicated to consensus ADMM (the
        paper's multi-node runs use no P_B / P_lambda parallelism).
    n_features:
        Design width (the paper fixes 20,101 across all sizes).
    b1, b2, q:
        Bootstrap and λ-grid sizes.
    sel_iters:
        Mean warm-started ADMM iterations per selection solve.
    est_iters:
        Mean iterations per estimation (OLS) solve.
    support_frac:
        Mean candidate-support density during estimation (estimation
        problems are smaller — the paper notes 98% of communication
        comes from selection).
    pb, plam:
        P_B x P_lambda algorithmic parallelism (Fig. 3): cells of
        ``cores / (pb * plam)`` ADMM cores each take ``b1 / pb``
        bootstraps x ``q / plam`` penalties.
    """

    data_gb: float
    cores: int
    n_features: int = PAPER_LASSO_FEATURES
    b1: int = 48
    b2: int = 48
    q: int = 48
    sel_iters: int = 30
    est_iters: int = 15
    support_frac: float = 0.05
    pb: int = 1
    plam: int = 1

    def __post_init__(self) -> None:
        if self.data_gb <= 0 or self.cores < 1:
            raise ValueError("data_gb must be > 0 and cores >= 1")
        if not (0 < self.support_frac <= 1):
            raise ValueError("support_frac must lie in (0, 1]")
        if self.pb < 1 or self.plam < 1:
            raise ValueError("pb and plam must be >= 1")
        if self.cores % (self.pb * self.plam) != 0:
            raise ValueError("cores must be divisible by pb * plam")

    @property
    def admm_cores(self) -> int:
        """Consensus cores per (bootstrap-group, lambda-group) cell."""
        return self.cores // (self.pb * self.plam)


def uoi_lasso_model(
    params: UoiLassoScalingParams,
    machine: MachineModel = CORI_KNL,
) -> BreakdownRow:
    """Modeled runtime breakdown of one UoI_LASSO run at scale.

    Compute follows the consensus-ADMM kernel inventory: per bootstrap
    one local Gram + factorization (Woodbury ``n_i x n_i`` since the
    per-core row count is far below 20,101 features), then per
    iteration two gemv sweeps against the local block plus the
    factor solves; communication is one fused allreduce of ``2p + 3``
    doubles per iteration; distribution is one Tier-2 shuffle per
    bootstrap; I/O is the one-time Tier-1 parallel read.
    """
    p = params.n_features
    P = params.cores
    cells = params.pb * params.plam
    C = params.admm_cores  # consensus cores per cell
    n = rows_for_gigabytes(params.data_gb, p)
    # Every cell holds a full bootstrap of the data over its C cores.
    n_i = max(1, n // C)
    total_bytes = params.data_gb * 1024**3

    gemm = machine.gemm_gflops * 1e9
    gemv = machine.gemv_gflops * 1e9

    # Per-cell work shares (ceil: the slowest cell sets the pace).
    b1_cell = -(-params.b1 // params.pb)
    b2_cell = -(-params.b2 // params.pb)
    q_cell = -(-params.q // params.plam)

    # --- computation -------------------------------------------------
    # Per selection bootstrap: local Gram A_i A_i' (2 n_i^2 p flops)
    # and its Cholesky (n_i^3 / 3).
    fact = b1_cell * (2.0 * n_i**2 * p + n_i**3 / 3.0) / gemm
    # Per ADMM iteration: gemv with A_i and A_i' (4 n_i p flops) plus
    # two small triangular solves (2 n_i^2, at the poor trsv rate).
    sel_solves = b1_cell * q_cell * params.sel_iters
    per_iter = 4.0 * n_i * p / gemv + 2.0 * n_i**2 / (machine.trsv_gflops * 1e9)
    compute = fact + sel_solves * per_iter
    # Estimation on supports of s = support_frac * p columns.
    s = max(1, int(params.support_frac * p))
    est_fact = b2_cell * (2.0 * n_i**2 * s + n_i**3 / 3.0) / gemm
    est_solves = b2_cell * q_cell * params.est_iters
    est_per_iter = 4.0 * n_i * s / gemv + 2.0 * n_i**2 / (machine.trsv_gflops * 1e9)
    compute += est_fact + est_solves * est_per_iter

    # --- communication ------------------------------------------------
    # Consensus allreduces live inside a cell (C ranks); the reduce
    # collectives that merge supports/losses across cells are a handful
    # of calls and are negligible next to the per-iteration traffic.
    cong = congestion_factor(C)
    sel_msg = (2 * p + 3) * 8
    est_msg = (2 * s + 3) * 8
    communication = cong * (
        sel_solves * timing.allreduce_time(machine, sel_msg, C)
        + est_solves * timing.allreduce_time(machine, est_msg, C)
    )

    # --- distribution & I/O -------------------------------------------
    # Every bootstrap moves one full-dataset copy through Tier-2; the
    # fabric is bandwidth-limited, so the wall time depends on the
    # total shuffled volume over all P cores, not on how the grid
    # partitions it (cells shuffle concurrently but share the same
    # Tier-1 sources).
    shuffles = params.b1 + 2 * params.b2  # selection + train/eval pairs
    distribution = shuffles * lustre.randomized_shuffle_time(machine, total_bytes, P)
    data_io = lustre.parallel_read_time(machine, int(total_bytes), P)

    grid = f"/{params.pb}x{params.plam}" if cells > 1 else ""
    return BreakdownRow(
        label=f"{params.data_gb:g}GB/{P}cores{grid}",
        seconds={
            "computation": compute,
            "communication": communication,
            "distribution": distribution,
            "data_io": data_io,
        },
        extra={"rows_per_core": str(n_i), "features": str(p)},
    )


@dataclass(frozen=True)
class UoiVarScalingParams:
    """Workload description of one UoI_VAR scaling configuration.

    Attributes
    ----------
    problem_gb:
        *Lifted* problem size (the paper's convention: the data file
        is megabytes; the Kronecker-lifted design is the problem).
    cores:
        Total MPI processes.
    order:
        VAR order ``d``.
    b1, b2, q:
        Bootstraps and λ grid (paper: B1 = 30, B2 = 20, q = 20 for the
        scaling runs).
    sel_iters, est_iters:
        Mean ADMM iterations per solve.
    n_features:
        Override the feature count (defaults to the value implied by
        ``problem_gb``).
    pb, plam:
        P_B x P_lambda parallelism (Fig. 8).  Each cell builds its own
        bootstraps' lifted problems against the shared reader windows,
        so the Kronecker distribution pays ``b1 / pb`` constructions
        at ``pb * plam``-way reader contention — "as the P_lambda
        parallelism increases the Kronecker product and vectorization
        time increases".
    """

    problem_gb: float
    cores: int
    order: int = 1
    b1: int = 30
    b2: int = 20
    q: int = 20
    sel_iters: int = 30
    est_iters: int = 15
    n_features: int | None = None
    pb: int = 1
    plam: int = 1

    def __post_init__(self) -> None:
        if self.problem_gb <= 0 or self.cores < 1:
            raise ValueError("problem_gb must be > 0 and cores >= 1")
        if self.pb < 1 or self.plam < 1:
            raise ValueError("pb and plam must be >= 1")
        if self.cores % (self.pb * self.plam) != 0:
            raise ValueError("cores must be divisible by pb * plam")

    @property
    def admm_cores(self) -> int:
        """Consensus cores per (bootstrap-group, lambda-group) cell."""
        return self.cores // (self.pb * self.plam)


#: Effective per-process bandwidth of Eigen-Sparse's per-iteration
#: traversal of its local CSR slice (values + indices + gram/solve
#: passes; ~10 passes at the measured ~6.5 GB/s sparse streaming rate).
#: Chosen so the weak-scaling computation bar sits where the paper's
#: does: flat at ~2,000 s, overtaken by distribution at ~2 TB.
SPARSE_STREAM_GBS = 0.65


def uoi_var_model(
    params: UoiVarScalingParams,
    machine: MachineModel = CORI_KNL,
) -> BreakdownRow:
    """Modeled runtime breakdown of one UoI_VAR run at scale.

    The lifted design has ``~p^2`` rows, ``d p^2`` columns and
    sparsity ``1 - 1/p``.  Computation is each core's repeated sparse
    traversal of its slice of the lifted problem (constant per core
    along the weak-scaling diagonal — the paper's "almost ideal weak
    scaling"; inversely proportional to cores at fixed size — the
    "almost ideal strong scaling").  Communication is the consensus
    allreduce of the ``d p^2`` lifted coefficient vector with the
    large-job congestion factor; distribution is the calibrated
    distributed-Kronecker power law; I/O is the tiny raw-series read
    by the ``n_reader`` processes.

    When ``n_features`` is overridden (real-data configurations), the
    lifted size is taken from ``problem_gb`` as reported by the paper
    instead of the ``8 d p^4`` synthetic convention.
    """
    P = params.cores
    d = params.order
    if params.n_features is not None:
        p = params.n_features
        lifted_bytes = params.problem_gb * 1024**3
    else:
        p = features_for_gigabytes(params.problem_gb, order=d)
        lifted_bytes = 8.0 * (p * p) * (d * p * p)
    lifted_cols = d * p * p
    cells = params.pb * params.plam
    C = params.admm_cores

    b1_cell = -(-params.b1 // params.pb)
    b2_cell = -(-params.b2 // params.pb)
    q_cell = -(-params.q // params.plam)

    # --- computation -------------------------------------------------
    local_bytes = lifted_bytes / C
    sel_solves = b1_cell * q_cell * params.sel_iters
    est_solves = b2_cell * q_cell * params.est_iters
    compute = (sel_solves + est_solves) * local_bytes / (SPARSE_STREAM_GBS * 1e9)

    # --- communication ------------------------------------------------
    cong = congestion_factor(C)
    msg = (2 * lifted_cols + 3) * 8
    communication = cong * (sel_solves + est_solves) * timing.allreduce_time(
        machine, msg, C
    )

    # --- distribution (the UoI_VAR bottleneck) -------------------------
    # Calibrated per *run* (bootstrap constructions pipeline against the
    # resident reader windows), matching how the paper reports one
    # "Kronecker product and vectorization" number per job.  With
    # algorithmic parallelism, each cell re-builds its own bootstraps'
    # problems ((b1/pb + 2 b2/pb) / (b1 + 2 b2) of a run's worth) while
    # all cells contend for the shared readers.
    share = (b1_cell + 2 * b2_cell) / max(params.b1 + 2 * params.b2, 1)
    distribution = kron_distribution_time(lifted_bytes, C) * max(
        1.0, share * cells
    )

    # --- I/O: the raw series is megabytes ------------------------------
    raw_bytes = 8 * (2 * p) * p
    data_io = lustre.parallel_read_time(
        machine, raw_bytes, min(P, 2 * p), stripe_count=1
    )

    grid = f"/{params.pb}x{params.plam}" if cells > 1 else ""
    return BreakdownRow(
        label=f"{params.problem_gb:g}GB/{P}cores{grid}",
        seconds={
            "computation": compute,
            "communication": communication,
            "distribution": distribution,
            "data_io": data_io,
        },
        extra={"features": str(p), "lifted_cols": str(lifted_cols)},
    )
