"""Roofline performance model (the paper's Intel-Advisor analysis).

The paper characterizes its kernels on KNL with a roofline model:
attainable performance is ``min(peak_gflops, AI * mem_bw)`` where AI is
arithmetic intensity (flops per byte moved).  It reports, per MPI
process:

======================  ========  =====  ============
kernel                  GFLOPS    AI     bound
======================  ========  =====  ============
UoI_LASSO gemm (MKL)    30.83     3.59   DRAM memory
UoI_LASSO gemv (MKL)    1.12      0.32   DRAM memory
triangular solve        0.011     0.075  DRAM memory
UoI_VAR sparse gemm     1.08      0.15   DRAM memory
UoI_VAR sparse gemv     2.08      0.33   DRAM memory
======================  ========  =====  ============

:func:`classify` reproduces the "DRAM memory bound" verdicts;
:func:`paper_kernel_points` returns the table above as data the Fig-2 /
Fig-7 experiment drivers print alongside their breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simmpi.machine import MachineModel

__all__ = [
    "RooflinePoint",
    "roofline_attainable",
    "classify",
    "paper_kernel_points",
    "KNL_PEAK_GFLOPS",
]

#: Theoretical double-precision peak of one KNL *node* (68 cores x
#: ~44.8 GFLOP/s with AVX-512 FMA at 1.4 GHz).  Intel Advisor draws its
#: roofline at node level, with the DDR bandwidth (~90 GB/s) as the
#: memory roof — which is why even the 30.83-GFLOPS gemm lands in the
#: DRAM-bound region (3.59 FLOPs/B x 90 GB/s = 323 << 3,046).
KNL_PEAK_GFLOPS = 3046.4


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline.

    Attributes
    ----------
    kernel:
        Kernel name.
    gflops:
        Measured (or modeled) achieved GFLOP/s.
    intensity:
        Arithmetic intensity in FLOPs/byte.
    """

    kernel: str
    gflops: float
    intensity: float

    def __post_init__(self) -> None:
        if self.gflops < 0 or self.intensity < 0:
            raise ValueError("gflops and intensity must be >= 0")


def roofline_attainable(
    intensity: float,
    *,
    peak_gflops: float = KNL_PEAK_GFLOPS,
    mem_bw_gbs: float = 90.0,
) -> float:
    """Attainable GFLOP/s at a given arithmetic intensity.

    ``min(peak, AI * BW)`` — the classic two-segment roofline.
    """
    if intensity < 0:
        raise ValueError(f"intensity must be >= 0, got {intensity}")
    return min(peak_gflops, intensity * mem_bw_gbs)


def classify(
    point: RooflinePoint,
    *,
    machine: MachineModel | None = None,
    peak_gflops: float = KNL_PEAK_GFLOPS,
) -> str:
    """Classify a kernel as ``"memory-bound"`` or ``"compute-bound"``.

    A kernel is memory bound when the bandwidth roof at its intensity
    lies below the compute peak — i.e. the ridge point is to its right.
    All five of the paper's kernels land in the memory-bound regime.
    """
    bw = machine.mem_bw_gbs if machine is not None else 90.0
    bw_roof = point.intensity * bw
    return "memory-bound" if bw_roof < peak_gflops else "compute-bound"


def paper_kernel_points() -> list[RooflinePoint]:
    """The five kernel measurements reported in the paper (Section IV)."""
    return [
        RooflinePoint("uoi_lasso/gemm", 30.83, 3.59),
        RooflinePoint("uoi_lasso/gemv", 1.12, 0.32),
        RooflinePoint("uoi_lasso/trsv", 0.011, 0.075),
        RooflinePoint("uoi_var/sparse_gemm", 1.08, 0.15),
        RooflinePoint("uoi_var/sparse_gemv", 2.08, 0.33),
    ]
