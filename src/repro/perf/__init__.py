"""Performance modeling, accounting and reporting.

* :mod:`repro.perf.flops` — flop/byte counts for the kernels the
  paper's roofline analysis covers (gemm, gemv, triangular solve,
  Cholesky, sparse products) and helpers that charge their modeled
  time to a rank's virtual clock.
* :mod:`repro.perf.roofline` — the roofline model itself: arithmetic
  intensity, attainable GFLOPS, memory- vs compute-bound
  classification (regenerates the paper's Intel-Advisor numbers).
* :mod:`repro.perf.report` — time-breakdown tables in the style of the
  paper's runtime bar charts (Figs. 2, 3, 7, 8).
* :mod:`repro.perf.scaling` — the analytic weak/strong-scaling drivers
  that evaluate the very same cost models used by the functional
  simulator at the paper's core counts (Tables I-II, Figs. 4-6, 9-10).
"""

from repro.perf.flops import (
    gemm_flops,
    gemv_flops,
    cholesky_flops,
    trsv_flops,
    spmm_flops,
    spmv_flops,
    charge_gemm,
    charge_gemv,
    charge_cholesky,
    charge_trsv,
    charge_sparse_solve,
)
from repro.perf.roofline import RooflinePoint, roofline_attainable, classify
from repro.perf.report import BreakdownRow, format_breakdown_table
from repro.perf.plots import stacked_bars, log_lines

__all__ = [
    "gemm_flops",
    "gemv_flops",
    "cholesky_flops",
    "trsv_flops",
    "spmm_flops",
    "spmv_flops",
    "charge_gemm",
    "charge_gemv",
    "charge_cholesky",
    "charge_trsv",
    "charge_sparse_solve",
    "RooflinePoint",
    "roofline_attainable",
    "classify",
    "BreakdownRow",
    "format_breakdown_table",
    "stacked_bars",
    "log_lines",
]
