"""Runtime-breakdown reporting in the paper's format.

The paper's single-node and parallelism figures (2, 3, 7, 8) are
stacked bars of *Computation / Communication / Distribution / Data
I/O*.  Experiment drivers collect those categories from rank clocks
(or from the analytic model) into :class:`BreakdownRow` records, and
:func:`format_breakdown_table` renders them as an aligned text table —
the benchmark harness prints these so a reader can compare rows
directly against the paper's bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simmpi.clock import TimeCategory

__all__ = ["BreakdownRow", "format_breakdown_table", "CATEGORY_ORDER"]

#: Column order used everywhere, matching the paper's legend.
CATEGORY_ORDER = [
    TimeCategory.COMPUTE.value,
    TimeCategory.COMMUNICATION.value,
    TimeCategory.DISTRIBUTION.value,
    TimeCategory.DATA_IO.value,
]


@dataclass
class BreakdownRow:
    """One configuration's runtime breakdown.

    Attributes
    ----------
    label:
        Row label (e.g. ``"16GB / 2176 cores / 16x2"``).
    seconds:
        Mapping from category name (see :data:`CATEGORY_ORDER`) to
        modeled seconds; missing categories count as 0.
    extra:
        Optional free-form annotations appended as trailing columns.
    """

    label: str
    seconds: dict[str, float]
    extra: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return sum(self.seconds.values())

    def get(self, category: str) -> float:
        return self.seconds.get(category, 0.0)


def format_breakdown_table(
    rows: list[BreakdownRow],
    *,
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Render rows as an aligned text table with a total column.

    Parameters
    ----------
    rows:
        Breakdown rows, printed in order.
    title:
        Optional heading line.
    unit:
        Unit label appended to the header names.
    """
    if not rows:
        raise ValueError("format_breakdown_table needs at least one row")
    extra_keys: list[str] = []
    for row in rows:
        for k in row.extra:
            if k not in extra_keys:
                extra_keys.append(k)

    headers = (
        ["config"]
        + [f"{c} ({unit})" for c in CATEGORY_ORDER]
        + [f"total ({unit})"]
        + extra_keys
    )
    table: list[list[str]] = [headers]
    for row in rows:
        cells = [row.label]
        cells += [f"{row.get(c):.4g}" for c in CATEGORY_ORDER]
        cells.append(f"{row.total:.4g}")
        cells += [row.extra.get(k, "") for k in extra_keys]
        table.append(cells)

    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, r in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
