"""Simulated parallel filesystem + HDF5-like I/O.

The paper's data path is: an HDF5 file on Cori's Lustre scratch
(striped over 160 Object Storage Targets), read either *serially* by
one core (the conventional method of Table II) or *in parallel* with
HDF5 hyperslabs (the paper's Tier-1).  Neither Lustre nor HDF5 is
available here, so this package provides:

* :mod:`repro.pfs.lustre` — the cost model of a striped object store
  (per-OST bandwidth, open/seek latencies, single-stream serial
  bandwidth) as pure functions of a
  :class:`~repro.simmpi.machine.MachineModel`, shared by the
  functional layer and the Table-II analytic driver.
* :mod:`repro.pfs.hdf5` — a functional file/dataset/hyperslab API
  (:class:`SimH5File`) holding real numpy data, with serial and
  collective-parallel read paths that charge virtual clocks with the
  lustre model's costs.  Distributed algorithms read real bytes
  through it, so correctness is testable end to end.
"""

from repro.pfs.lustre import (
    parallel_read_time,
    serial_chunked_read_time,
    conventional_distribution_time,
    randomized_shuffle_time,
    effective_stripes,
)
from repro.pfs.hdf5 import SimH5File, SimDataset, Hyperslab

__all__ = [
    "parallel_read_time",
    "serial_chunked_read_time",
    "conventional_distribution_time",
    "randomized_shuffle_time",
    "effective_stripes",
    "SimH5File",
    "SimDataset",
    "Hyperslab",
]
