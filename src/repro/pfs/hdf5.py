"""HDF5-like functional file layer over the simulated filesystem.

:class:`SimH5File` mimics the small slice of the HDF5 API the paper's
implementation uses: named 2-D datasets, *hyperslab* selections, a
serial access mode (one process reads chunk-by-chunk — the
conventional method) and a collective parallel mode (every rank of a
communicator reads its own contiguous hyperslab at once — Tier-1 of
the randomized distribution).  Reads return real numpy data and charge
the reading ranks' virtual clocks with the
:mod:`repro.pfs.lustre` cost model under
:attr:`~repro.simmpi.clock.TimeCategory.DATA_IO`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pfs import lustre
from repro.simmpi.clock import RankClock, TimeCategory
from repro.simmpi.comm import SimComm
from repro.simmpi.machine import MachineModel
from repro.telemetry.recorder import DATA_IO, count as _tcount, span as _tspan

__all__ = ["Hyperslab", "SimDataset", "SimH5File"]


@dataclass(frozen=True)
class Hyperslab:
    """A contiguous rectangular selection: ``start`` offsets + ``count`` extents.

    Matches HDF5's simplest hyperslab form (stride = block = 1), which
    is all the paper's Tier-1 reader needs (row-wise contiguous
    blocks).
    """

    start: tuple[int, ...]
    count: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.start) != len(self.count):
            raise ValueError(
                f"start {self.start} and count {self.count} rank mismatch"
            )
        if any(s < 0 for s in self.start) or any(c < 0 for c in self.count):
            raise ValueError(f"negative start/count: {self}")

    def slices(self) -> tuple[slice, ...]:
        """Numpy basic-index equivalent of this selection."""
        return tuple(slice(s, s + c) for s, c in zip(self.start, self.count))

    def nelems(self) -> int:
        out = 1
        for c in self.count:
            out *= c
        return out

    @staticmethod
    def rows(start: int, count: int, ncols: int) -> "Hyperslab":
        """Row-block selection ``[start:start+count, 0:ncols]``."""
        return Hyperslab((start, 0), (count, ncols))


class SimDataset:
    """One named dataset inside a :class:`SimH5File`."""

    def __init__(self, name: str, data: np.ndarray) -> None:
        self.name = name
        self.data = np.ascontiguousarray(data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def select(self, slab: Hyperslab) -> np.ndarray:
        """Return a copy of the hyperslab (bounds-checked)."""
        if len(slab.start) != self.data.ndim:
            raise ValueError(
                f"hyperslab rank {len(slab.start)} != dataset rank {self.data.ndim}"
            )
        for dim, (s, c, n) in enumerate(zip(slab.start, slab.count, self.shape)):
            if s + c > n:
                raise ValueError(
                    f"hyperslab overflows dim {dim}: start {s} + count {c} > {n}"
                )
        return np.array(self.data[slab.slices()], copy=True)


class SimH5File:
    """Simulated HDF5 file living on the simulated Lustre filesystem.

    Parameters
    ----------
    path:
        Identifier (no real filesystem is touched).
    stripe_count:
        Lustre stripe count the file was created with; ``None`` applies
        the site policy (:func:`repro.pfs.lustre.effective_stripes`)
        based on total size at read time.
    """

    def __init__(self, path: str, *, stripe_count: int | None = None) -> None:
        self.path = path
        self.stripe_count = stripe_count
        self._datasets: dict[str, SimDataset] = {}
        #: Number of times the file has been (re-)opened — the
        #: conventional method's pathology is visible here.
        self.open_count = 0

    def create_dataset(self, name: str, data: np.ndarray) -> SimDataset:
        """Add a dataset; name must be new."""
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already exists in {self.path}")
        ds = SimDataset(name, data)
        self._datasets[name] = ds
        return ds

    def dataset(self, name: str) -> SimDataset:
        if name not in self._datasets:
            raise KeyError(f"no dataset {name!r} in {self.path}")
        return self._datasets[name]

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    @property
    def nbytes(self) -> int:
        return sum(ds.nbytes for ds in self._datasets.values())

    def _stripes(self, machine: MachineModel) -> int:
        if self.stripe_count is not None:
            return self.stripe_count
        return lustre.effective_stripes(machine, self.nbytes)

    # ------------------------------------------------------------------
    # serial access (conventional method)
    # ------------------------------------------------------------------
    def read_serial(
        self,
        name: str,
        slab: Hyperslab,
        *,
        clock: RankClock | None = None,
        machine: MachineModel | None = None,
    ) -> np.ndarray:
        """One process reads one hyperslab through serial HDF5.

        Each call re-opens the file (the conventional method "would
        repeatedly open the data file"), pays a seek, and streams the
        selected bytes at the single-stream rate.
        """
        ds = self.dataset(name)
        with _tspan(
            "hdf5.read_serial", DATA_IO, path=self.path, dataset=name
        ):
            out = ds.select(slab)
        _tcount("io.bytes_read", out.nbytes)
        _tcount("io.serial_reads")
        self.open_count += 1
        if clock is not None:
            if machine is None:
                raise ValueError("machine is required when charging a clock")
            seconds = (
                machine.file_open_s
                + machine.seek_s
                + out.nbytes / (machine.serial_read_gbs * 1e9)
            )
            clock.charge(TimeCategory.DATA_IO, seconds)
        return out

    # ------------------------------------------------------------------
    # parallel collective access (Tier-1)
    # ------------------------------------------------------------------
    def read_parallel(
        self,
        comm: SimComm,
        name: str,
        slab: Hyperslab,
    ) -> np.ndarray:
        """Collective parallel read: every rank reads *its own* hyperslab.

        All ranks of ``comm`` must call this together (it synchronizes,
        like HDF5 collective I/O).  The modeled cost is one striped
        parallel read of the union of the selections, charged equally
        to every rank under DATA_IO.
        """
        ds = self.dataset(name)
        with _tspan(
            "hdf5.read_parallel",
            DATA_IO,
            path=self.path,
            dataset=name,
            rank=comm.rank,
        ):
            out = ds.select(slab)
        _tcount("io.bytes_read", out.nbytes)
        _tcount("io.parallel_reads")
        total = comm.allreduce(
            float(out.nbytes), category=TimeCategory.DATA_IO
        )
        self.open_count += 1 if comm.rank == 0 else 0
        seconds = lustre.parallel_read_time(
            comm.machine,
            int(total),
            comm.size,
            stripe_count=self._stripes(comm.machine),
        )
        comm.clock.charge(TimeCategory.DATA_IO, seconds)
        return out

    def write_parallel(
        self,
        comm: SimComm,
        name: str,
        local_rows: np.ndarray,
    ) -> None:
        """Collective row-wise append-style write (output saving).

        Rank-ordered row blocks are concatenated into (or replace) the
        dataset; cost modeled like a parallel read of the same volume.
        """
        with _tspan(
            "hdf5.write_parallel",
            DATA_IO,
            path=self.path,
            dataset=name,
            rank=comm.rank,
        ):
            blocks = comm.allgather(local_rows, category=TimeCategory.DATA_IO)
            data = np.concatenate([np.atleast_2d(b) for b in blocks], axis=0)
        _tcount("io.bytes_written", int(np.asarray(local_rows).nbytes))
        seconds = lustre.parallel_read_time(
            comm.machine,
            int(data.nbytes),
            comm.size,
            stripe_count=self._stripes(comm.machine),
        )
        comm.clock.charge(TimeCategory.DATA_IO, seconds)
        if comm.rank == 0:
            self._datasets[name] = SimDataset(name, data)
        comm.barrier(category=TimeCategory.DATA_IO)
